"""Cluster similarity machinery: bounding matrices and α-boundedness.

Implements Definitions 6–8 and Property 1 of the paper: the matrix edit
similarity ``mes``, the cluster bounding patterns ``A_∩`` (intersection) and
``A_∪`` (union), and the α-boundedness test ``mes(A_∩, A_∪) >= α``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ClusteringError, DimensionError
from repro.graphs.delta import GraphDelta, snapshot_edit_similarity
from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern, matrix_edit_similarity


def cluster_intersection_pattern(matrices: Sequence[SparseMatrix]) -> SparsityPattern:
    """Return ``sp(A_∩)``: positions non-zero in *every* matrix of the cluster."""
    patterns = _patterns_of(matrices)
    indices = set(patterns[0].indices)
    for pattern in patterns[1:]:
        indices &= pattern.indices
    return SparsityPattern(patterns[0].n, indices)


def cluster_union_pattern(matrices: Sequence[SparseMatrix]) -> SparsityPattern:
    """Return ``sp(A_∪)``: positions non-zero in *at least one* matrix of the cluster."""
    patterns = _patterns_of(matrices)
    indices = set()
    for pattern in patterns:
        indices |= pattern.indices
    return SparsityPattern(patterns[0].n, indices)


def cluster_union_matrix(matrices: Sequence[SparseMatrix]) -> SparseMatrix:
    """Return the 0/1 indicator matrix ``A_∪`` of the cluster union (Definition 7)."""
    union = cluster_union_pattern(matrices)
    return SparseMatrix(union.n, {(i, j): 1.0 for i, j in union})


def cluster_compactness(matrices: Sequence[SparseMatrix]) -> float:
    """Return ``mes(A_∩, A_∪)``, the compactness of a cluster (Definition 8)."""
    intersection = cluster_intersection_pattern(matrices)
    union = cluster_union_pattern(matrices)
    return matrix_edit_similarity(intersection, union)


def is_alpha_bounded(matrices: Sequence[SparseMatrix], alpha: float) -> bool:
    """Return ``True`` when the cluster is α-bounded (Definition 8)."""
    if not 0.0 <= alpha <= 1.0:
        raise ClusteringError(f"alpha must lie in [0, 1], got {alpha}")
    return cluster_compactness(matrices) >= alpha


def snapshot_similarity(
    before: GraphSnapshot,
    after: GraphSnapshot,
    delta: Optional[GraphDelta] = None,
) -> float:
    """Return the graph-level ``mes`` of two snapshots (Definition 6 analogue).

    The serving-side similarity score reuse policies gate on: computed from
    the edge sets (via :func:`~repro.graphs.delta.snapshot_edit_similarity`),
    in O(|Δ|) when the :class:`~repro.graphs.delta.GraphDelta` is supplied.
    For edge-mirroring system patterns it lower-bounds the matrix-pattern
    ``mes`` of the composed ``A = I - d·M`` systems (see
    :func:`~repro.graphs.delta.snapshot_edit_similarity` for the exact
    scope — the two-hop SALSA compositions only get a heuristic prefilter,
    their guarantee being the loss gate).
    """
    return snapshot_edit_similarity(before, after, delta=delta)


def successive_similarities(matrices: Sequence[SparseMatrix]) -> List[float]:
    """Return ``mes(A_i, A_{i+1})`` for every consecutive pair."""
    patterns = _patterns_of(matrices)
    return [
        matrix_edit_similarity(before, after)
        for before, after in zip(patterns, patterns[1:])
    ]


class IncrementalClusterBound:
    """Incrementally maintained ``A_∩`` / ``A_∪`` patterns of a growing cluster.

    The α-clustering loop (Algorithm 1) repeatedly asks "would the cluster
    still be α-bounded if the next matrix were added?".  Recomputing the
    bounding patterns from scratch for every candidate is quadratic in the
    cluster size, so this helper maintains them incrementally and offers a
    non-destructive :meth:`compactness_with` probe.
    """

    def __init__(self, first: SparseMatrix) -> None:
        pattern = first.pattern()
        self._n = first.n
        self._intersection = set(pattern.indices)
        self._union = set(pattern.indices)
        self._size = 1

    @property
    def size(self) -> int:
        """Number of matrices currently in the cluster."""
        return self._size

    @property
    def intersection(self) -> SparsityPattern:
        """Current ``sp(A_∩)``."""
        return SparsityPattern(self._n, self._intersection)

    @property
    def union(self) -> SparsityPattern:
        """Current ``sp(A_∪)``."""
        return SparsityPattern(self._n, self._union)

    def compactness(self) -> float:
        """Return the current ``mes(A_∩, A_∪)``."""
        total = len(self._intersection) + len(self._union)
        if total == 0:
            return 1.0
        return 2.0 * len(self._intersection & self._union) / total

    def compactness_with(self, candidate: SparseMatrix) -> float:
        """Return the compactness the cluster would have after adding ``candidate``."""
        if candidate.n != self._n:
            raise DimensionError(
                f"candidate dimension {candidate.n} does not match cluster dimension {self._n}"
            )
        candidate_indices = candidate.pattern().indices
        intersection_size = len(self._intersection & candidate_indices)
        union_size = len(self._union | candidate_indices)
        total = intersection_size + union_size
        if total == 0:
            return 1.0
        return 2.0 * intersection_size / total

    def add(self, matrix: SparseMatrix) -> None:
        """Add a matrix to the cluster, updating both bounding patterns."""
        if matrix.n != self._n:
            raise DimensionError(
                f"matrix dimension {matrix.n} does not match cluster dimension {self._n}"
            )
        indices = matrix.pattern().indices
        self._intersection &= indices
        self._union |= indices
        self._size += 1


def _patterns_of(matrices: Sequence[SparseMatrix]) -> List[SparsityPattern]:
    matrices = list(matrices)
    if not matrices:
        raise ClusteringError("a cluster must contain at least one matrix")
    n = matrices[0].n
    patterns = []
    for matrix in matrices:
        if matrix.n != n:
            raise DimensionError("cluster matrices have inconsistent dimensions")
        patterns.append(matrix.pattern())
    return patterns


__all__ = [
    "cluster_intersection_pattern",
    "cluster_union_pattern",
    "cluster_union_matrix",
    "cluster_compactness",
    "is_alpha_bounded",
    "snapshot_similarity",
    "successive_similarities",
    "IncrementalClusterBound",
    "matrix_edit_similarity",
]
