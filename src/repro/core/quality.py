"""Ordering quality: the quality-loss measure of Definition 4.

The quality-loss of applying an ordering ``O`` to a matrix ``A`` compares the
size of the symbolic sparsity pattern of ``A^O`` against that of the
Markowitz-ordered matrix ``A*``::

    ql(O, A) = (|s̃p(A^O)| - |s̃p(A*)|) / |s̃p(A*)|

A value of zero means the ordering is as good (by this structural metric) as
Markowitz; larger values mean proportionally more stored entries, slower
decomposition and slower solves.  Because evaluating the reference quantity
``|s̃p(A*)|`` requires running Markowitz on every matrix — exactly what the
BF baseline does — the helper :class:`MarkowitzReference` caches it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.errors import DimensionError, MeasureError
from repro.lu.markowitz import markowitz_ordering
from repro.lu.mindegree import minimum_degree_ordering, symmetric_symbolic_size
from repro.lu.symbolic import reorder_pattern, symbolic_decomposition
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from repro.sparse.permutation import Ordering


def symbolic_size_under_ordering(
    matrix_or_pattern: Union[SparseMatrix, SparsityPattern], ordering: Ordering
) -> int:
    """Return ``|s̃p(A^O)|`` for a matrix (or pattern) under an ordering."""
    pattern = (
        matrix_or_pattern.pattern()
        if isinstance(matrix_or_pattern, SparseMatrix)
        else matrix_or_pattern
    )
    if pattern.n != ordering.n:
        raise DimensionError(
            f"ordering size {ordering.n} does not match matrix dimension {pattern.n}"
        )
    reordered = reorder_pattern(pattern, ordering.row.order, ordering.column.order)
    return len(symbolic_decomposition(reordered))


def markowitz_reference_size(
    matrix_or_pattern: Union[SparseMatrix, SparsityPattern],
    symmetric: bool = False,
) -> int:
    """Return ``|s̃p(A*)|`` where ``A*`` is the Markowitz-ordered matrix.

    For symmetric patterns the cheaper elimination-graph path of
    :mod:`repro.lu.mindegree` is used (this is the efficiency claim the paper
    relies on for LUDEM-QC).
    """
    pattern = (
        matrix_or_pattern.pattern()
        if isinstance(matrix_or_pattern, SparseMatrix)
        else matrix_or_pattern
    )
    if symmetric and pattern.is_symmetric():
        ordering = minimum_degree_ordering(pattern)
        return symmetric_symbolic_size(pattern, ordering.row.order)
    ordering = markowitz_ordering(pattern)
    return symbolic_size_under_ordering(pattern, ordering)


def quality_loss(
    ordering: Ordering,
    matrix: SparseMatrix,
    reference_size: Optional[int] = None,
    symmetric: bool = False,
) -> float:
    """Return ``ql(O, A)`` (Definition 4).

    Parameters
    ----------
    ordering:
        The ordering whose quality is evaluated.
    matrix:
        The matrix it is applied to.
    reference_size:
        Optional precomputed ``|s̃p(A*)|`` (e.g. from a
        :class:`MarkowitzReference` cache).
    symmetric:
        Use the fast symmetric reference path when computing the reference.
    """
    if reference_size is None:
        reference_size = markowitz_reference_size(matrix, symmetric=symmetric)
    if reference_size <= 0:
        raise DimensionError("reference symbolic pattern size must be positive")
    achieved = symbolic_size_under_ordering(matrix, ordering)
    return (achieved - reference_size) / reference_size


def reuse_loss_bound(entries, damping: float) -> float:
    """Bound the relative answer deviation of serving from stale factors.

    The serving-side counterpart of Definition 4: when a query against system
    ``A_new = I - d·M_new`` is answered **outright** from the factorization of
    a similar cached system ``A_old`` (no refresh, no new factorization), the
    answer it gets is ``x̃ = A_old^{-1} b`` instead of ``x = A_new^{-1} b``.
    Writing ``ΔA = A_new - A_old`` (the sparse ``entries`` mapping of
    :func:`~repro.graphs.matrixkind.system_delta`),

        x̃ - x = A_old^{-1} (A_new - A_old) x  =  A_old^{-1} ΔA x,

    and whenever ``M`` is column-substochastic (``‖M‖₁ <= 1``) the Neumann
    series gives ``‖A_old^{-1}‖₁ <= 1 / (1 - d)``.  Hence the *relative* L1
    deviation of the raw solution is bounded by::

        ‖x̃ - x‖₁ / ‖x‖₁  <=  ‖ΔA‖₁ / (1 - d)

    with ``‖ΔA‖₁`` the maximum absolute column sum of the entry delta.  That
    right-hand side is what this function returns — computable from the
    sparse delta alone, in O(|Δ|), without touching either matrix.

    **Validity is per matrix kind.**  Column-substochasticity holds for
    ``RANDOM_WALK`` (column-normalized ``W``) and both SALSA kinds (products
    of two column-substochastic walks); for the undamped Laplacian system
    ``A = I + L``, ``A·1 = 1`` with ``A⁻¹ >= 0`` and symmetry give
    ``‖A⁻¹‖₁ = 1`` — pass ``damping=0.0`` there.  It does **not** hold for
    ``SYMMETRIC_WALK`` (``S = D^{-1/2} A_u D^{-1/2}`` has column sums up to
    ``sqrt(deg)``), so no finite amplification is certified and
    :class:`~repro.policy.qc.QCPolicy` refuses to reuse across that kind.
    The bound covers the raw solve; post transforms / normalization are
    applied to both sides identically.
    """
    if not 0.0 <= damping < 1.0:
        raise MeasureError(
            f"damping factor must lie in [0, 1) for the reuse bound, got {damping}"
        )
    if not entries:
        return 0.0
    column_sums: Dict[int, float] = {}
    for (_, column), value in entries.items():
        column_sums[column] = column_sums.get(column, 0.0) + abs(value)
    return max(column_sums.values()) / (1.0 - damping)


def residual_loss_bound(entries, applied_columns, damping: float) -> float:
    """The :func:`reuse_loss_bound` of ``ΔA`` minus its applied columns.

    Corrected reuse (:class:`~repro.policy.corrected.CorrectedPolicy`) folds
    the dominant columns of ``ΔA`` into the answer exactly, via a rank-``k``
    Sherman–Morrison–Woodbury solve over the parent's cached factors.  The
    deviation that remains is governed by the *residual* delta — ``ΔA``
    restricted to the columns **not** applied::

        ‖x̃ - x‖₁ / ‖x‖₁  <=  ‖ΔA|_{cols ∉ applied}‖₁ / (1 - d)

    The amplification constant ``1/(1 - d)`` is the corrected system's, but
    because the applied columns replace old columns with new ones *wholesale*,
    a column-wise mix of two column-substochastic matrices is itself
    column-substochastic and the parent's constant carries over unchanged
    (likewise the Laplacian's constant 1 — pass ``damping=0.0`` there, as for
    :func:`reuse_loss_bound`).  Applying every column drives the bound to
    exactly ``0.0``.
    """
    if not applied_columns:
        return reuse_loss_bound(entries, damping)
    applied = frozenset(applied_columns)
    residual = {
        position: value
        for position, value in entries.items()
        if position[1] not in applied
    }
    return reuse_loss_bound(residual, damping)


class MarkowitzReference:
    """A cache of Markowitz reference sizes ``|s̃p(A_i*)|`` for an EMS.

    BF computes the Markowitz ordering of every matrix anyway; the experiments
    reuse those results to score the orderings produced by other algorithms
    without paying for Markowitz twice.
    """

    def __init__(self, symmetric: bool = False) -> None:
        self._symmetric = symmetric
        self._sizes: Dict[int, int] = {}
        self._hits = 0
        self._misses = 0

    def size_for(self, index: int, matrix: SparseMatrix) -> int:
        """Return (and cache) the reference size for matrix ``index``."""
        if index not in self._sizes:
            self._misses += 1
            self._sizes[index] = markowitz_reference_size(matrix, symmetric=self._symmetric)
        else:
            self._hits += 1
        return self._sizes[index]

    def cache_info(self) -> Dict[str, int]:
        """Return hit/miss/size counters for the reference cache.

        A miss runs a full Markowitz ordering (exactly what BF pays per
        matrix), so the bench layer asserts via these counters that sweeping
        α/β/workers computes each matrix's reference only once.
        """
        return {"hits": self._hits, "misses": self._misses, "size": len(self._sizes)}

    def quality_loss(self, index: int, ordering: Ordering, matrix: SparseMatrix) -> float:
        """Return ``ql(O_index, A_index)`` using the cached reference."""
        return quality_loss(
            ordering, matrix, reference_size=self.size_for(index, matrix), symmetric=self._symmetric
        )

    def precompute(self, matrices: Sequence[SparseMatrix]) -> None:
        """Populate the cache for an entire sequence of matrices."""
        for index, matrix in enumerate(matrices):
            self.size_for(index, matrix)

    def known_sizes(self) -> Dict[int, int]:
        """Return a copy of the cached sizes keyed by matrix index."""
        return dict(self._sizes)
