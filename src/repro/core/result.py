"""Result containers and timing accounting for LUDEM algorithms.

Every algorithm (BF, INC, CINC, CLUDE) produces one
:class:`MatrixDecomposition` per matrix of the EMS and a
:class:`SequenceResult` for the whole run.  The sequence result carries the
execution-time breakdown the paper analyses in Section 6.2:

* ``clustering_time``   (t_c) — time spent segmenting the EMS,
* ``ordering_time``     (t_M) — time spent computing Markowitz orderings,
* ``decomposition_time``(t_d) — time spent on full (Crout) decompositions,
* ``bennett_time``      (t_B) — time spent on incremental Bennett updates,
* ``symbolic_time``            — time spent on symbolic decompositions and
  building static structures (CLUDE only; folded into the structure cost).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DimensionError
from repro.lu.solve import solve_reordered_system, solve_reordered_system_many
from repro.sparse.csr import SparseMatrix
from repro.sparse.permutation import Ordering


class Stopwatch:
    """Accumulates wall-clock time into named buckets."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    def add(self, bucket: str, seconds: float) -> None:
        """Add ``seconds`` to ``bucket``."""
        self._totals[bucket] = self._totals.get(bucket, 0.0) + seconds

    def time(self, bucket: str):
        """Return a context manager that times its block into ``bucket``."""
        return _StopwatchContext(self, bucket)

    def total(self, bucket: str) -> float:
        """Return the accumulated time of ``bucket`` (0.0 if never used)."""
        return self._totals.get(bucket, 0.0)

    def totals(self) -> Dict[str, float]:
        """Return a copy of all buckets."""
        return dict(self._totals)


class _StopwatchContext:
    def __init__(self, stopwatch: Stopwatch, bucket: str) -> None:
        self._stopwatch = stopwatch
        self._bucket = bucket
        self._start = 0.0

    def __enter__(self) -> "_StopwatchContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stopwatch.add(self._bucket, time.perf_counter() - self._start)


@dataclasses.dataclass
class MatrixDecomposition:
    """The output of a LUDEM algorithm for one matrix of the EMS.

    Attributes
    ----------
    index:
        Position of the matrix in the EMS.
    ordering:
        The ordering ``O_i`` applied before decomposition.
    factors:
        LU factors of ``A_i^{O_i}`` (dynamic or static container).
    fill_size:
        ``|sp(Â_i^{O_i})|`` — number of stored non-zeros in the factors.
    cluster_id:
        Which cluster the matrix belonged to (0-based; BF and INC use a
        single implicit cluster id of 0 and -1 respectively).
    structural_ops:
        Structural adjacency-list operations performed while producing these
        factors (always 0 for CLUDE's static structures).
    error:
        Annotated failure report of a report-don't-raise work unit
        (``FACTOR`` / ``REFRESH``): non-``None`` iff ``factors`` is ``None``
        because the unit's numerical work failed.  Sequence decompositions
        never set it.
    """

    index: int
    ordering: Ordering
    factors: object
    fill_size: int
    cluster_id: int = 0
    structural_ops: int = 0
    error: Optional[str] = None

    def solve(self, b: Sequence[float]) -> np.ndarray:
        """Solve ``A_i x = b`` using the stored factors and ordering."""
        return solve_reordered_system(self.factors, self.ordering, b)

    def solve_many(self, block) -> np.ndarray:
        """Solve ``A_i X = B`` for an ``(n, k)`` block in one batched sweep.

        Each result column is bitwise identical to :meth:`solve` of the
        matching input column.
        """
        return solve_reordered_system_many(self.factors, self.ordering, block)


@dataclasses.dataclass
class TimingBreakdown:
    """Execution-time components of one LUDEM run (Section 6.2 of the paper)."""

    clustering_time: float = 0.0
    ordering_time: float = 0.0
    decomposition_time: float = 0.0
    bennett_time: float = 0.0
    symbolic_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Sum of every component."""
        return (
            self.clustering_time
            + self.ordering_time
            + self.decomposition_time
            + self.bennett_time
            + self.symbolic_time
        )

    @classmethod
    def from_stopwatch(cls, stopwatch: Stopwatch) -> "TimingBreakdown":
        """Build a breakdown from stopwatch buckets named after the fields."""
        return cls.from_buckets(stopwatch.totals())

    @classmethod
    def from_buckets(cls, buckets: Dict[str, float]) -> "TimingBreakdown":
        """Build a breakdown from a plain bucket dictionary.

        This is the form the executor layer reduces per-unit stopwatch totals
        into; the component times are therefore *serial-summed* across work
        units (wall-clock is tracked separately on the sequence result).
        """
        return cls(
            clustering_time=buckets.get("clustering", 0.0),
            ordering_time=buckets.get("ordering", 0.0),
            decomposition_time=buckets.get("decomposition", 0.0),
            bennett_time=buckets.get("bennett", 0.0),
            symbolic_time=buckets.get("symbolic", 0.0),
        )

    def as_dict(self) -> Dict[str, float]:
        """Return the components (plus the total) as a plain dictionary."""
        return {
            "clustering_time": self.clustering_time,
            "ordering_time": self.ordering_time,
            "decomposition_time": self.decomposition_time,
            "bennett_time": self.bennett_time,
            "symbolic_time": self.symbolic_time,
            "total_time": self.total_time,
        }


@dataclasses.dataclass
class SequenceResult:
    """The output of a LUDEM algorithm over a whole EMS.

    ``timing`` holds the serial-summed component times (summed over work
    units in canonical order, so they are executor-independent up to clock
    noise), while ``wall_time`` is the elapsed wall-clock of the whole run —
    the quantity that shrinks when a parallel executor fans clusters out
    across workers.  ``wall_time`` of 0.0 means it was not measured.
    """

    algorithm: str
    decompositions: List[MatrixDecomposition]
    timing: TimingBreakdown
    cluster_count: int = 1
    wall_time: float = 0.0
    #: Serialized bytes the executor shipped across process boundaries to
    #: run this sequence (0 for serial execution; the summed pickled unit
    #: sizes for the process pool) — the member-shipping cost the
    #: shared-memory shard layer is measured against.
    bytes_shipped: int = 0

    def __post_init__(self) -> None:
        if not self.decompositions:
            raise DimensionError("a sequence result needs at least one decomposition")

    def __len__(self) -> int:
        return len(self.decompositions)

    def __getitem__(self, index: int) -> MatrixDecomposition:
        return self.decompositions[index]

    @property
    def total_time(self) -> float:
        """Total wall-clock time of the run."""
        return self.timing.total_time

    @property
    def fill_sizes(self) -> List[int]:
        """Fill size of every matrix's factors."""
        return [decomposition.fill_size for decomposition in self.decompositions]

    @property
    def total_structural_ops(self) -> int:
        """Total structural adjacency-list operations across the run."""
        return sum(d.structural_ops for d in self.decompositions)

    def solve(self, index: int, b: Sequence[float]) -> np.ndarray:
        """Solve ``A_index x = b`` with the stored factors."""
        return self.decompositions[index].solve(b)

    def solve_all(self, b: Sequence[float]) -> List[np.ndarray]:
        """Solve ``A_i x = b`` for every matrix with the same right-hand side.

        This is the access pattern of measure time series: the same query
        vector against every snapshot.
        """
        return [decomposition.solve(b) for decomposition in self.decompositions]

    def solve_many(self, index: int, block) -> np.ndarray:
        """Solve ``A_index X = B`` for an ``(n, k)`` block of right-hand sides."""
        return self.decompositions[index].solve_many(block)

    def solve_all_many(self, block) -> List[np.ndarray]:
        """Solve every snapshot against the same ``(n, k)`` block of queries.

        One batched forward/backward sweep per snapshot replaces ``k`` scalar
        solves — the multi-query analogue of :meth:`solve_all` used by
        measure time series with many seeds.
        """
        return [decomposition.solve_many(block) for decomposition in self.decompositions]

    def quality_losses(
        self, matrices: Sequence[SparseMatrix], reference
    ) -> List[float]:
        """Return ``ql(O_i, A_i)`` for every matrix, using a Markowitz reference cache."""
        if len(matrices) != len(self.decompositions):
            raise DimensionError("matrix count does not match decomposition count")
        losses = []
        for decomposition, matrix in zip(self.decompositions, matrices):
            losses.append(
                reference.quality_loss(decomposition.index, decomposition.ordering, matrix)
            )
        return losses

    def average_quality_loss(self, matrices: Sequence[SparseMatrix], reference) -> float:
        """Return the mean quality-loss across the sequence."""
        losses = self.quality_losses(matrices, reference)
        return float(np.mean(losses)) if losses else 0.0

    def summary(self) -> Dict[str, float]:
        """Return a compact numeric summary of the run."""
        return {
            "algorithm_matrices": float(len(self.decompositions)),
            "clusters": float(self.cluster_count),
            "total_time": self.total_time,
            "wall_time": self.wall_time,
            "bennett_time": self.timing.bennett_time,
            "ordering_time": self.timing.ordering_time,
            "decomposition_time": self.timing.decomposition_time,
            "clustering_time": self.timing.clustering_time,
            "symbolic_time": self.timing.symbolic_time,
            "mean_fill_size": float(np.mean(self.fill_sizes)),
            "structural_ops": float(self.total_structural_ops),
            "bytes_shipped": float(self.bytes_shipped),
        }
