"""The cluster-based incremental algorithm (CINC).

CINC (paper Algorithm 2) first segments the EMS into α-bounded clusters
(Algorithm 1).  Within each cluster it behaves like INC: it computes the
Markowitz ordering of the *first* member, applies it to every member, fully
decomposes the first member and applies Bennett's algorithm to the rest —
but the clustering keeps the shared ordering reasonably fit for all members,
which is what INC lacks.  The factors are still held in per-matrix dynamic
adjacency lists, so the structural-restructuring cost of Bennett's algorithm
remains (that is the cost CLUDE removes).

Clusters share no state with one another, so each cluster is one work unit
of the execution plan and a parallel executor may decompose clusters
concurrently.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

from repro.core.clustering import MatrixCluster, alpha_clustering
from repro.core.result import (
    MatrixDecomposition,
    SequenceResult,
    Stopwatch,
    TimingBreakdown,
)
from repro.errors import EmptySequenceError
from repro.exec.executors import Executor, reduce_timings, resolve_executor
from repro.exec.plan import plan_clustered
from repro.lu.bennett import bennett_update
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix


def decompose_cluster_cinc(
    members: Sequence[SparseMatrix],
    start: int,
    cluster_id: int,
    stopwatch: Stopwatch,
) -> List[MatrixDecomposition]:
    """Run CINC on one cluster (paper Algorithm 2), returning its decompositions.

    ``members`` are the cluster's matrices in sequence order and ``start`` is
    the EMS index of the first one.  This is the body of one CINC work unit;
    serial and parallel executors run exactly this code.
    """
    with stopwatch.time("ordering"):
        ordering = markowitz_ordering(members[0])

    decompositions: List[MatrixDecomposition] = []
    with stopwatch.time("decomposition"):
        first_reordered = ordering.apply(members[0])
        factors = crout_decompose(first_reordered)
    decompositions.append(
        MatrixDecomposition(
            index=start,
            ordering=ordering,
            factors=factors,
            fill_size=factors.fill_size,
            cluster_id=cluster_id,
            structural_ops=factors.structural_ops,
        )
    )

    for offset in range(1, len(members)):
        with stopwatch.time("bennett"):
            delta_original = members[offset - 1].delta_entries(members[offset])
            delta = ordering.map_entries(delta_original)
            # Each member gets its own list structures derived from the
            # previous member's (structural copy + in-place restructuring),
            # matching the dynamic-representation cost profile of the paper.
            factors = factors.copy()
            ops_before = factors.structural_ops
            bennett_update(factors, delta)
            structural_ops = factors.structural_ops - ops_before
        decompositions.append(
            MatrixDecomposition(
                index=start + offset,
                ordering=ordering,
                factors=factors,
                fill_size=factors.fill_size,
                cluster_id=cluster_id,
                structural_ops=structural_ops,
            )
        )
    return decompositions


def decompose_sequence_cinc(
    matrices: Sequence[SparseMatrix],
    alpha: float = 0.95,
    clusters: Optional[Sequence[MatrixCluster]] = None,
    executor: Union[Executor, int, None] = None,
) -> SequenceResult:
    """Run CINC over an EMS.

    Parameters
    ----------
    matrices:
        The evolving matrix sequence.
    alpha:
        Similarity threshold for α-clustering (ignored when ``clusters`` is given).
    clusters:
        Optional precomputed clustering (used by the LUDEM-QC driver, which
        supplies β-clusters instead of α-clusters).
    executor:
        How to schedule the per-cluster work units: ``None`` (default) runs
        serially, an ``int`` is a process-pool worker count, or pass an
        :class:`~repro.exec.executors.Executor`.  Output is bitwise-identical
        across executors; clustering itself always runs in-process (it is a
        sequential scan by construction).
    """
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot decompose an empty matrix sequence")

    started = time.perf_counter()
    stopwatch = Stopwatch()
    if clusters is None:
        with stopwatch.time("clustering"):
            clusters = alpha_clustering(matrices, alpha)

    plan = plan_clustered("CINC", matrices, clusters)
    outcome = resolve_executor(executor).execute(plan)
    timings = reduce_timings([stopwatch.totals(), outcome.timings])
    return SequenceResult(
        algorithm="CINC",
        decompositions=outcome.decompositions,
        timing=TimingBreakdown.from_buckets(timings),
        cluster_count=len(clusters),
        wall_time=time.perf_counter() - started,
        bytes_shipped=outcome.bytes_shipped,
    )
