"""Drivers for the quality-constrained LUDEM-QC problem (paper Section 5).

LUDEM-QC asks for orderings whose quality-loss never exceeds a user-supplied
bound β.  Both cluster-based algorithms enforce it through their clustering
step: the cluster is grown only while the shared ordering provably satisfies
the constraint for every member.

* CINC uses β-clustering version of Algorithm 4 (check the first member's
  Markowitz ordering against each candidate).
* CLUDE uses β-clustering version of Algorithm 5 (check the union ordering's
  upper bound ``|s̃p(A_∪^{O_∪})|`` against every member's reference).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.clustering import beta_clustering_cinc, beta_clustering_clude
from repro.core.problem import LUDEMQCProblem
from repro.core.quality import MarkowitzReference
from repro.core.result import SequenceResult, Stopwatch
from repro.exec.executors import Executor


def solve_qc_cinc(
    problem: LUDEMQCProblem,
    reference: Optional[MarkowitzReference] = None,
    executor: Union[Executor, int, None] = None,
) -> SequenceResult:
    """Solve LUDEM-QC with the CINC machinery (β-clustering, Algorithm 4).

    ``executor`` schedules the per-cluster decomposition work units; the
    β-clustering scan itself is sequential and always runs in-process.
    """
    matrices = list(problem.ems)
    reference = reference or MarkowitzReference(symmetric=True)
    stopwatch = Stopwatch()
    with stopwatch.time("clustering"):
        clusters = beta_clustering_cinc(matrices, problem.quality_requirement, reference)
    result = decompose_sequence_cinc(matrices, clusters=clusters, executor=executor)
    result.timing.clustering_time += stopwatch.total("clustering")
    result.cluster_count = len(clusters)
    return SequenceResult(
        algorithm="CINC-QC",
        decompositions=result.decompositions,
        timing=result.timing,
        cluster_count=len(clusters),
        wall_time=result.wall_time + stopwatch.total("clustering"),
    )


def solve_qc_clude(
    problem: LUDEMQCProblem,
    reference: Optional[MarkowitzReference] = None,
    executor: Union[Executor, int, None] = None,
) -> SequenceResult:
    """Solve LUDEM-QC with the CLUDE machinery (β-clustering, Algorithm 5).

    ``executor`` schedules the per-cluster decomposition work units; the
    β-clustering scan itself is sequential and always runs in-process.
    """
    matrices = list(problem.ems)
    reference = reference or MarkowitzReference(symmetric=True)
    stopwatch = Stopwatch()
    with stopwatch.time("clustering"):
        clusters = beta_clustering_clude(matrices, problem.quality_requirement, reference)
    result = decompose_sequence_clude(matrices, clusters=clusters, executor=executor)
    result.timing.clustering_time += stopwatch.total("clustering")
    return SequenceResult(
        algorithm="CLUDE-QC",
        decompositions=result.decompositions,
        timing=result.timing,
        cluster_count=len(clusters),
        wall_time=result.wall_time + stopwatch.total("clustering"),
    )
