"""Drivers for the quality-constrained LUDEM-QC problem (paper Section 5).

LUDEM-QC asks for orderings whose quality-loss never exceeds a user-supplied
bound β.  The quality contract itself — which clusters may share an ordering,
and at what proven loss — lives in the reuse-policy layer
(:mod:`repro.policy`): each driver resolves the problem's β into a
:class:`~repro.policy.qc.QCPolicy` (or takes an explicit policy) and
delegates the β-clustering step to it, then runs the standard cluster
decomposition machinery:

* CINC uses the β-clustering version of Algorithm 4 (check the first member's
  Markowitz ordering against each candidate).
* CLUDE uses the β-clustering version of Algorithm 5 (check the union
  ordering's upper bound ``|s̃p(A_∪^{O_∪})|`` against every member's
  reference).

The drivers are deliberately thin: policy in, clusters out, decompose — the
same policy object also gates the query planner's approximate serving, so
offline and online quality control share one definition.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.problem import LUDEMQCProblem
from repro.core.quality import MarkowitzReference
from repro.core.result import SequenceResult, Stopwatch
from repro.exec.executors import Executor
from repro.policy import QCPolicy, ReusePolicy


def resolve_qc_policy(
    policy: Optional[ReusePolicy], problem: LUDEMQCProblem
) -> ReusePolicy:
    """Return the reuse policy a QC driver should cluster under.

    ``None`` resolves to a :class:`~repro.policy.qc.QCPolicy` whose loss
    bound is the problem's ``quality_requirement`` (the historical
    behaviour); an explicit policy is used as given, letting callers share
    one policy object between decomposition and serving.
    """
    if policy is None:
        return QCPolicy(loss_bound=problem.quality_requirement)
    return policy


def solve_qc_cinc(
    problem: LUDEMQCProblem,
    reference: Optional[MarkowitzReference] = None,
    executor: Union[Executor, int, None] = None,
    policy: Optional[ReusePolicy] = None,
) -> SequenceResult:
    """Solve LUDEM-QC with the CINC machinery (β-clustering, Algorithm 4).

    ``executor`` schedules the per-cluster decomposition work units; the
    β-clustering scan itself is sequential and always runs in-process.
    ``policy`` overrides the quality contract (default: a
    :class:`~repro.policy.qc.QCPolicy` at the problem's β).
    """
    matrices = list(problem.ems)
    reference = reference or MarkowitzReference(symmetric=True)
    policy = resolve_qc_policy(policy, problem)
    stopwatch = Stopwatch()
    with stopwatch.time("clustering"):
        clusters = policy.decomposition_clusters("CINC", matrices, reference)
    result = decompose_sequence_cinc(matrices, clusters=clusters, executor=executor)
    result.timing.clustering_time += stopwatch.total("clustering")
    result.cluster_count = len(clusters)
    return SequenceResult(
        algorithm="CINC-QC",
        decompositions=result.decompositions,
        timing=result.timing,
        cluster_count=len(clusters),
        wall_time=result.wall_time + stopwatch.total("clustering"),
        bytes_shipped=result.bytes_shipped,
    )


def solve_qc_clude(
    problem: LUDEMQCProblem,
    reference: Optional[MarkowitzReference] = None,
    executor: Union[Executor, int, None] = None,
    policy: Optional[ReusePolicy] = None,
) -> SequenceResult:
    """Solve LUDEM-QC with the CLUDE machinery (β-clustering, Algorithm 5).

    ``executor`` schedules the per-cluster decomposition work units; the
    β-clustering scan itself is sequential and always runs in-process.
    ``policy`` overrides the quality contract (default: a
    :class:`~repro.policy.qc.QCPolicy` at the problem's β).
    """
    matrices = list(problem.ems)
    reference = reference or MarkowitzReference(symmetric=True)
    policy = resolve_qc_policy(policy, problem)
    stopwatch = Stopwatch()
    with stopwatch.time("clustering"):
        clusters = policy.decomposition_clusters("CLUDE", matrices, reference)
    result = decompose_sequence_clude(matrices, clusters=clusters, executor=executor)
    result.timing.clustering_time += stopwatch.total("clustering")
    return SequenceResult(
        algorithm="CLUDE-QC",
        decompositions=result.decompositions,
        timing=result.timing,
        cluster_count=len(clusters),
        wall_time=result.wall_time + stopwatch.total("clustering"),
        bytes_shipped=result.bytes_shipped,
    )
