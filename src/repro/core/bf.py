"""The Brute Force (BF) baseline algorithm.

BF (paper Section 4) computes the Markowitz ordering ``O*(A_i)`` of every
matrix in the EMS and performs a full Crout decomposition of every reordered
matrix.  It is the slowest method but achieves the best possible ordering
quality by construction (its quality-loss is zero), so the paper uses it both
as the speed baseline (other algorithms are reported as speedups over BF) and
as the quality reference.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.result import (
    MatrixDecomposition,
    SequenceResult,
    Stopwatch,
    TimingBreakdown,
)
from repro.errors import EmptySequenceError
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix


def decompose_sequence_bf(matrices: Sequence[SparseMatrix]) -> SequenceResult:
    """Run BF over an EMS: per-matrix Markowitz ordering + full decomposition."""
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot decompose an empty matrix sequence")

    stopwatch = Stopwatch()
    decompositions = []
    for index, matrix in enumerate(matrices):
        with stopwatch.time("ordering"):
            ordering = markowitz_ordering(matrix)
        with stopwatch.time("decomposition"):
            reordered = ordering.apply(matrix)
            factors = crout_decompose(reordered)
        decompositions.append(
            MatrixDecomposition(
                index=index,
                ordering=ordering,
                factors=factors,
                fill_size=factors.fill_size,
                cluster_id=index,
                structural_ops=factors.structural_ops,
            )
        )
    return SequenceResult(
        algorithm="BF",
        decompositions=decompositions,
        timing=TimingBreakdown.from_stopwatch(stopwatch),
        cluster_count=len(matrices),
    )
