"""The Brute Force (BF) baseline algorithm.

BF (paper Section 4) computes the Markowitz ordering ``O*(A_i)`` of every
matrix in the EMS and performs a full Crout decomposition of every reordered
matrix.  It is the slowest method but achieves the best possible ordering
quality by construction (its quality-loss is zero), so the paper uses it both
as the speed baseline (other algorithms are reported as speedups over BF) and
as the quality reference.

Every snapshot is independent of every other, so BF is also the most
parallel algorithm: its execution plan has one work unit per snapshot and an
executor may run all of them concurrently.
"""

from __future__ import annotations

import time
from typing import Sequence, Union

from repro.core.result import (
    MatrixDecomposition,
    SequenceResult,
    Stopwatch,
    TimingBreakdown,
)
from repro.errors import EmptySequenceError
from repro.exec.executors import Executor, resolve_executor
from repro.exec.plan import plan_bf
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix


def decompose_snapshot_bf(
    matrix: SparseMatrix, index: int, stopwatch: Stopwatch
) -> MatrixDecomposition:
    """Run BF on one snapshot: Markowitz ordering + full Crout decomposition.

    This is the body of one BF work unit; both the serial and the parallel
    executors call exactly this function, which is what keeps their outputs
    bitwise-identical.
    """
    with stopwatch.time("ordering"):
        ordering = markowitz_ordering(matrix)
    with stopwatch.time("decomposition"):
        reordered = ordering.apply(matrix)
        factors = crout_decompose(reordered)
    return MatrixDecomposition(
        index=index,
        ordering=ordering,
        factors=factors,
        fill_size=factors.fill_size,
        cluster_id=index,
        structural_ops=factors.structural_ops,
    )


def decompose_sequence_bf(
    matrices: Sequence[SparseMatrix],
    executor: Union[Executor, int, None] = None,
) -> SequenceResult:
    """Run BF over an EMS: per-matrix Markowitz ordering + full decomposition.

    Parameters
    ----------
    matrices:
        The evolving matrix sequence.
    executor:
        How to schedule the per-snapshot work units: ``None`` (default) runs
        serially in-process, an ``int`` is a worker count for a process pool,
        or pass an :class:`~repro.exec.executors.Executor` instance.  The
        decompositions are bitwise-identical regardless of the executor.
    """
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot decompose an empty matrix sequence")

    started = time.perf_counter()
    plan = plan_bf(matrices)
    outcome = resolve_executor(executor).execute(plan)
    return SequenceResult(
        algorithm="BF",
        decompositions=outcome.decompositions,
        timing=TimingBreakdown.from_buckets(outcome.timings),
        cluster_count=len(matrices),
        wall_time=time.perf_counter() - started,
        bytes_shipped=outcome.bytes_shipped,
    )
