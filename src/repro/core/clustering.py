"""Clustering of an evolving matrix sequence.

Implements the three segmentation procedures of the paper:

* :func:`alpha_clustering` — Algorithm 1: greedy segmentation keeping every
  cluster α-bounded (``mes(A_∩, A_∪) >= α``).
* :func:`beta_clustering_cinc` — Algorithm 4: segmentation driven by the
  LUDEM-QC quality constraint, using the Markowitz ordering of the first
  cluster member as the shared ordering (the CINC variant).
* :func:`beta_clustering_clude` — Algorithm 5: segmentation driven by the
  quality constraint, using the Markowitz ordering of the cluster union
  ``A_∪`` and the shortcut ``|s̃p(A_∪^{O_∪})|`` bound (the CLUDE variant).

All three return a list of :class:`MatrixCluster` objects carrying the member
indices (contiguous ranges of the EMS, since the sequence evolves gradually).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.core.quality import MarkowitzReference, symbolic_size_under_ordering
from repro.core.similarity import IncrementalClusterBound, cluster_union_matrix
from repro.errors import ClusteringError
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix


@dataclasses.dataclass(frozen=True)
class MatrixCluster:
    """A contiguous run of EMS indices grouped into one cluster.

    Attributes
    ----------
    start:
        Index of the first member matrix in the EMS.
    stop:
        One past the index of the last member (so members are ``start … stop-1``).
    """

    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of member matrices."""
        return self.stop - self.start

    @property
    def indices(self) -> range:
        """The member indices as a range."""
        return range(self.start, self.stop)

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ClusteringError(f"empty cluster: start={self.start}, stop={self.stop}")


def clusters_cover_sequence(clusters: Sequence[MatrixCluster], length: int) -> bool:
    """Return ``True`` when the clusters exactly partition ``0 … length-1`` in order."""
    expected_start = 0
    for cluster in clusters:
        if cluster.start != expected_start:
            return False
        expected_start = cluster.stop
    return expected_start == length


def alpha_clustering(matrices: Sequence[SparseMatrix], alpha: float) -> List[MatrixCluster]:
    """Segment the EMS into α-bounded clusters (paper Algorithm 1).

    Matrices are scanned in sequence order; each is added to the current
    cluster as long as the cluster's compactness ``mes(A_∩, A_∪)`` stays at
    least ``alpha``, otherwise a new cluster is started.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ClusteringError(f"alpha must lie in [0, 1], got {alpha}")
    matrices = list(matrices)
    if not matrices:
        raise ClusteringError("cannot cluster an empty matrix sequence")

    clusters: List[MatrixCluster] = []
    start = 0
    bound = IncrementalClusterBound(matrices[0])
    for index in range(1, len(matrices)):
        if bound.compactness_with(matrices[index]) >= alpha:
            bound.add(matrices[index])
        else:
            clusters.append(MatrixCluster(start, index))
            start = index
            bound = IncrementalClusterBound(matrices[index])
    clusters.append(MatrixCluster(start, len(matrices)))
    return clusters


def beta_clustering_cinc(
    matrices: Sequence[SparseMatrix],
    beta: float,
    reference: MarkowitzReference | None = None,
) -> List[MatrixCluster]:
    """Segment the EMS under the LUDEM-QC constraint, CINC style (Algorithm 4).

    The shared ordering of a cluster is the Markowitz ordering of its first
    member; a candidate matrix joins the cluster only if that ordering keeps
    its quality-loss within ``beta``.
    """
    if beta < 0.0:
        raise ClusteringError(f"beta must be non-negative, got {beta}")
    matrices = list(matrices)
    if not matrices:
        raise ClusteringError("cannot cluster an empty matrix sequence")
    reference = reference or MarkowitzReference(symmetric=True)

    clusters: List[MatrixCluster] = []
    start = 0
    shared_ordering = markowitz_ordering(matrices[0])
    for index in range(1, len(matrices)):
        candidate = matrices[index]
        achieved = symbolic_size_under_ordering(candidate, shared_ordering)
        best = reference.size_for(index, candidate)
        if achieved - best <= beta * best:
            continue
        clusters.append(MatrixCluster(start, index))
        start = index
        shared_ordering = markowitz_ordering(candidate)
    clusters.append(MatrixCluster(start, len(matrices)))
    return clusters


def beta_clustering_clude(
    matrices: Sequence[SparseMatrix],
    beta: float,
    reference: MarkowitzReference | None = None,
) -> List[MatrixCluster]:
    """Segment the EMS under the LUDEM-QC constraint, CLUDE style (Algorithm 5).

    The shared ordering of a cluster is the Markowitz ordering ``O_∪`` of its
    union matrix ``A_∪``.  Following the paper's shortcut, the constraint is
    checked against the upper bound ``|s̃p(A_∪^{O_∪})|``: since every member's
    symbolic pattern is contained in the union's (Property 1 + Lemma 1), the
    bound being within ``beta`` of a member's reference implies the member's
    own constraint holds.
    """
    if beta < 0.0:
        raise ClusteringError(f"beta must be non-negative, got {beta}")
    matrices = list(matrices)
    if not matrices:
        raise ClusteringError("cannot cluster an empty matrix sequence")
    reference = reference or MarkowitzReference(symmetric=True)

    clusters: List[MatrixCluster] = []
    start = 0
    members: List[SparseMatrix] = [matrices[0]]
    for index in range(1, len(matrices)):
        candidate = matrices[index]
        trial_members = members + [candidate]
        union_matrix = cluster_union_matrix(trial_members)
        union_ordering = markowitz_ordering(union_matrix)
        union_size = symbolic_size_under_ordering(union_matrix, union_ordering)
        satisfied = True
        for offset, member in enumerate(trial_members):
            member_index = start + offset
            best = reference.size_for(member_index, member)
            if union_size - best > beta * best:
                satisfied = False
                break
        if satisfied:
            members = trial_members
        else:
            clusters.append(MatrixCluster(start, index))
            start = index
            members = [candidate]
    clusters.append(MatrixCluster(start, len(matrices)))
    return clusters
