"""Problem definitions: LUDEM and LUDEM-QC.

Definition 3 (LUDEM): given an EMS ``{A_1 … A_T}`` of sparse ``n x n``
matrices, determine an ordering ``O_i`` for each ``A_i`` and compute the LU
factors of ``A_i^{O_i}``.

Definition 5 (LUDEM-QC): additionally require every ordering to satisfy the
quality constraint ``ql(O_i, A_i) <= beta``; the problem is stated for
symmetric matrices, for which the reference quantity ``|s̃p(A_i*)|`` can be
evaluated cheaply.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ClusteringError, NotSymmetricError
from repro.graphs.ems import EvolvingMatrixSequence


@dataclasses.dataclass(frozen=True)
class LUDEMProblem:
    """An instance of the LUDEM problem (paper Definition 3).

    Attributes
    ----------
    ems:
        The evolving matrix sequence to decompose.
    similarity_threshold:
        The α parameter of α-clustering used by the cluster-based algorithms
        (ignored by BF and INC).
    """

    ems: EvolvingMatrixSequence
    similarity_threshold: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ClusteringError(
                f"similarity threshold alpha must lie in [0, 1], got {self.similarity_threshold}"
            )

    @property
    def length(self) -> int:
        """Number of matrices ``T`` in the sequence."""
        return len(self.ems)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.ems.n


@dataclasses.dataclass(frozen=True)
class LUDEMQCProblem:
    """An instance of the quality-constrained LUDEM-QC problem (Definition 5).

    Attributes
    ----------
    ems:
        The evolving matrix sequence; every matrix must be symmetric.
    quality_requirement:
        The β bound on the quality-loss of every produced ordering.
    """

    ems: EvolvingMatrixSequence
    quality_requirement: float = 0.1

    def __post_init__(self) -> None:
        if self.quality_requirement < 0.0:
            raise ClusteringError(
                f"quality requirement beta must be non-negative, got {self.quality_requirement}"
            )
        if not self.ems.is_symmetric():
            raise NotSymmetricError(
                "LUDEM-QC is defined for symmetric matrices; the given EMS is not symmetric"
            )

    @property
    def length(self) -> int:
        """Number of matrices ``T`` in the sequence."""
        return len(self.ems)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.ems.n
