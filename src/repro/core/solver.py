"""High-level facade: decompose an EMS once, answer many queries fast.

:class:`EMSSolver` wires together the pieces a downstream user needs: pick an
algorithm (BF / INC / CINC / CLUDE), decompose every matrix of an evolving
matrix sequence, and then answer arbitrarily many ``A_i x = b`` queries with
forward/backward substitution — the use case motivating the whole paper
(measure time series over an evolving graph sequence).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.inc import decompose_sequence_inc
from repro.core.result import SequenceResult
from repro.errors import MeasureError
from repro.exec.executors import Executor
from repro.graphs.ems import EvolvingMatrixSequence

#: Signature of a sequence decomposition routine.
SequenceAlgorithm = Callable[..., SequenceResult]

#: The algorithm registry keyed by canonical (upper-case) name.
ALGORITHMS: Dict[str, SequenceAlgorithm] = {
    "BF": decompose_sequence_bf,
    "INC": decompose_sequence_inc,
    "CINC": decompose_sequence_cinc,
    "CLUDE": decompose_sequence_clude,
}


def available_algorithms() -> List[str]:
    """Return the names of the registered sequence-decomposition algorithms."""
    return sorted(ALGORITHMS)


class EMSSolver:
    """Decompose an evolving matrix sequence and answer linear-system queries.

    Parameters
    ----------
    ems:
        The evolving matrix sequence.
    algorithm:
        One of :func:`available_algorithms` (case insensitive); defaults to
        ``"CLUDE"``.
    alpha:
        Similarity threshold for the cluster-based algorithms.
    executor:
        How to schedule the decomposition's work units: ``None`` (default)
        runs serially in-process, an ``int`` is a process-pool worker count,
        or pass an :class:`~repro.exec.executors.Executor` instance.  The
        decomposition is bitwise-identical regardless of the executor.

    Examples
    --------
    >>> from repro.graphs import generate_synthetic_egs, SyntheticEGSConfig
    >>> from repro.graphs import EvolvingMatrixSequence
    >>> egs = generate_synthetic_egs(SyntheticEGSConfig(nodes=60, edge_pool_size=360,
    ...                                                 average_degree=3, delta_edges=10,
    ...                                                 snapshots=5))
    >>> ems = EvolvingMatrixSequence.from_graphs(egs)
    >>> solver = EMSSolver(ems, algorithm="CLUDE", alpha=0.9)
    >>> result = solver.decompose()
    >>> len(result) == len(ems)
    True
    """

    def __init__(
        self,
        ems: EvolvingMatrixSequence,
        algorithm: str = "CLUDE",
        alpha: float = 0.95,
        executor: Union[Executor, int, None] = None,
    ) -> None:
        name = algorithm.upper()
        if name not in ALGORITHMS:
            raise MeasureError(
                f"unknown algorithm {algorithm!r}; available: {', '.join(available_algorithms())}"
            )
        self._ems = ems
        self._algorithm_name = name
        self._alpha = alpha
        self._executor = executor
        self._result: Optional[SequenceResult] = None

    @property
    def ems(self) -> EvolvingMatrixSequence:
        """The matrix sequence being solved."""
        return self._ems

    @property
    def algorithm(self) -> str:
        """The selected algorithm name."""
        return self._algorithm_name

    @property
    def result(self) -> Optional[SequenceResult]:
        """The decomposition result, or ``None`` before :meth:`decompose` runs."""
        return self._result

    def decompose(self) -> SequenceResult:
        """Run the selected algorithm over the EMS (idempotent)."""
        if self._result is None:
            runner = ALGORITHMS[self._algorithm_name]
            if self._algorithm_name in ("CINC", "CLUDE"):
                self._result = runner(
                    list(self._ems), alpha=self._alpha, executor=self._executor
                )
            else:
                self._result = runner(list(self._ems), executor=self._executor)
        return self._result

    def solve(self, index: int, b: Sequence[float]) -> np.ndarray:
        """Solve ``A_index x = b`` (decomposing first if necessary)."""
        result = self.decompose()
        return result.solve(index, b)

    def solve_many(self, index: int, block) -> np.ndarray:
        """Solve ``A_index X = B`` for an ``(n, k)`` block of right-hand sides.

        One batched forward/backward sweep answers all ``k`` queries; each
        result column is bitwise identical to :meth:`solve` of that column.
        """
        result = self.decompose()
        return result.solve_many(index, block)

    def solve_series(self, b: Sequence[float]) -> np.ndarray:
        """Solve every snapshot against the same right-hand side.

        Returns an array of shape ``(T, n)`` whose row ``i`` is the solution
        for snapshot ``i`` — the raw material of a measure time series.
        """
        result = self.decompose()
        return np.array(result.solve_all(b))

    def solve_series_batched(self, block) -> np.ndarray:
        """Solve every snapshot against an ``(n, k)`` block of right-hand sides.

        Issues one batched solve per snapshot instead of ``k`` scalar solves —
        the fast path for multi-seed PageRank/RWR/PPR time series.  Returns an
        array of shape ``(T, n, k)``; slice ``[:, :, c]`` is bitwise identical
        to :meth:`solve_series` of column ``c``.
        """
        result = self.decompose()
        return np.array(result.solve_all_many(block))

    def verify(self, tolerance: float = 1e-7) -> float:
        """Return the maximum solve residual across snapshots for a probe query.

        A cheap end-to-end self-check: solves each snapshot against the
        all-ones right-hand side and reports ``max_i ||A_i x_i - b||_inf``.
        """
        result = self.decompose()
        b = np.ones(self._ems.n, dtype=float)
        worst = 0.0
        for index, matrix in enumerate(self._ems):
            x = result.solve(index, b)
            residual = float(np.max(np.abs(matrix.matvec(x) - b)))
            worst = max(worst, residual)
        if worst > tolerance:
            raise MeasureError(
                f"solver verification failed: residual {worst} exceeds tolerance {tolerance}"
            )
        return worst
