"""High-level facade: decompose an EMS once, answer many queries fast.

:class:`EMSSolver` wires together the pieces a downstream user needs: pick an
algorithm (BF / INC / CINC / CLUDE), decompose every matrix of an evolving
matrix sequence, and then answer arbitrarily many ``A_i x = b`` queries with
forward/backward substitution — the use case motivating the whole paper
(measure time series over an evolving graph sequence).

When built with graph context (:meth:`EMSSolver.from_graphs`), the solver
also plugs into the query-planning layer: :meth:`EMSSolver.seed_planner`
pre-populates a :class:`~repro.query.planner.QueryPlanner` factor cache with
the sequence's decompositions (one entry per EMS index, under
:meth:`system_token`), and :meth:`plan` / :meth:`execute` answer
heterogeneous measure batches against those factors with zero extra
factorizations — every planner lookup is a counted cache hit.
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.inc import decompose_sequence_inc
from repro.core.result import SequenceResult
from repro.errors import MeasureError
from repro.exec.executors import Executor
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import DEFAULT_DAMPING, MatrixKind
from repro.graphs.snapshot import GraphSnapshot
from repro.query.batch import QueryBatch
from repro.query.planner import BatchResult, QueryPlan, QueryPlanner
from repro.query.spec import FactorizedSystem, Query, SystemKey

if TYPE_CHECKING:
    from repro.policy import ReusePolicy

#: Signature of a sequence decomposition routine.
SequenceAlgorithm = Callable[..., SequenceResult]

#: The algorithm registry keyed by canonical (upper-case) name.
ALGORITHMS: Dict[str, SequenceAlgorithm] = {
    "BF": decompose_sequence_bf,
    "INC": decompose_sequence_inc,
    "CINC": decompose_sequence_cinc,
    "CLUDE": decompose_sequence_clude,
}


def available_algorithms() -> List[str]:
    """Return the names of the registered sequence-decomposition algorithms."""
    return sorted(ALGORITHMS)


class EMSSolver:
    """Decompose an evolving matrix sequence and answer linear-system queries.

    Parameters
    ----------
    ems:
        The evolving matrix sequence.
    algorithm:
        One of :func:`available_algorithms` (case insensitive); defaults to
        ``"CLUDE"``.
    alpha:
        Similarity threshold for the cluster-based algorithms.
    executor:
        How to schedule the decomposition's work units: ``None`` (default)
        runs serially in-process, an ``int`` is a process-pool worker count,
        or pass an :class:`~repro.exec.executors.Executor` instance.  The
        decomposition is bitwise-identical regardless of the executor.
    policy:
        Reuse policy installed on planners this solver creates
        (:meth:`seed_planner` / :attr:`planner`).  ``None`` (default) keeps
        serving exact; a :class:`~repro.policy.qc.QCPolicy` lets batches
        against snapshots *near* the decomposed sequence be answered from
        the seeded factors within the policy's similarity/loss gates.

    Examples
    --------
    >>> from repro.graphs import generate_synthetic_egs, SyntheticEGSConfig
    >>> from repro.graphs import EvolvingMatrixSequence
    >>> egs = generate_synthetic_egs(SyntheticEGSConfig(nodes=60, edge_pool_size=360,
    ...                                                 average_degree=3, delta_edges=10,
    ...                                                 snapshots=5))
    >>> ems = EvolvingMatrixSequence.from_graphs(egs)
    >>> solver = EMSSolver(ems, algorithm="CLUDE", alpha=0.9)
    >>> result = solver.decompose()
    >>> len(result) == len(ems)
    True
    """

    def __init__(
        self,
        ems: EvolvingMatrixSequence,
        algorithm: str = "CLUDE",
        alpha: float = 0.95,
        executor: Union[Executor, int, None] = None,
        policy: Optional["ReusePolicy"] = None,
    ) -> None:
        name = algorithm.upper()
        if name not in ALGORITHMS:
            raise MeasureError(
                f"unknown algorithm {algorithm!r}; available: {', '.join(available_algorithms())}"
            )
        self._ems = ems
        self._algorithm_name = name
        self._alpha = alpha
        self._executor = executor
        self._policy = policy
        self._result: Optional[SequenceResult] = None
        # Graph context (snapshots + matrix kind + damping) is only ever set
        # by from_graphs, which composes the EMS itself — so the context can
        # never disagree with how the matrices were actually built.
        self._egs: Optional[EvolvingGraphSequence] = None
        self._kind: MatrixKind = MatrixKind.RANDOM_WALK
        self._damping: float = DEFAULT_DAMPING
        self._planner: Optional[QueryPlanner] = None

    @classmethod
    def from_graphs(
        cls,
        egs: EvolvingGraphSequence,
        kind: MatrixKind = MatrixKind.RANDOM_WALK,
        damping: float = DEFAULT_DAMPING,
        algorithm: str = "CLUDE",
        alpha: float = 0.95,
        executor: Union[Executor, int, None] = None,
        policy: Optional["ReusePolicy"] = None,
    ) -> "EMSSolver":
        """Build the solver from a graph sequence, keeping the graph context.

        The context (snapshots, matrix kind, damping) is what lets the
        solver seed query planners and answer measure batches directly; an
        EMS alone cannot, because queries are phrased against snapshots.
        This is the only way to attach graph context: the EMS is composed
        here from exactly that context, so the seeded factors always belong
        to the matrices the queries describe.
        """
        ems = EvolvingMatrixSequence.from_graphs(egs, kind=kind, damping=damping)
        solver = cls(
            ems, algorithm=algorithm, alpha=alpha, executor=executor, policy=policy
        )
        solver._egs = egs
        solver._kind = kind
        solver._damping = damping
        return solver

    @property
    def ems(self) -> EvolvingMatrixSequence:
        """The matrix sequence being solved."""
        return self._ems

    @property
    def algorithm(self) -> str:
        """The selected algorithm name."""
        return self._algorithm_name

    @property
    def result(self) -> Optional[SequenceResult]:
        """The decomposition result, or ``None`` before :meth:`decompose` runs."""
        return self._result

    def decompose(self) -> SequenceResult:
        """Run the selected algorithm over the EMS (idempotent)."""
        if self._result is None:
            runner = ALGORITHMS[self._algorithm_name]
            if self._algorithm_name in ("CINC", "CLUDE"):
                self._result = runner(
                    list(self._ems), alpha=self._alpha, executor=self._executor
                )
            else:
                self._result = runner(list(self._ems), executor=self._executor)
        return self._result

    def solve(self, index: int, b: Sequence[float]) -> np.ndarray:
        """Solve ``A_index x = b`` (decomposing first if necessary)."""
        result = self.decompose()
        return result.solve(index, b)

    def solve_many(self, index: int, block) -> np.ndarray:
        """Solve ``A_index X = B`` for an ``(n, k)`` block of right-hand sides.

        One batched forward/backward sweep answers all ``k`` queries; each
        result column is bitwise identical to :meth:`solve` of that column.
        """
        result = self.decompose()
        return result.solve_many(index, block)

    def solve_series(self, b: Sequence[float]) -> np.ndarray:
        """Solve every snapshot against the same right-hand side.

        Returns an array of shape ``(T, n)`` whose row ``i`` is the solution
        for snapshot ``i`` — the raw material of a measure time series.
        """
        result = self.decompose()
        return np.array(result.solve_all(b))

    def solve_series_batched(self, block) -> np.ndarray:
        """Solve every snapshot against an ``(n, k)`` block of right-hand sides.

        Issues one batched solve per snapshot instead of ``k`` scalar solves —
        the fast path for multi-seed PageRank/RWR/PPR time series.  Returns an
        array of shape ``(T, n, k)``; slice ``[:, :, c]`` is bitwise identical
        to :meth:`solve_series` of column ``c``.
        """
        result = self.decompose()
        return np.array(result.solve_all_many(block))

    # ------------------------------------------------------------------ #
    # Query-planner integration
    # ------------------------------------------------------------------ #
    def system_token(self, index: int) -> Tuple[Hashable, ...]:
        """Return the system-key token pinning a query to EMS index ``index``.

        Tokens are per-index (not per-content), so an EGS that repeats a
        snapshot still resolves each index to exactly the factors the
        decomposition stored for it.
        """
        if not 0 <= index < len(self._ems):
            raise MeasureError(f"snapshot index {index} out of bounds for T={len(self._ems)}")
        return ("ems", id(self), int(index))

    def seed_planner(
        self,
        planner: Optional[QueryPlanner] = None,
        executor: Union[Executor, int, None] = None,
    ) -> QueryPlanner:
        """Seed a query planner's factor cache with this solver's factors.

        One :class:`~repro.query.spec.FactorizedSystem` per EMS index is
        installed under ``(system_token(i), kind, damping)``, so planner
        groups that target this sequence are answered without any new
        factorization — the measure-series fast path.  Each token is also
        bound to its snapshot (:meth:`QueryPlanner.bind_snapshot`), so an
        approximate reuse policy can score the seeded systems as candidates
        for answering *similar* snapshots beyond the sequence.  Requires
        graph context (:meth:`from_graphs`): a bare-EMS solver cannot know
        which ``(kind, damping)`` its matrices encode, and seeding under a
        guessed key would answer queries from the wrong system.  ``executor``
        and the solver's ``policy`` only apply when a fresh planner is
        created here; an existing planner keeps its own executor and policy.
        """
        if self._egs is None:
            raise MeasureError(
                "this EMSSolver has no graph context; build it with "
                "EMSSolver.from_graphs to seed query planners"
            )
        if planner is not None and executor is not None:
            raise MeasureError(
                "pass executor only when seed_planner creates the planner; "
                "an existing planner keeps its own executor"
            )
        result = self.decompose()
        if planner is None:
            planner = QueryPlanner(
                executor=executor if executor is not None else self._executor,
                policy=self._policy,
            )
        for index, matrix in enumerate(self._ems):
            decomposition = result[index]
            token = self.system_token(index)
            planner.cache.seed(
                SystemKey(
                    system=token,
                    kind=self._kind,
                    damping=self._damping,
                ),
                FactorizedSystem(matrix, decomposition.ordering, decomposition.factors),
            )
            planner.bind_snapshot(token, self._egs[index])
        return planner

    @property
    def planner(self) -> QueryPlanner:
        """The lazily-seeded query planner bound to this solver's factors."""
        if self._planner is None:
            self._planner = self.seed_planner()
        return self._planner

    def register_evolution(
        self,
        new_snapshot: GraphSnapshot,
        from_index: Optional[int] = None,
    ) -> QueryPlanner:
        """Register ``new_snapshot`` as an evolution of one decomposed snapshot.

        The serving continuation of a measure series: when the graph keeps
        evolving after the sequence was decomposed, queries against the
        evolved head should not pay a cold factorization.  This registers a
        lineage from EMS index ``from_index`` (default: the last index) to
        ``new_snapshot`` on the bound planner, so the first batch touching
        ``new_snapshot`` Bennett-refreshes the seeded factors of that index
        — answers match a cold factorization within numerical tolerance (the
        refresh may also fall back, e.g. when CLUDE's static pattern cannot
        absorb the delta's fill-in; see ``cache_info()``'s counters).

        Returns the bound planner for chaining/inspection.
        """
        if self._egs is None:
            raise MeasureError(
                "this EMSSolver has no graph context; build it with "
                "EMSSolver.from_graphs to register snapshot evolutions"
            )
        index = len(self._ems) - 1 if from_index is None else int(from_index)
        if not 0 <= index < len(self._ems):
            raise MeasureError(
                f"snapshot index {index} out of bounds for T={len(self._ems)}"
            )
        planner = self.planner
        planner.register_evolution(
            self._egs[index], new_snapshot, old_system=self.system_token(index)
        )
        return planner

    def planner_cache_info(self) -> Dict[str, int]:
        """Per-group factor-cache statistics of the bound planner."""
        return self.planner.cache_info()

    def _attach_tokens(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryBatch:
        """Pin batch queries to this solver's factors where possible.

        Queries without an explicit ``system_token`` whose snapshot is one of
        the solver's snapshots (content match, first index wins) and whose
        ``(kind, damping)`` agree with the solver's are rewritten to that
        index's token; everything else is left untouched and will be
        factorized on demand by the planner.
        """
        if self._egs is None:
            raise MeasureError(
                "this EMSSolver has no graph context; build it with "
                "EMSSolver.from_graphs to plan measure queries"
            )
        index_of = {}
        for index, snapshot in enumerate(self._egs):
            index_of.setdefault(snapshot, index)
        from repro.query.spec import get_spec

        queries: List[Query] = []
        for query in batch:
            spec = get_spec(query.measure)
            if (
                query.system_token is None
                and query.damping == self._damping
                and spec.kind is self._kind
                and spec.build_matrix is None
                and not spec.matrix_params
                and query.snapshot in index_of
            ):
                query = dataclasses.replace(
                    query, system_token=self.system_token(index_of[query.snapshot])
                )
            queries.append(query)
        return QueryBatch(queries)

    def plan(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
        """Group a measure batch against this solver's factor cache."""
        return self.planner.plan(self._attach_tokens(batch))

    def execute(self, plan: QueryPlan) -> BatchResult:
        """Execute a planned batch through the seeded planner."""
        return self.planner.execute(plan)

    def run_batch(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchResult:
        """Plan and execute a measure batch in one call."""
        return self.execute(self.plan(batch))

    def verify(self, tolerance: float = 1e-7) -> float:
        """Return the maximum solve residual across snapshots for a probe query.

        A cheap end-to-end self-check: solves each snapshot against the
        all-ones right-hand side and reports ``max_i ||A_i x_i - b||_inf``.
        """
        result = self.decompose()
        b = np.ones(self._ems.n, dtype=float)
        worst = 0.0
        for index, matrix in enumerate(self._ems):
            x = result.solve(index, b)
            residual = float(np.max(np.abs(matrix.matvec(x) - b)))
            worst = max(worst, residual)
        if worst > tolerance:
            raise MeasureError(
                f"solver verification failed: residual {worst} exceeds tolerance {tolerance}"
            )
        return worst
