"""The straightly incremental (INC) baseline algorithm.

INC (paper Section 4) computes one Markowitz ordering — that of the first
matrix ``A_1`` — applies it to every matrix of the EMS, fully decomposes the
first reordered matrix and then applies Bennett's algorithm to move from each
snapshot's factors to the next.  Its weakness, demonstrated in the paper's
Figure 5, is that a fixed ordering progressively misfits the evolving
matrices, inflating fill-ins and slowing the incremental updates.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.result import (
    MatrixDecomposition,
    SequenceResult,
    Stopwatch,
    TimingBreakdown,
)
from repro.errors import EmptySequenceError
from repro.lu.bennett import bennett_update
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix


def decompose_sequence_inc(matrices: Sequence[SparseMatrix]) -> SequenceResult:
    """Run INC over an EMS: one global ordering, Bennett updates thereafter."""
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot decompose an empty matrix sequence")

    stopwatch = Stopwatch()
    with stopwatch.time("ordering"):
        ordering = markowitz_ordering(matrices[0])

    decompositions = []
    with stopwatch.time("decomposition"):
        first_reordered = ordering.apply(matrices[0])
        factors = crout_decompose(first_reordered)
    decompositions.append(
        MatrixDecomposition(
            index=0,
            ordering=ordering,
            factors=factors,
            fill_size=factors.fill_size,
            cluster_id=-1,
            structural_ops=factors.structural_ops,
        )
    )

    for index in range(1, len(matrices)):
        with stopwatch.time("bennett"):
            delta_original = matrices[index - 1].delta_entries(matrices[index])
            delta = ordering.map_entries(delta_original)
            # The new snapshot's list structures are derived from the previous
            # snapshot's (a structural copy) and then updated in place; this is
            # the restructuring cost the paper attributes to a straightforward
            # use of Bennett's algorithm.
            factors = factors.copy()
            ops_before = factors.structural_ops
            bennett_update(factors, delta)
            structural_ops = factors.structural_ops - ops_before
        decompositions.append(
            MatrixDecomposition(
                index=index,
                ordering=ordering,
                factors=factors,
                fill_size=factors.fill_size,
                cluster_id=-1,
                structural_ops=structural_ops,
            )
        )

    return SequenceResult(
        algorithm="INC",
        decompositions=decompositions,
        timing=TimingBreakdown.from_stopwatch(stopwatch),
        cluster_count=1,
    )
