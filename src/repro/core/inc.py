"""The straightly incremental (INC) baseline algorithm.

INC (paper Section 4) computes one Markowitz ordering — that of the first
matrix ``A_1`` — applies it to every matrix of the EMS, fully decomposes the
first reordered matrix and then applies Bennett's algorithm to move from each
snapshot's factors to the next.  Its weakness, demonstrated in the paper's
Figure 5, is that a fixed ordering progressively misfits the evolving
matrices, inflating fill-ins and slowing the incremental updates.

Each snapshot's factors are derived from the previous snapshot's, so INC is
one dependency chain: its execution plan has a single work unit and gains
nothing from a parallel executor (the executor contract still holds — the
output is identical either way).
"""

from __future__ import annotations

import time
from typing import List, Sequence, Union

from repro.core.result import (
    MatrixDecomposition,
    SequenceResult,
    Stopwatch,
    TimingBreakdown,
)
from repro.errors import EmptySequenceError
from repro.exec.executors import Executor, resolve_executor
from repro.exec.plan import plan_inc
from repro.lu.bennett import bennett_update
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.sparse.csr import SparseMatrix


def decompose_chain_inc(
    members: Sequence[SparseMatrix],
    start: int,
    stopwatch: Stopwatch,
    cluster_id: int = -1,
) -> List[MatrixDecomposition]:
    """Run the INC chain over ``members``: one ordering, Bennett updates after.

    This is the body of the (single) INC work unit; ``start`` is the EMS
    index of the first member, recorded on the decompositions.
    """
    with stopwatch.time("ordering"):
        ordering = markowitz_ordering(members[0])

    decompositions: List[MatrixDecomposition] = []
    with stopwatch.time("decomposition"):
        first_reordered = ordering.apply(members[0])
        factors = crout_decompose(first_reordered)
    decompositions.append(
        MatrixDecomposition(
            index=start,
            ordering=ordering,
            factors=factors,
            fill_size=factors.fill_size,
            cluster_id=cluster_id,
            structural_ops=factors.structural_ops,
        )
    )

    for offset in range(1, len(members)):
        with stopwatch.time("bennett"):
            delta_original = members[offset - 1].delta_entries(members[offset])
            delta = ordering.map_entries(delta_original)
            # The new snapshot's list structures are derived from the previous
            # snapshot's (a structural copy) and then updated in place; this is
            # the restructuring cost the paper attributes to a straightforward
            # use of Bennett's algorithm.
            factors = factors.copy()
            ops_before = factors.structural_ops
            bennett_update(factors, delta)
            structural_ops = factors.structural_ops - ops_before
        decompositions.append(
            MatrixDecomposition(
                index=start + offset,
                ordering=ordering,
                factors=factors,
                fill_size=factors.fill_size,
                cluster_id=cluster_id,
                structural_ops=structural_ops,
            )
        )
    return decompositions


def decompose_sequence_inc(
    matrices: Sequence[SparseMatrix],
    executor: Union[Executor, int, None] = None,
) -> SequenceResult:
    """Run INC over an EMS: one global ordering, Bennett updates thereafter.

    ``executor`` is accepted for interface uniformity with the other
    algorithms; INC's plan is a single chain unit, so every executor runs it
    the same way.
    """
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot decompose an empty matrix sequence")

    started = time.perf_counter()
    plan = plan_inc(matrices)
    outcome = resolve_executor(executor).execute(plan)
    return SequenceResult(
        algorithm="INC",
        decompositions=outcome.decompositions,
        timing=TimingBreakdown.from_buckets(outcome.timings),
        cluster_count=1,
        wall_time=time.perf_counter() - started,
        bytes_shipped=outcome.bytes_shipped,
    )
