"""CLUDE: fast cluster-based LU decomposition (the paper's main contribution).

CLUDE (paper Algorithm 3) improves on CINC in two ways:

1. **Better shared ordering.**  Instead of ordering each cluster by its first
   member, CLUDE computes the Markowitz ordering ``O_∪`` of the cluster's
   union matrix ``A_∪`` (Definition 7), which by construction "sees" the
   structure of every member and therefore fits all of them better.
2. **Universal static data structure.**  A symbolic decomposition of
   ``A_∪^{O_∪}`` yields the *universal symbolic sparsity pattern* (USSP,
   Definition 9), which by Theorem 1 covers the symbolic pattern of every
   member.  One static structure allocated from the USSP is reused for every
   member's factors, so Bennett's algorithm performs purely numerical work —
   no adjacency-list restructuring at all.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

from repro.core.clustering import MatrixCluster, alpha_clustering
from repro.core.result import (
    MatrixDecomposition,
    SequenceResult,
    Stopwatch,
    TimingBreakdown,
)
from repro.core.similarity import cluster_union_matrix
from repro.errors import EmptySequenceError
from repro.exec.executors import Executor, reduce_timings, resolve_executor
from repro.exec.plan import plan_clustered
from repro.lu.bennett import bennett_update
from repro.lu.crout import crout_decompose_into
from repro.lu.markowitz import markowitz_ordering
from repro.lu.static_structure import StaticLUFactors
from repro.lu.symbolic import symbolic_decomposition
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from repro.sparse.permutation import Ordering


def universal_symbolic_pattern(
    members: Sequence[SparseMatrix], ordering: Ordering
) -> SparsityPattern:
    """Return the USSP of a cluster under a shared ordering (Definition 9 / Theorem 1).

    The USSP is ``s̃p(A_∪^O)`` — the symbolic sparsity pattern of the reordered
    union matrix; by Lemma 1 it contains ``s̃p(A^O)`` for every member ``A``.
    """
    union = cluster_union_matrix(members)
    reordered_union = ordering.apply(union)
    return symbolic_decomposition(reordered_union.pattern())


def decompose_cluster_clude(
    members: Sequence[SparseMatrix],
    start: int,
    cluster_id: int,
    stopwatch: Stopwatch,
    share_factors: bool = False,
) -> List[MatrixDecomposition]:
    """Run CLUDE on one cluster (paper Algorithm 3), returning its decompositions.

    ``members`` are the cluster's matrices in sequence order and ``start`` is
    the EMS index of the first one.  This is the body of one CLUDE work
    unit; serial and parallel executors run exactly this code.

    Parameters
    ----------
    share_factors:
        When ``True``, every member's decomposition references the *same*
        static structure (whose values at return time are those of the last
        member).  This mirrors a streaming deployment where factors are used
        as soon as they are produced and then overwritten; it keeps memory
        flat across very long clusters.  The default (``False``) snapshots
        the values for every member so all solves remain available, which is
        what the examples and tests expect.
    """
    with stopwatch.time("ordering"):
        union_matrix = cluster_union_matrix(members)
        ordering = markowitz_ordering(union_matrix)
    with stopwatch.time("symbolic"):
        reordered_union = ordering.apply(union_matrix)
        ussp = symbolic_decomposition(reordered_union.pattern())
        static_factors = StaticLUFactors(ussp)

    decompositions: List[MatrixDecomposition] = []
    with stopwatch.time("decomposition"):
        first_reordered = ordering.apply(members[0])
        crout_decompose_into(first_reordered, static_factors, pattern=ussp)
    decompositions.append(
        _make_decomposition(start, ordering, static_factors, cluster_id, share_factors)
    )

    for offset in range(1, len(members)):
        with stopwatch.time("bennett"):
            delta_original = members[offset - 1].delta_entries(members[offset])
            delta = ordering.map_entries(delta_original)
            bennett_update(static_factors, delta)
        decompositions.append(
            _make_decomposition(
                start + offset, ordering, static_factors, cluster_id, share_factors
            )
        )
    return decompositions


def _make_decomposition(
    index: int,
    ordering: Ordering,
    static_factors: StaticLUFactors,
    cluster_id: int,
    share_factors: bool,
) -> MatrixDecomposition:
    """Package the current state of the static factors as a decomposition record."""
    factors = static_factors if share_factors else _snapshot_static(static_factors)
    return MatrixDecomposition(
        index=index,
        ordering=ordering,
        factors=factors,
        fill_size=static_factors.fill_size,
        cluster_id=cluster_id,
        structural_ops=0,
    )


def _snapshot_static(static_factors: StaticLUFactors) -> StaticLUFactors:
    """Return a value copy of a static structure (same pattern, copied values)."""
    clone = StaticLUFactors(static_factors.pattern)
    for i, j, value in static_factors.l_items():
        if i == j:
            clone.set_l_diagonal(i, value)
        else:
            clone.l_set(i, j, value)
    for i, j, value in static_factors.u_items():
        clone.u_set(i, j, value)
    return clone


def decompose_sequence_clude(
    matrices: Sequence[SparseMatrix],
    alpha: float = 0.95,
    clusters: Optional[Sequence[MatrixCluster]] = None,
    share_factors: bool = False,
    executor: Union[Executor, int, None] = None,
) -> SequenceResult:
    """Run CLUDE over an EMS.

    Parameters
    ----------
    matrices:
        The evolving matrix sequence.
    alpha:
        Similarity threshold for α-clustering (ignored when ``clusters`` is given).
    clusters:
        Optional precomputed clustering (the LUDEM-QC driver passes β-clusters).
    share_factors:
        See :func:`decompose_cluster_clude`.
    executor:
        How to schedule the per-cluster work units: ``None`` (default) runs
        serially, an ``int`` is a process-pool worker count, or pass an
        :class:`~repro.exec.executors.Executor`.  Output is bitwise-identical
        across executors; clustering itself always runs in-process.
    """
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot decompose an empty matrix sequence")

    started = time.perf_counter()
    stopwatch = Stopwatch()
    if clusters is None:
        with stopwatch.time("clustering"):
            clusters = alpha_clustering(matrices, alpha)

    plan = plan_clustered(
        "CLUDE", matrices, clusters, options={"share_factors": share_factors}
    )
    outcome = resolve_executor(executor).execute(plan)
    timings = reduce_timings([stopwatch.totals(), outcome.timings])
    return SequenceResult(
        algorithm="CLUDE",
        decompositions=outcome.decompositions,
        timing=TimingBreakdown.from_buckets(timings),
        cluster_count=len(clusters),
        wall_time=time.perf_counter() - started,
        bytes_shipped=outcome.bytes_shipped,
    )
