"""Core algorithms of the paper: BF, INC, CINC, CLUDE and the QC variants."""

from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude, universal_symbolic_pattern
from repro.core.clustering import (
    MatrixCluster,
    alpha_clustering,
    beta_clustering_cinc,
    beta_clustering_clude,
    clusters_cover_sequence,
)
from repro.core.inc import decompose_sequence_inc
from repro.core.problem import LUDEMProblem, LUDEMQCProblem
from repro.core.qc import solve_qc_cinc, solve_qc_clude
from repro.core.quality import (
    MarkowitzReference,
    markowitz_reference_size,
    quality_loss,
    symbolic_size_under_ordering,
)
from repro.core.result import (
    MatrixDecomposition,
    SequenceResult,
    Stopwatch,
    TimingBreakdown,
)
from repro.core.similarity import (
    cluster_compactness,
    cluster_intersection_pattern,
    cluster_union_matrix,
    cluster_union_pattern,
    is_alpha_bounded,
)
from repro.core.solver import ALGORITHMS, EMSSolver, available_algorithms

__all__ = [
    "LUDEMProblem",
    "LUDEMQCProblem",
    "MatrixCluster",
    "alpha_clustering",
    "beta_clustering_cinc",
    "beta_clustering_clude",
    "clusters_cover_sequence",
    "decompose_sequence_bf",
    "decompose_sequence_inc",
    "decompose_sequence_cinc",
    "decompose_sequence_clude",
    "universal_symbolic_pattern",
    "solve_qc_cinc",
    "solve_qc_clude",
    "quality_loss",
    "markowitz_reference_size",
    "symbolic_size_under_ordering",
    "MarkowitzReference",
    "MatrixDecomposition",
    "SequenceResult",
    "TimingBreakdown",
    "Stopwatch",
    "cluster_compactness",
    "cluster_intersection_pattern",
    "cluster_union_pattern",
    "cluster_union_matrix",
    "is_alpha_bounded",
    "EMSSolver",
    "ALGORITHMS",
    "available_algorithms",
]
