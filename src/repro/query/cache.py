"""The planner's two caches: factors by system key, answers by RHS digest.

Split out of the planner monolith so the resolution ladder
(:mod:`repro.query.resolution`) and the planner
(:mod:`repro.query.planner`) both build on the same cache surface without
a circular import.  Every name here is re-exported from
``repro.query.planner`` for backwards compatibility.

* :class:`FactorCache` holds :class:`~repro.query.spec.FactorizedSystem`
  objects keyed by :class:`~repro.query.spec.SystemKey`, with group-level
  hit/miss accounting, LRU bounding, Bennett delta refresh, listener
  channels, and an optional :class:`~repro.store.factorstore.FactorStore`
  disk tier (spill on eviction, restore on miss, checkpoint on demand).
* :class:`ResultCache` holds *finalized answers* keyed by
  ``(SystemKey, finalize identity, rhs fingerprint)`` so repeated hot
  queries skip the substitution sweep entirely.
"""

from __future__ import annotations

import types
import weakref
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.errors import MeasureError, PatternError, SingularMatrixError, StoreError
from repro.lu.bennett import bennett_update
from repro.query.spec import FactorizedSystem, SystemKey
from repro.sparse.csr import SparseMatrix
from repro.sparse.types import Entries

if TYPE_CHECKING:  # runtime import is lazy: the store package sits above
    # this one in the layering (it imports query.spec).
    from repro.store.factorstore import FactorStore, RefreshProvenance

#: Default ``refresh_threshold``: a system-matrix delta touching more than
#: this fraction of the cached matrix's non-zeros falls back to a cold
#: factorization — beyond it the rank-1 sweeps stop being cheaper than a
#: fresh Markowitz + Crout pass (and a large delta usually means the old
#: ordering misfits the new matrix anyway).
DEFAULT_REFRESH_THRESHOLD = 0.25


def _apply_entry_delta(matrix: SparseMatrix, delta: Entries) -> SparseMatrix:
    """Return ``matrix + ΔA`` for a sparse entry delta in original coordinates."""
    if not delta:
        return matrix
    change = SparseMatrix.from_triples(
        matrix.n, ((i, j, value) for (i, j), value in delta.items())
    )
    return matrix.add(change)


class FactorCache:
    """Cache of :class:`FactorizedSystem` objects keyed by :class:`SystemKey`.

    Tracks hits and misses at *group* granularity (one lookup per planned
    group, not per query), which is what the acceptance counters assert
    against.  Entries seeded via :meth:`seed` (e.g. from an EMS
    decomposition) count as ordinary hits when used.

    Parameters
    ----------
    max_systems:
        Optional LRU bound for long-lived serving planners over evolving
        graphs, where every new snapshot is a new key and an unbounded cache
        would grow without limit.  ``None`` (the default) keeps every entry —
        required for the bitwise guarantees of seeded sequence planners: an
        evicted entry is transparently re-factorized from scratch, which is
        still an exact solve but not necessarily bit-identical to the
        decomposition-seeded factors it replaced.  :meth:`seed` refuses to
        overflow the bound (see its docstring) for the same reason.
    refresh_threshold:
        Delta-refresh feasibility gate, as a fraction of the cached system
        matrix's non-zeros: a system delta with more entries than
        ``refresh_threshold * nnz`` is rejected (counted in
        ``refresh_fallbacks``) and the caller cold-factorizes instead.
    store:
        Optional :class:`~repro.store.factorstore.FactorStore` disk tier.
        With a store attached, LRU evictions (and stealing refreshes)
        *spill* the departing system to disk instead of dropping it, a
        memory miss consults the store before reporting a miss to the
        caller (a restored system is installed and returned — the planner
        sees it as a cache hit and skips the cold factorization), and
        :meth:`checkpoint` flushes the whole working set.  Refresh-produced
        systems remember their provenance (parent + applied delta) so their
        spills are compact delta checkpoints.  ``cache_info()`` grows four
        extra counters — ``store_hits`` / ``store_misses`` (partitioning
        the memory misses), ``spills``, and ``restore_fallbacks`` (files
        that existed but could not be restored: corrupt, torn, or replay
        breakdown — served cold instead, never wrong).
    """

    def __init__(
        self,
        max_systems: Optional[int] = None,
        refresh_threshold: float = DEFAULT_REFRESH_THRESHOLD,
        store: Optional["FactorStore"] = None,
    ) -> None:
        if max_systems is not None and max_systems < 1:
            raise MeasureError(f"max_systems must be positive, got {max_systems}")
        if refresh_threshold < 0.0:
            raise MeasureError(
                f"refresh_threshold must be non-negative, got {refresh_threshold}"
            )
        self._systems: "OrderedDict[SystemKey, FactorizedSystem]" = OrderedDict()
        self._max_systems = max_systems
        self._refresh_threshold = float(refresh_threshold)
        self._store = store
        #: refresh lineage per cached key, kept only while a store could
        #: spill it as a delta checkpoint (see RefreshProvenance)
        self._provenance: Dict[SystemKey, "RefreshProvenance"] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._refreshes = 0
        self._refresh_fallbacks = 0
        self._store_hits = 0
        self._store_misses = 0
        self._spills = 0
        self._restore_fallbacks = 0
        #: resolvers returning the live listener or ``None`` once collected
        self._invalidation_listeners: List[
            Callable[[], Optional[Callable[[SystemKey], None]]]
        ] = []
        self._eviction_listeners: List[
            Callable[[], Optional[Callable[[SystemKey], None]]]
        ] = []

    def __len__(self) -> int:
        return len(self._systems)

    def __contains__(self, key: SystemKey) -> bool:
        return key in self._systems

    def keys(self) -> Iterator[SystemKey]:
        """Iterate over the cached system keys (snapshot → key index scans)."""
        return iter(tuple(self._systems))

    @property
    def disk_store(self) -> Optional["FactorStore"]:
        """The attached disk tier, or ``None``.

        (Named ``disk_store`` because :meth:`store` — the historical install
        method — already occupies the ``store`` attribute.)
        """
        return self._store

    def lookup_memory(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the system cached *in memory* and count the hit or miss.

        The memory half of :meth:`lookup` — the resolution ladder's hit
        tier.  A miss is counted here (``misses``) whether or not a store
        later serves the key; :meth:`restore_from_store` refines the miss
        into ``store_hits`` / ``store_misses`` without recounting.
        """
        system = self._systems.get(key)
        if system is not None:
            self._hits += 1
            self._systems.move_to_end(key)
            return system
        self._misses += 1
        return None

    def restore_from_store(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Restore a memory-missed key from the disk tier, if possible.

        The store half of :meth:`lookup` — the resolution ladder's
        store-restore tier.  Call it only after :meth:`lookup_memory`
        reported a miss: a restorable checkpoint is decoded (or
        delta-replayed), installed, counted as a ``store_hits``, and
        returned.  ``store_misses`` counts the memory misses the store
        could not serve either; among those, ``restore_fallbacks`` counts
        the ones where a checkpoint file existed but failed its checksum or
        its delta replay.  Returns ``None`` (without touching any counter)
        when no store is attached.
        """
        if self._store is None:
            return None
        if key not in self._store:
            self._store_misses += 1
            return None
        restored = self._store.load(key)
        if restored is None:
            self._restore_fallbacks += 1
            self._store_misses += 1
            return None
        self._store_hits += 1
        self._install(key, restored)
        return restored

    def lookup(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system for ``key`` and count the hit or miss.

        With a store attached, a memory miss consults the disk tier before
        giving up — the caller never learns the system was not in memory,
        which is exactly what makes a warm restart answer without cold
        factorizations.  Exactly :meth:`lookup_memory` followed (on a miss)
        by :meth:`restore_from_store`; the ladder planner calls the halves
        directly so each tier's serve is counted under its own name.
        """
        system = self.lookup_memory(key)
        if system is not None:
            return system
        return self.restore_from_store(key)

    def peek(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system without touching counters or recency."""
        return self._systems.get(key)

    def touch(self, key: SystemKey) -> None:
        """Freshen a key's LRU recency without counting a hit or a miss.

        Used by policy-level reuse: a cached system answering *for another
        key* is in active use and must not age towards eviction, but the
        pinned per-group hit/miss accounting (one counted lookup per planned
        group) may not change.
        """
        if key in self._systems:
            self._systems.move_to_end(key)

    def add_invalidation_listener(self, listener: Callable[[SystemKey], None]) -> None:
        """Subscribe to key invalidations (evictions and factor installs).

        The listener fires whenever the factors behind a key can no longer be
        assumed unchanged: the key is evicted (a later re-factorization is
        exact but not necessarily bit-identical), dropped by a stealing
        refresh, or has new factors installed over it.  Planners hang their
        result caches here so derived answers never outlive their factors.

        Bound-method listeners are held **weakly** (their receiver is not
        kept alive by the subscription, and dead subscriptions are pruned),
        so short-lived planners sharing a long-lived factor cache do not
        accumulate; keep the receiving object alive for as long as the
        subscription should fire.  Plain functions are held strongly.
        """
        self._invalidation_listeners.append(self._hold_listener(listener))

    def add_eviction_listener(self, listener: Callable[[SystemKey], None]) -> None:
        """Subscribe to key *removals* only (LRU eviction, steal, clear).

        Unlike :meth:`add_invalidation_listener` — which also fires when new
        factors are installed over a key — this channel fires exactly when a
        key leaves the cache.  Planners use it to prune per-key bookkeeping
        (lineage entries, snapshot bindings) that is only useful while the
        key's system is cached, which is what keeps a long-lived serving
        planner's registries bounded.  The same weak-holding rules as
        invalidation listeners apply.
        """
        self._eviction_listeners.append(self._hold_listener(listener))

    @staticmethod
    def _hold_listener(
        listener: Callable[[SystemKey], None],
    ) -> Callable[[], Optional[Callable[[SystemKey], None]]]:
        if isinstance(listener, types.MethodType):
            return weakref.WeakMethod(listener)
        return lambda _fn=listener: _fn

    @staticmethod
    def _fire(
        listeners: List[Callable[[], Optional[Callable[[SystemKey], None]]]],
        key: SystemKey,
    ) -> None:
        dead = False
        for resolver in listeners:
            listener = resolver()
            if listener is None:
                dead = True
                continue
            listener(key)
        if dead:
            listeners[:] = [
                resolver for resolver in listeners if resolver() is not None
            ]

    def _invalidate(self, key: SystemKey) -> None:
        self._fire(self._invalidation_listeners, key)

    def _evicted(self, key: SystemKey) -> None:
        self._fire(self._eviction_listeners, key)

    def _spill(self, key: SystemKey, system: FactorizedSystem) -> bool:
        """Checkpoint a departing (or flushed) system to the store, if any.

        Uses the recorded refresh provenance for a compact delta checkpoint
        when available, a full checkpoint otherwise.  Unsupported factor
        containers and I/O failures are swallowed — spilling is an
        optimization, never a correctness requirement (the system would
        simply cold-factorize on a later miss).
        """
        if self._store is None:
            return False
        try:
            self._store.save(key, system, self._provenance.get(key))
        except (StoreError, OSError):
            return False
        self._spills += 1
        return True

    def _install(self, key: SystemKey, system: FactorizedSystem) -> None:
        self._invalidate(key)
        # New factors over the key invalidate any recorded refresh lineage
        # (commit_refresh re-records its own right after).
        self._provenance.pop(key, None)
        self._systems[key] = system
        self._systems.move_to_end(key)
        if self._max_systems is not None:
            while len(self._systems) > self._max_systems:
                evicted, dropped = self._systems.popitem(last=False)
                self._evictions += 1
                self._spill(evicted, dropped)
                self._provenance.pop(evicted, None)
                self._invalidate(evicted)
                self._evicted(evicted)

    def seed(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a system without touching the counters (pre-population).

        Seeding must never evict: a seeded planner's guarantee is that the
        whole sequence answers from exactly the decomposition-provided
        factors, and a silent LRU eviction of a seeded entry would break it
        without any signal (the evicted index would be transparently — but
        approximately-bitwise-differently — re-factorized).  Seeding a key
        that would overflow ``max_systems`` therefore raises
        :class:`~repro.errors.MeasureError`; raise the bound or use an
        unbounded cache for seeded planners.
        """
        if (
            self._max_systems is not None
            and key not in self._systems
            and len(self._systems) >= self._max_systems
        ):
            raise MeasureError(
                f"seeding would overflow max_systems={self._max_systems} "
                f"(cache already holds {len(self._systems)} systems); seeded "
                "entries must never be evicted — raise max_systems to at "
                "least the number of seeded systems or use an unbounded cache"
            )
        self._install(key, system)

    def store(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a freshly factorized system (after a counted miss)."""
        self._install(key, system)

    # ------------------------------------------------------------------ #
    # Delta refresh
    # ------------------------------------------------------------------ #
    def _refresh_feasible(
        self, cached: Optional[FactorizedSystem], delta: Entries
    ) -> bool:
        """Gate a refresh: the parent must be cached and the delta small."""
        if cached is None:
            return False
        return len(delta) <= self._refresh_threshold * max(cached.matrix.nnz, 1)

    def prepare_refresh(
        self, old_key: SystemKey, delta: Entries
    ) -> Optional[FactorizedSystem]:
        """Feasibility-check a refresh and return a mutable clone of the parent.

        ``delta`` is the system-matrix entry delta in *original* (unordered)
        coordinates; only its size matters here.  Returns a clone whose
        factor container may be Bennett-updated in place (e.g. inside an
        executor work unit), or ``None`` — counting a ``refresh_fallbacks``
        — when the parent is missing or the delta exceeds the threshold.
        Hit/miss counters are untouched either way.
        """
        cached = self._systems.get(old_key)
        if not self._refresh_feasible(cached, delta):
            self._refresh_fallbacks += 1
            return None
        return cached.clone()

    def commit_refresh(
        self,
        new_key: SystemKey,
        system: FactorizedSystem,
        provenance: Optional["RefreshProvenance"] = None,
    ) -> None:
        """Install a successfully refreshed system (counted in ``refreshes``).

        ``provenance`` — the parent system and the exact applied delta — is
        remembered (only while a store is attached; it pins the parent
        system in memory) so a later spill of this key writes a compact
        delta checkpoint instead of a full one.
        """
        self._install(new_key, system)
        if provenance is not None and self._store is not None:
            self._provenance[new_key] = provenance
        self._refreshes += 1

    def refresh_failed(self) -> None:
        """Record that a prepared refresh broke down numerically."""
        self._refresh_fallbacks += 1

    def refresh(
        self,
        old_key: SystemKey,
        new_key: SystemKey,
        delta: Entries,
        new_matrix: Optional[SparseMatrix] = None,
        steal: bool = False,
    ) -> Optional[FactorizedSystem]:
        """Derive the system for ``new_key`` from ``old_key`` by Bennett update.

        The paper's INC insight applied to the serving cache: instead of a
        cold factorization for a snapshot that evolved from a cached one by a
        small delta, clone (or, with ``steal=True``, remove and reuse) the
        cached :class:`FactorizedSystem`, apply the sparse system-matrix
        ``delta`` (original coordinates; mapped through the stored ordering
        here) as rank-1 Bennett sweeps, and install the result under
        ``new_key``.

        Returns the refreshed system, or ``None`` with ``refresh_fallbacks``
        incremented when the parent is missing, the delta exceeds
        ``refresh_threshold`` as a fraction of the cached matrix's non-zeros,
        the update would fill outside a static factor pattern
        (:class:`~repro.errors.PatternError`), or a pivot breaks down — the
        caller then falls back to a full factorization.  Every failure mode
        leaves the parent entry intact (``steal`` only takes effect on
        success).  Hit/miss counters are never touched.  ``new_matrix``
        overrides the stored matrix of the result (defaults to
        ``old matrix + delta``).
        """
        cached = self._systems.get(old_key)
        if not self._refresh_feasible(cached, delta):
            self._refresh_fallbacks += 1
            return None
        # Always sweep on a clone — even when stealing — so a mid-sweep
        # breakdown leaves the parent entry intact and still answering; the
        # old key is dropped only once the refresh has succeeded.
        working = cached.clone()
        ordering = working.ordering
        mapped = ordering.map_entries(delta) if ordering is not None else dict(delta)
        try:
            bennett_update(working.factors, mapped)
        except (PatternError, SingularMatrixError):
            self._refresh_fallbacks += 1
            return None
        if new_matrix is None:
            new_matrix = _apply_entry_delta(cached.matrix, delta)
        system = FactorizedSystem(new_matrix, ordering, working.factors)
        if steal:
            popped = self._systems.pop(old_key, None)
            if popped is not None:
                self._spill(old_key, popped)
                self._provenance.pop(old_key, None)
                self._invalidate(old_key)
                self._evicted(old_key)
        provenance: Optional["RefreshProvenance"] = None
        if self._store is not None:
            from repro.store.factorstore import RefreshProvenance

            # This path applied ``mapped`` in its own insertion order (the
            # executor refresh units sort theirs); the provenance must
            # record exactly the order that produced the factors.
            provenance = RefreshProvenance(old_key, cached, dict(mapped))
        self.commit_refresh(new_key, system, provenance=provenance)
        return system

    def checkpoint(self) -> int:
        """Flush every cached system to the store; return the spill count.

        Non-destructive: the working set stays in memory untouched.  A
        warm-booted cache pointed at the same store directory answers the
        flushed keys from disk, bitwise-identically, without a single cold
        factorization.  Raises :class:`~repro.errors.MeasureError` when no
        store is attached.
        """
        if self._store is None:
            raise MeasureError(
                "checkpoint() requires a FactorCache constructed with store=..."
            )
        count = 0
        for key, system in list(self._systems.items()):
            if self._spill(key, system):
                count += 1
        return count

    def cache_info(self) -> Dict[str, int]:
        """Return hit/miss/eviction/refresh/size counters (the reuse statistics).

        With a store attached, four more counters appear: ``store_hits`` /
        ``store_misses`` partition the memory ``misses`` into served-from-
        disk vs truly cold, ``spills`` counts systems checkpointed on
        eviction/steal/:meth:`checkpoint`, and ``restore_fallbacks`` counts
        checkpoint files that existed but could not be restored.  (They are
        omitted entirely for store-less caches, whose ``cache_info()`` stays
        byte-compatible with earlier releases.)
        """
        info = {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "refreshes": self._refreshes,
            "refresh_fallbacks": self._refresh_fallbacks,
            "size": len(self._systems),
        }
        if self._store is not None:
            info.update({
                "store_hits": self._store_hits,
                "store_misses": self._store_misses,
                "spills": self._spills,
                "restore_fallbacks": self._restore_fallbacks,
            })
        return info

    def clear(self) -> None:
        """Drop every cached system and reset the counters.

        The store (if any) is left untouched: ``clear`` empties the memory
        tier, it does not delete checkpoints.  Subsequent lookups may
        therefore still restore from disk.
        """
        while self._systems:
            key, _ = self._systems.popitem(last=False)
            self._provenance.pop(key, None)
            self._invalidate(key)
            self._evicted(key)
        self._provenance.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._refreshes = 0
        self._refresh_fallbacks = 0
        self._store_hits = 0
        self._store_misses = 0
        self._spills = 0
        self._restore_fallbacks = 0


#: Default size of a planner's answer-level result cache.
DEFAULT_RESULT_CACHE_SIZE = 1024

#: A result-cache key: ``(SystemKey, finalize identity, rhs fingerprint)``.
ResultKey = Tuple[SystemKey, Hashable, bytes]


class ResultCache:
    """LRU cache of *finalized answers* keyed by ``(SystemKey, rhs fingerprint)``.

    Serving workloads repeat hot queries; a repeated query should not even
    pay the substitution sweep.  The key is the system identity plus a digest
    of the right-hand-side bytes — so two queries whose specs build the same
    RHS against the same factors share one entry (e.g. an RWR from node ``u``
    and a single-seed PPR at ``u``).  Specs with a post-transform or
    normalization extend the key with their name and parameters, since their
    final answer is not a pure function of ``(system, rhs)``.

    Entries are value-isolated: arrays are copied in on store and copied out
    on hit, so callers may mutate their results freely.  Invalidation is
    driven by the factor cache (:meth:`FactorCache.add_invalidation_listener`):
    whenever a key's factors are evicted, stolen or replaced, every answer
    derived from them is dropped — a re-factorized system is exact but not
    necessarily bit-identical, and a refreshed one is not even that.
    """

    def __init__(self, max_entries: int = DEFAULT_RESULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise MeasureError(f"max_entries must be positive, got {max_entries}")
        self._entries: "OrderedDict[ResultKey, np.ndarray]" = OrderedDict()
        self._by_system: Dict[SystemKey, Set[ResultKey]] = {}
        self._max_entries = int(max_entries)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: ResultKey) -> Optional[np.ndarray]:
        """Return a copy of the cached answer, counting the hit or miss."""
        answer = self._entries.get(key)
        if answer is None:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return answer.copy()

    def store(self, key: ResultKey, answer: np.ndarray) -> None:
        """Install (a copy of) a freshly computed answer."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = np.array(answer, dtype=float, copy=True)
        self._by_system.setdefault(key[0], set()).add(key)
        while len(self._entries) > self._max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._evictions += 1
            siblings = self._by_system.get(evicted[0])
            if siblings is not None:
                siblings.discard(evicted)
                if not siblings:
                    del self._by_system[evicted[0]]

    def invalidate_system(self, system_key: SystemKey) -> None:
        """Drop every answer derived from one system's factors."""
        for key in self._by_system.pop(system_key, ()):  # type: ignore[arg-type]
            if self._entries.pop(key, None) is not None:
                self._invalidations += 1

    def cache_info(self) -> Dict[str, int]:
        """Return hit/miss/eviction/invalidation/size counters."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "invalidations": self._invalidations,
            "size": len(self._entries),
        }

    def clear(self) -> None:
        """Drop every cached answer and reset the counters."""
        self._entries.clear()
        self._by_system.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
