"""Declarative measure IR and the factor-reusing query planner.

The layering this package establishes::

    measures (thin drivers: rwr, ppr, pagerank, salsa, hitting_time)
        └── query   (MeasureSpec IR · QueryBatch · QueryPlanner + FactorCache)
              ├── lu      (Markowitz ordering · Crout factors · substitution)
              │     └── sparse kernels (CSR matvec / spgemm / batched solves)
              └── exec    (work units · serial / parallel executors)

A :class:`MeasureSpec` declares how a measure becomes an ``A x = b``
instance; a :class:`QueryBatch` collects heterogeneous queries; a
:class:`QueryPlanner` groups them by shared system matrix, factorizes each
group exactly once (dispatching independent groups as executor work units)
and answers every group with one batched multi-RHS solve.
"""

from repro.query.batch import QueryBatch
from repro.query.planner import (
    ApproximationRecord,
    BatchResult,
    DirectAnswer,
    FactorCache,
    PlannedGroup,
    PlannerStats,
    QueryPlan,
    QueryPlanner,
    ResultCache,
)
from repro.query.spec import (
    FactorizedSystem,
    MeasureSpec,
    Query,
    SystemKey,
    canonical_params,
    evaluate,
    evaluate_block,
    get_spec,
    make_query,
    register_spec,
    registered_measures,
    system_key,
)

__all__ = [
    "MeasureSpec",
    "Query",
    "SystemKey",
    "FactorizedSystem",
    "make_query",
    "canonical_params",
    "system_key",
    "evaluate",
    "evaluate_block",
    "register_spec",
    "get_spec",
    "registered_measures",
    "QueryBatch",
    "QueryPlanner",
    "QueryPlan",
    "PlannedGroup",
    "DirectAnswer",
    "PlannerStats",
    "BatchResult",
    "ApproximationRecord",
    "FactorCache",
    "ResultCache",
]
