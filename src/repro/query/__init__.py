"""Declarative measure IR and the factor-reusing query planner.

The layering this package establishes::

    measures (thin drivers: rwr, ppr, pagerank, salsa, hitting_time)
        └── query   (MeasureSpec IR · QueryBatch · QueryPlanner + FactorCache)
              ├── lu      (Markowitz ordering · Crout factors · substitution)
              │     └── sparse kernels (CSR matvec / spgemm / batched solves)
              └── exec    (work units · serial / parallel executors)

A :class:`MeasureSpec` declares how a measure becomes an ``A x = b``
instance; a :class:`QueryBatch` collects heterogeneous queries; a
:class:`QueryPlanner` groups them by shared system matrix and walks each
group down the :class:`ResolutionLadder` (:mod:`repro.query.resolution`)
— hit, store restore, verbatim reuse, corrected reuse, delta refresh,
cold factorization — so a system matrix is factorized at most once, then
answers every group with one batched multi-RHS solve.  The factor and
result caches live in :mod:`repro.query.cache`.
"""

from repro.query.batch import QueryBatch
from repro.query.cache import FactorCache, ResultCache
from repro.query.planner import (
    BatchResult,
    DirectAnswer,
    PlannedGroup,
    PlannerStats,
    QueryPlan,
    QueryPlanner,
)
from repro.query.resolution import (
    ApproximationRecord,
    CandidateScan,
    ColdTier,
    CorrectedReuseTier,
    HitTier,
    RefreshTier,
    Resolution,
    ResolutionContext,
    ResolutionLadder,
    ResolutionTier,
    StoreRestoreTier,
    VerbatimReuseTier,
    default_stages,
)
from repro.query.spec import (
    FactorizedSystem,
    MeasureSpec,
    Query,
    SystemKey,
    canonical_params,
    evaluate,
    evaluate_block,
    get_spec,
    make_query,
    register_spec,
    registered_measures,
    system_key,
)

__all__ = [
    "MeasureSpec",
    "Query",
    "SystemKey",
    "FactorizedSystem",
    "make_query",
    "canonical_params",
    "system_key",
    "evaluate",
    "evaluate_block",
    "register_spec",
    "get_spec",
    "registered_measures",
    "QueryBatch",
    "QueryPlanner",
    "QueryPlan",
    "PlannedGroup",
    "DirectAnswer",
    "PlannerStats",
    "BatchResult",
    "ApproximationRecord",
    "FactorCache",
    "ResultCache",
    "Resolution",
    "ResolutionContext",
    "ResolutionTier",
    "ResolutionLadder",
    "CandidateScan",
    "HitTier",
    "StoreRestoreTier",
    "VerbatimReuseTier",
    "CorrectedReuseTier",
    "RefreshTier",
    "ColdTier",
    "default_stages",
]
