"""Heterogeneous query batches: the planner's unit of work.

A :class:`QueryBatch` is an ordered collection of :class:`~repro.query.spec.
Query` objects — mixed measures, mixed start nodes / seed sets, mixed
snapshots and dampings.  Order is meaningful: the planner answers the batch
positionally (``result[i]`` belongs to ``batch[i]``), whatever grouping it
applies internally.

The ``add_*`` helpers freeze raw parameters into canonical query form (seed
iterables become tuples, node ids become ints) and return the batch itself,
so a mixed workload reads as a fluent chain::

    batch = (QueryBatch()
             .add_rwr(g, start_node=3)
             .add_ppr(g, seeds=[1, 4])
             .add_pagerank(g, damping=0.9))
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Optional, Sequence

from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.query.spec import Query, make_query


class QueryBatch:
    """An ordered, positionally-answered collection of measure queries."""

    def __init__(self, queries: Iterable[Query] = ()) -> None:
        self._queries: List[Query] = list(queries)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    @property
    def queries(self) -> Sequence[Query]:
        """The stored queries, in answer order."""
        return tuple(self._queries)

    def __repr__(self) -> str:
        measures = {}
        for query in self._queries:
            measures[query.measure] = measures.get(query.measure, 0) + 1
        inventory = ", ".join(f"{name}: {count}" for name, count in sorted(measures.items()))
        return f"QueryBatch({len(self._queries)} queries; {inventory})"

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    def add(self, query: Query) -> "QueryBatch":
        """Append an already-built query."""
        self._queries.append(query)
        return self

    def extend(self, queries: Iterable[Query]) -> "QueryBatch":
        """Append many already-built queries."""
        self._queries.extend(queries)
        return self

    def add_rwr(
        self,
        snapshot: GraphSnapshot,
        start_node: int,
        damping: float = DEFAULT_DAMPING,
        system_token: Optional[Hashable] = None,
    ) -> "QueryBatch":
        """Append a Random-Walk-with-Restart query."""
        return self.add(make_query(
            "rwr", snapshot, damping=damping, system_token=system_token,
            start_node=int(start_node),
        ))

    def add_ppr(
        self,
        snapshot: GraphSnapshot,
        seeds: Iterable[int],
        damping: float = DEFAULT_DAMPING,
        system_token: Optional[Hashable] = None,
    ) -> "QueryBatch":
        """Append a Personalized-PageRank query for one seed set."""
        return self.add(make_query(
            "ppr", snapshot, damping=damping, system_token=system_token,
            seeds=tuple(int(s) for s in seeds),
        ))

    def add_pagerank(
        self,
        snapshot: GraphSnapshot,
        damping: float = DEFAULT_DAMPING,
        system_token: Optional[Hashable] = None,
    ) -> "QueryBatch":
        """Append a global PageRank query."""
        return self.add(make_query(
            "pagerank", snapshot, damping=damping, system_token=system_token,
        ))

    def add_hitting_time(
        self,
        snapshot: GraphSnapshot,
        target: int,
        damping: float = DEFAULT_DAMPING,
        system_token: Optional[Hashable] = None,
        shared: bool = False,
    ) -> "QueryBatch":
        """Append a discounted-hitting-time query towards one target.

        ``shared=True`` routes through the ``"hitting_time_shared"`` spec:
        every target of a snapshot then lands in **one** planner group over
        the unmasked system (one factorization for all targets, answered via
        the Sherman–Morrison identity) instead of one masked system per
        target.  Shared answers match the per-target path to numerical
        tolerance, not bitwise.
        """
        return self.add(make_query(
            "hitting_time_shared" if shared else "hitting_time",
            snapshot, damping=damping, system_token=system_token,
            target=int(target),
        ))

    def add_salsa_authority(
        self,
        snapshot: GraphSnapshot,
        damping: float = DEFAULT_DAMPING,
        system_token: Optional[Hashable] = None,
    ) -> "QueryBatch":
        """Append a SALSA authority-scores query."""
        return self.add(make_query(
            "salsa_authority", snapshot, damping=damping, system_token=system_token,
        ))

    def add_salsa_hub(
        self,
        snapshot: GraphSnapshot,
        damping: float = DEFAULT_DAMPING,
        system_token: Optional[Hashable] = None,
    ) -> "QueryBatch":
        """Append a SALSA hub-scores query."""
        return self.add(make_query(
            "salsa_hub", snapshot, damping=damping, system_token=system_token,
        ))
