"""The resolution ladder: how a planned miss group gets its answer.

The paper's contribution is a *ladder* of ways to answer a proximity query
over an evolving-graph sequence — exact cached factors, quality-controlled
reuse of a similar snapshot's factors, rank-``k`` corrected reuse, Bennett
delta refresh, cold factorization.  This module makes that ladder a
first-class object instead of six private planner methods:

* :class:`ResolutionTier` — the uniform step interface:
  ``try_resolve(group, ctx) -> Resolution | None``.  A tier either serves
  the group (returning *how* in a :class:`Resolution`) or passes it down.
* Six concrete tiers, in serving-precedence order: :class:`HitTier`,
  :class:`StoreRestoreTier`, :class:`VerbatimReuseTier`,
  :class:`CorrectedReuseTier`, :class:`RefreshTier`, :class:`ColdTier`.
* :class:`CandidateScan` — the memoized scan over cached system keys that
  the two reuse tiers share (one scan discipline, two scoring rules).
* :class:`ResolutionLadder` — the ordered walk.  Stages run *tier-major*
  (every pending group through one tier before the next tier sees the
  leftovers) except the hit/store-restore pair, which is fused
  *group-major* so a store restore lands between the neighbouring groups'
  memory lookups exactly as :meth:`FactorCache.lookup` interleaved them —
  the cache's LRU recency order (and with it the reuse tiers'
  deterministic tie-breaking) is part of the bitwise contract.

The ladder reports per-tier serve counts under the tier *names*
(``resolutions={tier_name: count}`` in
:class:`~repro.query.planner.PlannerStats`); the historical counters
(``cache_hits``, ``qc_reuses``, ``corrected_reuses``, ``refreshes``,
``factorizations``) are derived views of that mapping.
"""

from __future__ import annotations

import abc
import dataclasses
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import FactorizationError, MeasureError, SingularMatrixError
from repro.exec.executors import Executor, resolve_executor
from repro.exec.plan import plan_factor_batch, plan_refresh_batch
from repro.graphs.delta import GraphDelta
from repro.graphs.matrixkind import MatrixKind, damping_delta, system_delta
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.smw import WoodburyCorrector
from repro.query.cache import FactorCache
from repro.query.spec import FactorizedSystem, SystemKey, get_spec
from repro.sparse.csr import SparseMatrix
from repro.sparse.types import Entries

if TYPE_CHECKING:  # runtime imports are lazy (repro.policy sits above this
    # package) or would be circular (the planner imports this module).
    from repro.policy import CorrectionDecision, ReuseDecision, ReusePolicy
    from repro.query.planner import PlannedGroup


@dataclasses.dataclass(frozen=True)
class ApproximationRecord:
    """Audit trail of one QC-approximated group: what was traded, for what.

    Every batch answered under an approximate :class:`~repro.policy.base.
    ReusePolicy` reports one record per group that was served from another
    system's factors, so callers can see exactly which positions of the
    result are approximate and at what certified cost.

    Attributes
    ----------
    positions:
        Batch positions answered from the reused factors.
    system:
        The :class:`~repro.query.spec.SystemKey` identity the queries asked
        for (snapshot or sequence token).
    parent_system:
        The identity of the cached system that actually answered.
    similarity:
        Snapshot similarity the candidate passed (``>= policy alpha``).
    loss_estimate:
        Certified relative-deviation bound of the raw answers
        (``<= policy loss bound``); see
        :func:`repro.core.quality.reuse_loss_bound`.
    policy:
        Name of the policy that licensed the approximation.
    rank:
        Number of delta columns applied exactly by a Sherman–Morrison–
        Woodbury correction over the parent's factors (``0`` for verbatim
        reuse — the parent's answer served unchanged).
    mode:
        How the group was served: ``"verbatim"`` (step-2 policy reuse),
        ``"corrected"`` (rank-``k`` corrected reuse across snapshots) or
        ``"cross-damping"`` (same snapshot answered across damping factors,
        possibly corrected).
    """

    positions: Tuple[int, ...]
    system: Hashable
    parent_system: Hashable
    similarity: float
    loss_estimate: float
    policy: str
    rank: int = 0
    mode: str = "verbatim"


@dataclasses.dataclass(frozen=True)
class Resolution:
    """How one planned group gets answered: the tier's verdict.

    Attributes
    ----------
    tier:
        Name of the :class:`ResolutionTier` that served the group — the key
        its serve is counted under in ``PlannerStats.resolutions``.
    solver:
        The object whose :meth:`solve_many` answers the group's RHS block —
        the group's own :class:`~repro.query.spec.FactorizedSystem`, a
        borrowed parent system, or a :class:`~repro.lu.smw.
        WoodburyCorrector`.
    cache_base:
        The system key finalized answers are result-cached under: the
        group's own key for exact tiers, the *parent's* key for verbatim
        reuse (the answers are, byte for byte, the parent's own), ``None``
        to bypass the result cache (rank-``k`` corrected answers belong to
        no cached system).
    approximate:
        Whether the answers are policy approximations (the reuse tiers);
        finalize steps that read the query's own snapshot then bypass the
        result cache.
    record:
        The audit record for approximate serves, ``None`` otherwise.
    """

    tier: str
    solver: FactorizedSystem
    cache_base: Optional[SystemKey]
    approximate: bool = False
    record: Optional[ApproximationRecord] = None


@dataclasses.dataclass
class ResolutionContext:
    """Planner collaborators a tier may consult while resolving a group.

    One context is built per :meth:`~repro.query.planner.QueryPlanner.
    execute` call and threaded through every tier — tiers hold no planner
    state of their own beyond their scan memos.
    """

    #: the planner's factor cache (lookups, peeks, refresh commits)
    cache: FactorCache
    #: the reuse policy gating the approximate tiers
    policy: "ReusePolicy"
    #: how refresh / factorization work units are scheduled
    executor: Union[Executor, int, None]
    #: whether a lineage-less miss may scan for the nearest cached parent
    auto_refresh: bool
    #: registered evolutions: new system identity -> (old identity, old, new)
    lineage: Dict[Hashable, Tuple[Hashable, GraphSnapshot, GraphSnapshot]]
    #: resolves a cached key to the snapshot its system was composed from
    snapshot_of: Callable[[SystemKey], Optional[GraphSnapshot]]


class CandidateScan:
    """The memoized cached-key scan the two reuse tiers share.

    Both reuse tiers answer a miss group from a cached *candidate* system:
    they iterate the cached keys, skip structurally ineligible ones (other
    matrix kinds, parameterized or custom-built matrices, unknown or
    differently-sized snapshots), score the rest through a tier-specific
    rule, and keep the policy-preferred decision — ties keep the
    first-seen candidate, so the scan is deterministic for a given cache
    state (the cache's LRU order is the iteration order).

    Scan outcomes — including "no candidate" — are memoized per ``(kind,
    damping, child snapshot)`` until :meth:`clear` (the planner clears on
    any factor-cache change or snapshot binding), so steady-state repeated
    batches pay the full delta-scoring scan once, not per batch.  The memo
    is LRU-bounded at :data:`MEMO_LIMIT` distinct combinations.
    """

    #: Bound on the candidate-scan memo (distinct (kind, damping, child)
    #: combinations remembered between cache changes).
    MEMO_LIMIT = 128

    def __init__(self) -> None:
        self._memo: "OrderedDict[Tuple, Optional[Tuple]]" = OrderedDict()

    def clear(self) -> None:
        """Forget every memoized outcome (the candidate set changed)."""
        self._memo.clear()

    def lookup(
        self,
        group: "PlannedGroup",
        ctx: ResolutionContext,
        score: Callable[[SystemKey, GraphSnapshot, GraphSnapshot], Optional[Tuple]],
        finalize: Optional[Callable[[Tuple], Optional[Tuple]]] = None,
    ) -> Optional[Tuple]:
        """Return the memoized (or freshly scanned) best candidate outcome.

        ``score(candidate_key, parent_snapshot, child_snapshot)`` returns
        ``None`` to reject a candidate or a tuple whose second element is
        the policy decision (arbitrated via ``decision.preferable_to``).
        ``finalize`` maps the winning tuple to the memoized value — e.g.
        building the Woodbury corrector once so the memo holds the
        expensive part; it may return ``None`` (memoized as "no
        candidate").
        """
        key = group.key
        if key.matrix_builder is not None or key.matrix_params:
            return None
        child = group.queries[0].snapshot
        memo_key = (key.kind, key.damping, child)
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            return self._memo[memo_key]
        best: Optional[Tuple] = None
        for candidate in ctx.cache.keys():
            if (
                candidate.kind is not key.kind
                or candidate.matrix_params
                or candidate.matrix_builder is not None
            ):
                continue
            parent = ctx.snapshot_of(candidate)
            if parent is None or parent.n != child.n:
                continue
            scored = score(candidate, parent, child)
            if scored is None:
                continue
            if best is None or scored[1].preferable_to(best[1]):
                best = scored
        found = best if finalize is None else (
            None if best is None else finalize(best)
        )
        self._memo[memo_key] = found
        while len(self._memo) > self.MEMO_LIMIT:
            self._memo.popitem(last=False)
        return found


class ResolutionTier(abc.ABC):
    """One rung of the ladder: serve a group or pass it down.

    Tiers are stateless between batches except for scan memos (cleared
    through :meth:`clear_memos` whenever the factor cache changes).  The
    bulk tiers (:class:`RefreshTier`, :class:`ColdTier`) override
    :meth:`resolve_batch` to fan work units out through the executor;
    their ``try_resolve`` is the singleton special case.
    """

    #: the tier's stable name: its key in ``PlannerStats.resolutions``
    name: str = ""

    @abc.abstractmethod
    def try_resolve(
        self, group: "PlannedGroup", ctx: ResolutionContext
    ) -> Optional[Resolution]:
        """Serve ``group`` from this tier, or return ``None`` to fall through."""

    def resolve_batch(
        self, groups: Sequence["PlannedGroup"], ctx: ResolutionContext
    ) -> Tuple[Dict[SystemKey, Resolution], List["PlannedGroup"]]:
        """Walk ``groups`` through this tier in order.

        Returns the resolutions keyed by group key (insertion order = group
        order) and the groups falling through to the next tier, their
        relative order preserved.
        """
        resolved: Dict[SystemKey, Resolution] = {}
        remaining: List["PlannedGroup"] = []
        for group in groups:
            resolution = self.try_resolve(group, ctx)
            if resolution is None:
                remaining.append(group)
            else:
                resolved[group.key] = resolution
        return resolved, remaining

    def clear_memos(self) -> None:
        """Drop any memoized scan state (the candidate set changed)."""


class HitTier(ResolutionTier):
    """Serve a group whose own factors are cached in memory (precedence 1)."""

    name = "hit"

    def try_resolve(
        self, group: "PlannedGroup", ctx: ResolutionContext
    ) -> Optional[Resolution]:
        system = ctx.cache.lookup_memory(group.key)
        if system is None:
            return None
        return Resolution(tier=self.name, solver=system, cache_base=group.key)


class StoreRestoreTier(ResolutionTier):
    """Restore a memory-missed group's factors from the disk store.

    Must run fused group-major right after :class:`HitTier` (the default
    ladder does): :meth:`FactorCache.restore_from_store` refines the miss
    that :meth:`FactorCache.lookup_memory` just counted, and the restore's
    install must land between the neighbouring groups' memory lookups to
    preserve the cache's exact LRU recency order.  A no-op without a store.
    """

    name = "store_restore"

    def try_resolve(
        self, group: "PlannedGroup", ctx: ResolutionContext
    ) -> Optional[Resolution]:
        system = ctx.cache.restore_from_store(group.key)
        if system is None:
            return None
        return Resolution(tier=self.name, solver=system, cache_base=group.key)


class VerbatimReuseTier(ResolutionTier):
    """Answer from a similar cached system's factors *unchanged* (precedence 3).

    The paper's bounded quality-loss trade applied to serving: an
    approximate :class:`~repro.policy.base.ReusePolicy` (e.g.
    :class:`~repro.policy.qc.QCPolicy`) licenses serving a miss group from
    a cached similar snapshot's factors outright — no numerical work, an
    :class:`ApproximationRecord` in the audit trail.  Exact policies skip
    this tier entirely.  The borrowed system is deliberately NOT installed
    in the factor cache under the miss key: the cache maps a key to factors
    of *that* system, and aliasing would turn a bounded approximation into
    a silent cache hit.
    """

    name = "verbatim_reuse"

    def __init__(self) -> None:
        self._scan = CandidateScan()

    def clear_memos(self) -> None:
        self._scan.clear()

    def try_resolve(
        self, group: "PlannedGroup", ctx: ResolutionContext
    ) -> Optional[Resolution]:
        if ctx.policy.is_exact:
            return None
        found = self._scan.lookup(group, ctx, self._scorer(group.key, ctx))
        if found is None:
            return None
        parent_key, decision = found
        system = ctx.cache.peek(parent_key)
        if system is None:  # pragma: no cover - memo cleared on eviction
            return None
        # Freshen recency (the parent is in active use) without touching
        # the pinned per-group hit/miss accounting.
        ctx.cache.touch(parent_key)
        return Resolution(
            tier=self.name,
            solver=system,
            cache_base=parent_key,
            approximate=True,
            record=ApproximationRecord(
                positions=group.positions,
                system=group.key.system,
                parent_system=parent_key.system,
                similarity=decision.similarity,
                loss_estimate=decision.loss_estimate,
                policy=ctx.policy.name,
            ),
        )

    @staticmethod
    def _scorer(
        key: SystemKey, ctx: ResolutionContext
    ) -> Callable[[SystemKey, GraphSnapshot, GraphSnapshot], Optional[Tuple]]:
        """Build the scan's scoring rule: same damping, policy-admitted.

        Only kind-composed keys participate (the scan already filters
        those); the decision is the policy's
        :meth:`~repro.policy.base.ReusePolicy.evaluate_reuse` over the full
        snapshot delta.
        """

        def score(
            candidate: SystemKey, parent: GraphSnapshot, child: GraphSnapshot
        ) -> Optional[Tuple[SystemKey, "ReuseDecision"]]:
            if candidate.damping != key.damping:
                return None
            if not ctx.policy.prefilter(parent, child):
                return None
            delta = GraphDelta.between(parent, child)
            decision = ctx.policy.evaluate_reuse(
                parent, child, kind=key.kind, damping=key.damping, delta=delta
            )
            if decision is None:
                return None
            return (candidate, decision)

        return score


class CorrectedReuseTier(ResolutionTier):
    """Answer via rank-``k`` SMW correction of a cached system (precedence 4).

    Two candidate families share the scan, the bound machinery and the
    memo:

    * **same damping, different snapshot** — the verbatim scan's
      candidates, but judged by :meth:`~repro.policy.base.ReusePolicy.
      correct` against the *residual* of ``ΔA = system_delta(parent,
      child)`` after its ``k`` dominant columns, instead of against the
      full delta;
    * **same snapshot, different damping** — a cached ``(kind, snapshot,
      d')`` system whose delta to the miss is ``(d' - d)·M``
      (:func:`~repro.graphs.matrixkind.damping_delta`).  The corrected
      system mixes columns damped at ``d`` and ``d'``, so the
      conservative amplification constant ``1/(1 - max(d, d'))`` is
      certified (the Laplacian ignores damping entirely: its delta is
      empty and the reuse exact).

    The memo entry holds the *built* corrector (its setup sweeps are the
    expensive part), so steady-state repeated batches pay them once; any
    factor-cache change clears the memo, which also guarantees a held
    corrector never outlives the factors it wraps.  A candidate whose
    capacitance is singular or ill-conditioned is discarded (falls
    through to refresh / cold) rather than served.
    """

    name = "corrected_reuse"

    def __init__(self) -> None:
        self._scan = CandidateScan()

    def clear_memos(self) -> None:
        self._scan.clear()

    def try_resolve(
        self, group: "PlannedGroup", ctx: ResolutionContext
    ) -> Optional[Resolution]:
        if not getattr(ctx.policy, "supports_correction", False):
            return None
        key = group.key
        certifies = getattr(ctx.policy, "certifies_kind", None)
        if certifies is not None and not certifies(key.kind):
            return None
        found = self._scan.lookup(
            group,
            ctx,
            self._scorer(key, ctx),
            finalize=lambda best: self._build_correction(ctx, *best),
        )
        if found is None:
            return None
        parent_key, decision, mode, solver, cache_base = found
        if decision.rank == 0 and ctx.cache.peek(parent_key) is None:
            # pragma: no cover - memo cleared on eviction
            return None
        # Freshen recency (the parent's factors are in active use; a
        # rank-k corrector reads them on every batch) without touching
        # the pinned per-group hit/miss accounting.
        ctx.cache.touch(parent_key)
        return Resolution(
            tier=self.name,
            solver=solver,
            cache_base=cache_base,
            approximate=True,
            record=ApproximationRecord(
                positions=group.positions,
                system=group.key.system,
                parent_system=parent_key.system,
                similarity=decision.similarity,
                loss_estimate=decision.loss_estimate,
                policy=ctx.policy.name,
                rank=decision.rank,
                mode=mode,
            ),
        )

    @staticmethod
    def _scorer(
        key: SystemKey, ctx: ResolutionContext
    ) -> Callable[[SystemKey, GraphSnapshot, GraphSnapshot], Optional[Tuple]]:
        """Build the scan's scoring rule: residual-correction decisions."""
        from repro.core.similarity import snapshot_similarity

        def score(
            candidate: SystemKey, parent: GraphSnapshot, child: GraphSnapshot
        ) -> Optional[Tuple]:
            if candidate.damping == key.damping:
                if not ctx.policy.prefilter(parent, child):
                    return None
                delta = GraphDelta.between(parent, child)
                similarity = snapshot_similarity(parent, child, delta=delta)
                entries = system_delta(
                    parent, child, kind=key.kind, damping=key.damping, delta=delta
                )
                mode = "corrected"
                amplifier = (
                    0.0 if key.kind is MatrixKind.LAPLACIAN else key.damping
                )
            else:
                if parent != child:
                    return None
                entries = damping_delta(
                    child,
                    key.kind,
                    from_damping=candidate.damping,
                    to_damping=key.damping,
                )
                similarity = 1.0
                mode = "cross-damping"
                amplifier = (
                    0.0
                    if key.kind is MatrixKind.LAPLACIAN
                    else max(key.damping, candidate.damping)
                )
            decision = ctx.policy.correct(
                entries, amplifier_damping=amplifier, similarity=similarity
            )
            if decision is None:
                return None
            return (candidate, decision, mode, entries)

        return score

    @staticmethod
    def _build_correction(
        ctx: ResolutionContext,
        parent_key: SystemKey,
        decision: "CorrectionDecision",
        mode: str,
        entries: Entries,
    ) -> Optional[Tuple]:
        """Materialize a licensed correction into a servable solver.

        Rank 0 needs no numerical setup: the parent's system answers as-is
        (verbatim-grade sharing, cache base = parent key).  Rank ``k``
        gathers the decision's columns of ``ΔA`` into a dense ``(n, k)``
        update block and builds the :class:`~repro.lu.smw.WoodburyCorrector`
        (``k`` triangular sweeps + the capacitance factorization, paid once
        per memo lifetime).  Returns ``None`` when the parent vanished or
        the capacitance check fails — the group then falls through to
        refresh / cold, never serving an uncertified answer.
        """
        parent_system = ctx.cache.peek(parent_key)
        if parent_system is None:  # pragma: no cover - scan just saw the key
            return None
        if decision.rank == 0:
            return (parent_key, decision, mode, parent_system, parent_key)
        n = parent_system.matrix.n
        update = np.zeros((n, decision.rank), dtype=float)
        offsets = {column: t for t, column in enumerate(decision.columns)}
        for (row, column), value in entries.items():
            t = offsets.get(column)
            if t is not None:
                update[row, t] += value
        try:
            corrector = WoodburyCorrector(
                parent_system.factors,
                parent_system.ordering,
                update,
                decision.columns,
            )
        except SingularMatrixError:
            return None
        return (parent_key, decision, mode, corrector, None)


class RefreshTier(ResolutionTier):
    """Bennett-refresh miss groups from their cached lineage parents (precedence 5).

    A bulk tier: refresh units dispatch through the same executors as
    factor units, so independent refreshes fan out onto a worker pool.
    Refreshed systems are committed to the factor cache under their new
    keys (unlike the reuse tiers' borrowed factors, a refreshed system IS
    the miss key's system).
    """

    name = "refresh"

    def try_resolve(
        self, group: "PlannedGroup", ctx: ResolutionContext
    ) -> Optional[Resolution]:
        resolved, _ = self.resolve_batch([group], ctx)
        return resolved.get(group.key)

    def resolve_batch(
        self, groups: Sequence["PlannedGroup"], ctx: ResolutionContext
    ) -> Tuple[Dict[SystemKey, Resolution], List["PlannedGroup"]]:
        """Refresh the groups that have a cached lineage parent.

        Returns the refreshed resolutions and the groups still needing a
        cold factorization — including any whose prepared refresh broke
        down numerically.

        Refreshes run in waves: a group whose registered parent is not
        cached *yet* may be the next link of a lineage chain whose earlier
        link is refreshing in this same batch, so it is deferred until a
        wave commits nothing new.  A group whose lineage parent never
        materializes counts a ``refresh_fallbacks`` (matching
        :meth:`FactorCache.refresh` on a missing parent) and factorizes
        cold.
        """
        resolved: Dict[SystemKey, Resolution] = {}
        cold: List["PlannedGroup"] = []
        pending = list(groups)
        record_provenance = ctx.cache.disk_store is not None
        while pending:
            jobs: List[Tuple["PlannedGroup", SparseMatrix, SystemKey, Entries]] = []
            payloads = []
            deferred: List["PlannedGroup"] = []
            for group in pending:
                parent = self._refresh_parent(group.key, ctx)
                if parent is None:
                    if self._has_lineage(group.key, ctx):
                        deferred.append(group)
                    else:
                        cold.append(group)
                    continue
                old_key, old_snapshot, new_snapshot, graph_delta = parent
                entries = system_delta(
                    old_snapshot,
                    new_snapshot,
                    kind=group.key.kind,
                    damping=group.key.damping,
                    delta=graph_delta,
                )
                prepared = ctx.cache.prepare_refresh(old_key, entries)
                if prepared is None:
                    cold.append(group)
                    continue
                ordering = prepared.ordering
                mapped = (
                    ordering.map_entries(entries)
                    if ordering is not None
                    else dict(entries)
                )
                query = group.queries[0]
                new_matrix = get_spec(query.measure).system_matrix(
                    query.snapshot, query.damping, query.param_dict
                )
                jobs.append((group, new_matrix, old_key, mapped))
                payloads.append((new_matrix, prepared.factors, ordering, mapped))
            committed = 0
            if jobs:
                exec_plan = plan_refresh_batch(payloads)
                outcome = resolve_executor(ctx.executor).execute(exec_plan)
                for (group, new_matrix, old_key, mapped), decomposition in zip(
                    jobs, outcome.decompositions
                ):
                    if decomposition.factors is None:
                        ctx.cache.refresh_failed()
                        cold.append(group)
                        continue
                    system = FactorizedSystem(
                        new_matrix, decomposition.ordering, decomposition.factors
                    )
                    provenance = None
                    parent_system = (
                        ctx.cache.peek(old_key) if record_provenance else None
                    )
                    if parent_system is not None:
                        from repro.store.factorstore import RefreshProvenance

                        # The refresh units freeze and apply the delta in
                        # sorted-key order (see plan_refresh_batch); the
                        # provenance must record exactly that order for a
                        # bit-exact replay at restore time.
                        provenance = RefreshProvenance(
                            old_key, parent_system, dict(sorted(mapped.items()))
                        )
                    ctx.cache.commit_refresh(
                        group.key, system, provenance=provenance
                    )
                    resolved[group.key] = Resolution(
                        tier=self.name, solver=system, cache_base=group.key
                    )
                    committed += 1
            if not deferred:
                break
            if committed == 0:
                for group in deferred:
                    ctx.cache.refresh_failed()
                    cold.append(group)
                break
            pending = deferred
        return resolved, cold

    @staticmethod
    def _refresh_parent(
        key: SystemKey, ctx: ResolutionContext
    ) -> Optional[Tuple[SystemKey, GraphSnapshot, GraphSnapshot, GraphDelta]]:
        """Find a cached parent system to delta-refresh ``key`` from.

        Custom-matrix keys never refresh (their composition is opaque to the
        system-delta layer).  Explicit lineage wins; with ``auto_refresh`` a
        snapshot-keyed miss falls back to scanning the cached keys for the
        nearest same-shape snapshot.
        """
        if key.matrix_builder is not None:
            return None
        lineage = ctx.lineage.get(key.system)
        if lineage is not None:
            old_system, old_snapshot, new_snapshot = lineage
            old_key = dataclasses.replace(key, system=old_system)
            if ctx.cache.peek(old_key) is None:
                return None
            return (
                old_key,
                old_snapshot,
                new_snapshot,
                GraphDelta.between(old_snapshot, new_snapshot),
            )
        if not ctx.auto_refresh or not isinstance(key.system, GraphSnapshot):
            return None
        new_snapshot = key.system
        best = None
        for candidate in ctx.cache.keys():
            if (
                candidate.kind is key.kind
                and candidate.damping == key.damping
                and candidate.matrix_params == key.matrix_params
                and candidate.matrix_builder is None
                and isinstance(candidate.system, GraphSnapshot)
                and candidate.system.n == new_snapshot.n
            ):
                delta = GraphDelta.between(candidate.system, new_snapshot)
                if best is None or delta.size < best[3].size:
                    best = (candidate, candidate.system, new_snapshot, delta)
        return best

    @staticmethod
    def _has_lineage(key: SystemKey, ctx: ResolutionContext) -> bool:
        """Whether a refreshable lineage was registered for this key's system."""
        return key.matrix_builder is None and key.system in ctx.lineage


class ColdTier(ResolutionTier):
    """Factorize each remaining group's system matrix once (precedence 6).

    The ladder's floor: never passes a group down.  Factor units report
    failures instead of raising (one poisoned query must not abort its
    siblings with a bare worker traceback): every healthy group's system
    is computed *and cached* first, then a single
    :class:`~repro.errors.FactorizationError` carries the annotated
    per-unit reports — so a retry without the poisoned queries answers
    warm from the cache.
    """

    name = "cold"

    def try_resolve(
        self, group: "PlannedGroup", ctx: ResolutionContext
    ) -> Optional[Resolution]:
        resolved, _ = self.resolve_batch([group], ctx)
        return resolved.get(group.key)

    def resolve_batch(
        self, groups: Sequence["PlannedGroup"], ctx: ResolutionContext
    ) -> Tuple[Dict[SystemKey, Resolution], List["PlannedGroup"]]:
        if not groups:
            return {}, []
        matrices = []
        labels = []
        for group in groups:
            query = group.queries[0]
            spec = get_spec(query.measure)
            matrices.append(
                spec.system_matrix(query.snapshot, query.damping, query.param_dict)
            )
            labels.append(self._describe_group(group))
        exec_plan = plan_factor_batch(matrices, labels=labels)
        outcome = resolve_executor(ctx.executor).execute(exec_plan)
        resolved: Dict[SystemKey, Resolution] = {}
        failures: List[str] = []
        for group, matrix, label, decomposition in zip(
            groups, matrices, labels, outcome.decompositions
        ):
            if decomposition.factors is None:
                failures.append(decomposition.error or f"factorization failed [{label}]")
                continue
            system = FactorizedSystem(
                matrix, decomposition.ordering, decomposition.factors
            )
            resolved[group.key] = Resolution(
                tier=self.name, solver=system, cache_base=group.key
            )
            ctx.cache.store(group.key, system)
        if failures:
            raise FactorizationError(failures)
        return resolved, []

    @staticmethod
    def _describe_group(group: "PlannedGroup") -> str:
        """One-line system description for factor-unit failure reports."""
        key = group.key
        query = group.queries[0]
        if isinstance(key.system, GraphSnapshot):
            system = (
                f"snapshot(n={key.system.n}, edges={key.system.edge_count})"
            )
        else:
            system = f"token {key.system!r}"
        parts = [
            f"measure={query.measure!r}",
            f"kind={key.kind.name}",
            f"damping={key.damping}",
            f"system={system}",
        ]
        if key.matrix_params:
            parts.append(f"matrix_params={key.matrix_params!r}")
        return ", ".join(parts)


#: One ladder stage: tiers fused group-major (each pending group walks the
#: stage's tiers in order before the next group starts).
Stage = Tuple[ResolutionTier, ...]


def default_stages() -> Tuple[Stage, ...]:
    """The serving precedence as shipped: hit → store-restore → verbatim →
    corrected → refresh → cold, with the first two fused group-major."""
    return (
        (HitTier(), StoreRestoreTier()),
        (VerbatimReuseTier(),),
        (CorrectedReuseTier(),),
        (RefreshTier(),),
        (ColdTier(),),
    )


class ResolutionLadder:
    """The ordered tier walk resolving every planned group of a batch.

    ``stages`` is a sequence whose elements are either a single
    :class:`ResolutionTier` or a tuple of tiers to fuse group-major.
    Stages run tier-major: every pending group is offered to a stage
    before the next stage sees the leftovers — which is what lets the
    bulk tiers (refresh waves, batched factorization) fan their work
    units out through the executor in one go.  Within a fused stage each
    group walks the stage's tiers in order before the next group starts —
    the default ladder fuses (hit, store-restore) so a disk restore's
    cache install lands exactly where :meth:`FactorCache.lookup` put it.

    A ladder belongs to one planner: the reuse tiers' scan memos are
    cleared through the *owning* planner's factor-cache listeners, so
    sharing a ladder between planners would leak stale scans across
    caches.
    """

    def __init__(
        self,
        stages: Optional[Sequence[Union[ResolutionTier, Sequence[ResolutionTier]]]] = None,
    ) -> None:
        if stages is None:
            normalized = default_stages()
        else:
            normalized = tuple(
                tuple(stage) if isinstance(stage, (tuple, list)) else (stage,)
                for stage in stages
            )
        if not normalized or not any(normalized):
            raise MeasureError("a resolution ladder needs at least one tier")
        names = [tier.name for stage in normalized for tier in stage]
        if len(names) != len(set(names)):
            raise MeasureError(f"resolution tier names must be unique, got {names}")
        self._stages: Tuple[Stage, ...] = normalized

    @property
    def stages(self) -> Tuple[Stage, ...]:
        """The ladder's stages, in precedence order."""
        return self._stages

    @property
    def tiers(self) -> Tuple[ResolutionTier, ...]:
        """Every tier, flattened in precedence order."""
        return tuple(tier for stage in self._stages for tier in stage)

    def tier_names(self) -> Tuple[str, ...]:
        """The tier names, in precedence order (the ``resolutions`` keys)."""
        return tuple(tier.name for tier in self.tiers)

    def clear_memos(self) -> None:
        """Clear every tier's scan memos (the candidate set changed)."""
        for tier in self.tiers:
            tier.clear_memos()

    def resolve(
        self, groups: Sequence["PlannedGroup"], ctx: ResolutionContext
    ) -> Tuple[Dict[SystemKey, Resolution], Dict[str, int], List[ApproximationRecord]]:
        """Resolve every group; return (resolutions, per-tier counts, records).

        ``counts`` holds every tier name (zeros included) in precedence
        order, so the stats surface is shape-stable across batches.
        Audit records accumulate stage-major in group order — verbatim
        records precede corrected records, as the audit trail always has.
        """
        resolved: Dict[SystemKey, Resolution] = {}
        counts: Dict[str, int] = {name: 0 for name in self.tier_names()}
        records: List[ApproximationRecord] = []
        pending: List["PlannedGroup"] = list(groups)
        for stage in self._stages:
            if not pending:
                break
            if len(stage) == 1:
                stage_resolved, pending = stage[0].resolve_batch(pending, ctx)
            else:
                stage_resolved = {}
                remaining: List["PlannedGroup"] = []
                for group in pending:
                    resolution: Optional[Resolution] = None
                    for tier in stage:
                        resolution = tier.try_resolve(group, ctx)
                        if resolution is not None:
                            break
                    if resolution is None:
                        remaining.append(group)
                    else:
                        stage_resolved[group.key] = resolution
                pending = remaining
            for key, resolution in stage_resolved.items():
                resolved[key] = resolution
                counts[resolution.tier] += 1
                if resolution.record is not None:
                    records.append(resolution.record)
        if pending:
            unresolved = ", ".join(repr(group.key) for group in pending)
            raise MeasureError(
                f"resolution ladder exhausted with unresolved groups: {unresolved}"
            )
        return resolved, counts, records
