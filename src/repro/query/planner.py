"""The factor-reusing query planner.

``N`` queries should cost ``#distinct-system-matrices`` factorizations, not
``N``.  The planner makes that explicit in two phases:

* :meth:`QueryPlanner.plan` groups a heterogeneous
  :class:`~repro.query.batch.QueryBatch` by
  :func:`~repro.query.spec.system_key` — queries that share a
  ``(snapshot, kind, damping, matrix-params)`` system matrix land in the
  same :class:`PlannedGroup`, in first-appearance order.  Queries a spec can
  answer in closed form (shortcuts) are split off as direct answers.
* :meth:`QueryPlanner.execute` factorizes each group's matrix **exactly
  once** — cache misses are dispatched as independent work units through the
  :mod:`repro.exec` executors, so distinct factor groups can run on a worker
  pool — then answers every group with a single batched multi-RHS
  substitution sweep and scatters the columns back to batch positions.

The factor cache outlives a single batch: a second batch over the same
snapshots costs zero factorizations, and sequence-level solvers
(:meth:`repro.core.solver.EMSSolver.seed_planner`) pre-seed it with their
decompositions so measure series ride on already-computed factors.  Every
numerical path is the same batched kernel stack used everywhere else, so
planner answers are bitwise identical to the legacy per-measure drivers.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import MeasureError, PatternError, SingularMatrixError
from repro.exec.executors import Executor, resolve_executor
from repro.exec.plan import plan_factor_batch, plan_refresh_batch
from repro.graphs.delta import GraphDelta
from repro.graphs.matrixkind import system_delta
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.bennett import bennett_update
from repro.query.batch import QueryBatch
from repro.query.spec import (
    FactorizedSystem,
    Query,
    SystemKey,
    get_spec,
    system_key,
)
from repro.sparse.csr import SparseMatrix
from repro.sparse.types import Entries

#: Default ``refresh_threshold``: a system-matrix delta touching more than
#: this fraction of the cached matrix's non-zeros falls back to a cold
#: factorization — beyond it the rank-1 sweeps stop being cheaper than a
#: fresh Markowitz + Crout pass (and a large delta usually means the old
#: ordering misfits the new matrix anyway).
DEFAULT_REFRESH_THRESHOLD = 0.25


def _apply_entry_delta(matrix: SparseMatrix, delta: Entries) -> SparseMatrix:
    """Return ``matrix + ΔA`` for a sparse entry delta in original coordinates."""
    if not delta:
        return matrix
    change = SparseMatrix.from_triples(
        matrix.n, ((i, j, value) for (i, j), value in delta.items())
    )
    return matrix.add(change)


class FactorCache:
    """Cache of :class:`FactorizedSystem` objects keyed by :class:`SystemKey`.

    Tracks hits and misses at *group* granularity (one lookup per planned
    group, not per query), which is what the acceptance counters assert
    against.  Entries seeded via :meth:`seed` (e.g. from an EMS
    decomposition) count as ordinary hits when used.

    Parameters
    ----------
    max_systems:
        Optional LRU bound for long-lived serving planners over evolving
        graphs, where every new snapshot is a new key and an unbounded cache
        would grow without limit.  ``None`` (the default) keeps every entry —
        required for the bitwise guarantees of seeded sequence planners: an
        evicted entry is transparently re-factorized from scratch, which is
        still an exact solve but not necessarily bit-identical to the
        decomposition-seeded factors it replaced.  :meth:`seed` refuses to
        overflow the bound (see its docstring) for the same reason.
    refresh_threshold:
        Delta-refresh feasibility gate, as a fraction of the cached system
        matrix's non-zeros: a system delta with more entries than
        ``refresh_threshold * nnz`` is rejected (counted in
        ``refresh_fallbacks``) and the caller cold-factorizes instead.
    """

    def __init__(
        self,
        max_systems: Optional[int] = None,
        refresh_threshold: float = DEFAULT_REFRESH_THRESHOLD,
    ) -> None:
        if max_systems is not None and max_systems < 1:
            raise MeasureError(f"max_systems must be positive, got {max_systems}")
        if refresh_threshold < 0.0:
            raise MeasureError(
                f"refresh_threshold must be non-negative, got {refresh_threshold}"
            )
        self._systems: "OrderedDict[SystemKey, FactorizedSystem]" = OrderedDict()
        self._max_systems = max_systems
        self._refresh_threshold = float(refresh_threshold)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._refreshes = 0
        self._refresh_fallbacks = 0

    def __len__(self) -> int:
        return len(self._systems)

    def __contains__(self, key: SystemKey) -> bool:
        return key in self._systems

    def keys(self) -> Iterator[SystemKey]:
        """Iterate over the cached system keys (snapshot → key index scans)."""
        return iter(tuple(self._systems))

    def lookup(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system for ``key`` and count the hit or miss."""
        system = self._systems.get(key)
        if system is None:
            self._misses += 1
        else:
            self._hits += 1
            self._systems.move_to_end(key)
        return system

    def peek(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system without touching counters or recency."""
        return self._systems.get(key)

    def _install(self, key: SystemKey, system: FactorizedSystem) -> None:
        self._systems[key] = system
        self._systems.move_to_end(key)
        if self._max_systems is not None:
            while len(self._systems) > self._max_systems:
                self._systems.popitem(last=False)
                self._evictions += 1

    def seed(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a system without touching the counters (pre-population).

        Seeding must never evict: a seeded planner's guarantee is that the
        whole sequence answers from exactly the decomposition-provided
        factors, and a silent LRU eviction of a seeded entry would break it
        without any signal (the evicted index would be transparently — but
        approximately-bitwise-differently — re-factorized).  Seeding a key
        that would overflow ``max_systems`` therefore raises
        :class:`~repro.errors.MeasureError`; raise the bound or use an
        unbounded cache for seeded planners.
        """
        if (
            self._max_systems is not None
            and key not in self._systems
            and len(self._systems) >= self._max_systems
        ):
            raise MeasureError(
                f"seeding would overflow max_systems={self._max_systems} "
                f"(cache already holds {len(self._systems)} systems); seeded "
                "entries must never be evicted — raise max_systems to at "
                "least the number of seeded systems or use an unbounded cache"
            )
        self._install(key, system)

    def store(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a freshly factorized system (after a counted miss)."""
        self._install(key, system)

    # ------------------------------------------------------------------ #
    # Delta refresh
    # ------------------------------------------------------------------ #
    def _refresh_feasible(
        self, cached: Optional[FactorizedSystem], delta: Entries
    ) -> bool:
        """Gate a refresh: the parent must be cached and the delta small."""
        if cached is None:
            return False
        return len(delta) <= self._refresh_threshold * max(cached.matrix.nnz, 1)

    def prepare_refresh(
        self, old_key: SystemKey, delta: Entries
    ) -> Optional[FactorizedSystem]:
        """Feasibility-check a refresh and return a mutable clone of the parent.

        ``delta`` is the system-matrix entry delta in *original* (unordered)
        coordinates; only its size matters here.  Returns a clone whose
        factor container may be Bennett-updated in place (e.g. inside an
        executor work unit), or ``None`` — counting a ``refresh_fallbacks``
        — when the parent is missing or the delta exceeds the threshold.
        Hit/miss counters are untouched either way.
        """
        cached = self._systems.get(old_key)
        if not self._refresh_feasible(cached, delta):
            self._refresh_fallbacks += 1
            return None
        return cached.clone()

    def commit_refresh(self, new_key: SystemKey, system: FactorizedSystem) -> None:
        """Install a successfully refreshed system (counted in ``refreshes``)."""
        self._install(new_key, system)
        self._refreshes += 1

    def refresh_failed(self) -> None:
        """Record that a prepared refresh broke down numerically."""
        self._refresh_fallbacks += 1

    def refresh(
        self,
        old_key: SystemKey,
        new_key: SystemKey,
        delta: Entries,
        new_matrix: Optional[SparseMatrix] = None,
        steal: bool = False,
    ) -> Optional[FactorizedSystem]:
        """Derive the system for ``new_key`` from ``old_key`` by Bennett update.

        The paper's INC insight applied to the serving cache: instead of a
        cold factorization for a snapshot that evolved from a cached one by a
        small delta, clone (or, with ``steal=True``, remove and reuse) the
        cached :class:`FactorizedSystem`, apply the sparse system-matrix
        ``delta`` (original coordinates; mapped through the stored ordering
        here) as rank-1 Bennett sweeps, and install the result under
        ``new_key``.

        Returns the refreshed system, or ``None`` with ``refresh_fallbacks``
        incremented when the parent is missing, the delta exceeds
        ``refresh_threshold`` as a fraction of the cached matrix's non-zeros,
        the update would fill outside a static factor pattern
        (:class:`~repro.errors.PatternError`), or a pivot breaks down — the
        caller then falls back to a full factorization.  Every failure mode
        leaves the parent entry intact (``steal`` only takes effect on
        success).  Hit/miss counters are never touched.  ``new_matrix``
        overrides the stored matrix of the result (defaults to
        ``old matrix + delta``).
        """
        cached = self._systems.get(old_key)
        if not self._refresh_feasible(cached, delta):
            self._refresh_fallbacks += 1
            return None
        # Always sweep on a clone — even when stealing — so a mid-sweep
        # breakdown leaves the parent entry intact and still answering; the
        # old key is dropped only once the refresh has succeeded.
        working = cached.clone()
        ordering = working.ordering
        mapped = ordering.map_entries(delta) if ordering is not None else dict(delta)
        try:
            bennett_update(working.factors, mapped)
        except (PatternError, SingularMatrixError):
            self._refresh_fallbacks += 1
            return None
        if new_matrix is None:
            new_matrix = _apply_entry_delta(cached.matrix, delta)
        system = FactorizedSystem(new_matrix, ordering, working.factors)
        if steal:
            self._systems.pop(old_key, None)
        self.commit_refresh(new_key, system)
        return system

    def cache_info(self) -> Dict[str, int]:
        """Return hit/miss/eviction/refresh/size counters (the reuse statistics)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "refreshes": self._refreshes,
            "refresh_fallbacks": self._refresh_fallbacks,
            "size": len(self._systems),
        }

    def clear(self) -> None:
        """Drop every cached system and reset the counters."""
        self._systems.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._refreshes = 0
        self._refresh_fallbacks = 0


@dataclasses.dataclass(frozen=True)
class PlannedGroup:
    """All queries of one batch that share one system matrix."""

    key: SystemKey
    positions: Tuple[int, ...]
    queries: Tuple[Query, ...]

    @property
    def size(self) -> int:
        """Number of queries in the group (the batched-solve width)."""
        return len(self.queries)


@dataclasses.dataclass(frozen=True)
class DirectAnswer:
    """A query answered in closed form by its spec's shortcut."""

    position: int
    query: Query
    answer: np.ndarray


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """The grouped form of one batch: factor groups plus direct answers."""

    batch: QueryBatch
    groups: Tuple[PlannedGroup, ...]
    direct: Tuple[DirectAnswer, ...]

    @property
    def group_count(self) -> int:
        """Number of distinct system matrices the batch needs."""
        return len(self.groups)

    def __len__(self) -> int:
        return len(self.batch)


@dataclasses.dataclass(frozen=True)
class PlannerStats:
    """What one :meth:`QueryPlanner.execute` run cost.

    ``factorizations`` is the acceptance-criteria counter: it equals the
    number of planned groups whose key was not already in the factor cache
    *and* could not be delta-refreshed from a cached parent — at most one
    factorization per distinct system matrix, ever.  ``refreshes`` counts
    miss groups answered by Bennett-updating a cached parent's factors
    instead of factorizing cold.
    """

    queries: int
    groups: int
    factorizations: int
    cache_hits: int
    direct_answers: int
    refreshes: int = 0


@dataclasses.dataclass
class BatchResult:
    """Positional answers of one batch plus the run's reuse statistics."""

    results: List[np.ndarray]
    stats: PlannerStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.results[index]


class QueryPlanner:
    """Group queries by shared system matrix; factorize once per group.

    Parameters
    ----------
    executor:
        How cache-miss factorizations are scheduled: ``None`` (default) runs
        them serially in-process; an ``int`` or an
        :class:`~repro.exec.executors.Executor` fans independent factor
        groups out exactly like the sequence-decomposition work units.
        Results are bitwise identical regardless of the executor.
    cache:
        An existing :class:`FactorCache` to share or pre-seed; a fresh one is
        created when omitted.
    auto_refresh:
        When true, a cache-miss snapshot with no registered lineage scans the
        cached keys for a same-``(kind, damping)`` snapshot of the same size
        and delta-refreshes from the nearest one (smallest
        :class:`~repro.graphs.delta.GraphDelta`).  Off by default: refreshed
        factors answer within numerical tolerance but not bitwise-identically
        to a cold factorization, so refresh must be opted into — either
        through this flag or per-evolution via :meth:`register_evolution`.
    """

    def __init__(
        self,
        executor: Union[Executor, int, None] = None,
        cache: Optional[FactorCache] = None,
        auto_refresh: bool = False,
    ) -> None:
        self._executor = executor
        self._cache = cache if cache is not None else FactorCache()
        self._auto_refresh = bool(auto_refresh)
        #: new system identity -> (old system identity, old snapshot, new snapshot)
        self._lineage: Dict[
            Hashable, Tuple[Hashable, GraphSnapshot, GraphSnapshot]
        ] = {}

    @property
    def cache(self) -> FactorCache:
        """The planner's factor cache (shared, seedable, inspectable)."""
        return self._cache

    def cache_info(self) -> Dict[str, int]:
        """Lifetime hit/miss/refresh/size counters of the factor cache."""
        return self._cache.cache_info()

    def register_evolution(
        self,
        old: GraphSnapshot,
        new: GraphSnapshot,
        old_system: Optional[Hashable] = None,
        new_system: Optional[Hashable] = None,
    ) -> None:
        """Declare that snapshot ``new`` evolved from snapshot ``old``.

        A later cache miss for ``new`` (any kind-based system key) will try
        to Bennett-refresh the system cached for ``old`` instead of
        factorizing from scratch.  ``old_system`` / ``new_system`` override
        the :class:`~repro.query.spec.SystemKey` identities when they differ
        from the snapshots themselves — e.g. an
        :class:`~repro.core.solver.EMSSolver` index token for factors seeded
        from a sequence decomposition.  Registering a lineage is the per-pair
        opt-in to refresh (answers match a cold factorization within
        numerical tolerance, not bitwise).
        """
        if not isinstance(old, GraphSnapshot) or not isinstance(new, GraphSnapshot):
            raise MeasureError(
                "register_evolution takes two GraphSnapshots (the delta is "
                "computed from their edge sets)"
            )
        if old.n != new.n:
            raise MeasureError(
                f"evolution must preserve the node count: {old.n} vs {new.n}"
            )
        self._lineage[new_system if new_system is not None else new] = (
            old_system if old_system is not None else old,
            old,
            new,
        )

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
        """Group a batch by system key (first-appearance order, stable).

        Every query lands in exactly one group or one direct answer; the
        group count equals the number of distinct system matrices among the
        non-shortcut queries.
        """
        if not isinstance(batch, QueryBatch):
            batch = QueryBatch(batch)
        order: List[SystemKey] = []
        grouped: Dict[SystemKey, List[int]] = {}
        direct: List[DirectAnswer] = []
        for position, query in enumerate(batch):
            spec = get_spec(query.measure)
            if spec.shortcut is not None:
                answer = spec.shortcut(query.snapshot, query.damping, query.param_dict)
                if answer is not None:
                    direct.append(DirectAnswer(position, query, answer))
                    continue
            key = system_key(query)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(position)
        groups = tuple(
            PlannedGroup(
                key=key,
                positions=tuple(grouped[key]),
                queries=tuple(batch[p] for p in grouped[key]),
            )
            for key in order
        )
        return QueryPlan(batch=batch, groups=groups, direct=tuple(direct))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, plan: QueryPlan) -> BatchResult:
        """Run a plan: refresh or factorize miss groups once, batch-solve all.

        Miss groups first consult the snapshot lineage (explicit
        :meth:`register_evolution` entries, or the cached-snapshot index when
        ``auto_refresh`` is on): a miss whose snapshot evolved from a cached
        system by a small delta is answered by a Bennett refresh of that
        system's factors; everything else — no lineage, oversized delta,
        pattern violation, pivot breakdown — cold-factorizes exactly as
        before.
        """
        systems: Dict[SystemKey, FactorizedSystem] = {}
        misses: List[PlannedGroup] = []
        for group in plan.groups:
            cached = self._cache.lookup(group.key)
            if cached is None:
                misses.append(group)
            else:
                systems[group.key] = cached
        refreshed, cold = self._refresh_misses(misses)
        # Use the refreshed / freshly factorized systems directly: a
        # size-bounded cache may already have evicted early ones by the time
        # the batch solves.
        systems.update(refreshed)
        systems.update(self._factorize(cold))
        results: List[Optional[np.ndarray]] = [None] * len(plan.batch)
        for group in plan.groups:
            system = systems[group.key]
            block = np.column_stack([
                get_spec(query.measure).build_rhs(
                    query.snapshot, query.damping, query.param_dict
                )
                for query in group.queries
            ])
            solutions = system.solve_many(block)
            for column, (position, query) in enumerate(
                zip(group.positions, group.queries)
            ):
                spec = get_spec(query.measure)
                results[position] = spec.finalize(
                    solutions[:, column], query.snapshot, query.damping,
                    query.param_dict,
                )
        for direct in plan.direct:
            # Copy: the plan may be executed again, and callers own their
            # result arrays (the group path allocates fresh columns too).
            results[direct.position] = direct.answer.copy()
        stats = PlannerStats(
            queries=len(plan.batch),
            groups=len(plan.groups),
            factorizations=len(cold),
            cache_hits=len(plan.groups) - len(misses),
            direct_answers=len(plan.direct),
            refreshes=len(refreshed),
        )
        return BatchResult(results=list(results), stats=stats)

    def run(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchResult:
        """Plan and execute a batch in one call."""
        return self.execute(self.plan(batch))

    # ------------------------------------------------------------------ #
    # Delta-refresh fan-out
    # ------------------------------------------------------------------ #
    def _refresh_parent(
        self, key: SystemKey
    ) -> Optional[Tuple[SystemKey, GraphSnapshot, GraphSnapshot, GraphDelta]]:
        """Find a cached parent system to delta-refresh ``key`` from.

        Custom-matrix keys never refresh (their composition is opaque to the
        system-delta layer).  Explicit lineage wins; with ``auto_refresh`` a
        snapshot-keyed miss falls back to scanning the cached keys for the
        nearest same-shape snapshot.
        """
        if key.matrix_builder is not None:
            return None
        lineage = self._lineage.get(key.system)
        if lineage is not None:
            old_system, old_snapshot, new_snapshot = lineage
            old_key = dataclasses.replace(key, system=old_system)
            if self._cache.peek(old_key) is None:
                return None
            return (
                old_key,
                old_snapshot,
                new_snapshot,
                GraphDelta.between(old_snapshot, new_snapshot),
            )
        if not self._auto_refresh or not isinstance(key.system, GraphSnapshot):
            return None
        new_snapshot = key.system
        best = None
        for candidate in self._cache.keys():
            if (
                candidate.kind is key.kind
                and candidate.damping == key.damping
                and candidate.matrix_params == key.matrix_params
                and candidate.matrix_builder is None
                and isinstance(candidate.system, GraphSnapshot)
                and candidate.system.n == new_snapshot.n
            ):
                delta = GraphDelta.between(candidate.system, new_snapshot)
                if best is None or delta.size < best[3].size:
                    best = (candidate, candidate.system, new_snapshot, delta)
        return best

    def _has_lineage(self, key: SystemKey) -> bool:
        """Whether a refreshable lineage was registered for this key's system."""
        return key.matrix_builder is None and key.system in self._lineage

    def _refresh_misses(
        self, groups: Sequence[PlannedGroup]
    ) -> Tuple[Dict[SystemKey, FactorizedSystem], List[PlannedGroup]]:
        """Bennett-refresh the miss groups that have a cached lineage parent.

        Returns the refreshed systems (committed to the cache under their new
        keys) and the groups still needing a cold factorization — including
        any whose prepared refresh broke down numerically.  Refresh units
        dispatch through the same executors as factor units, so independent
        refreshes fan out onto a worker pool.

        Refreshes run in waves: a group whose registered parent is not cached
        *yet* may be the next link of a lineage chain whose earlier link is
        refreshing in this same batch, so it is deferred until a wave commits
        nothing new.  A group whose lineage parent never materializes counts
        a ``refresh_fallbacks`` (matching :meth:`FactorCache.refresh` on a
        missing parent) and factorizes cold.
        """
        refreshed: Dict[SystemKey, FactorizedSystem] = {}
        cold: List[PlannedGroup] = []
        pending = list(groups)
        while pending:
            jobs: List[Tuple[PlannedGroup, SparseMatrix]] = []
            payloads = []
            deferred: List[PlannedGroup] = []
            for group in pending:
                parent = self._refresh_parent(group.key)
                if parent is None:
                    if self._has_lineage(group.key):
                        deferred.append(group)
                    else:
                        cold.append(group)
                    continue
                old_key, old_snapshot, new_snapshot, graph_delta = parent
                entries = system_delta(
                    old_snapshot,
                    new_snapshot,
                    kind=group.key.kind,
                    damping=group.key.damping,
                    delta=graph_delta,
                )
                prepared = self._cache.prepare_refresh(old_key, entries)
                if prepared is None:
                    cold.append(group)
                    continue
                ordering = prepared.ordering
                mapped = (
                    ordering.map_entries(entries)
                    if ordering is not None
                    else dict(entries)
                )
                query = group.queries[0]
                new_matrix = get_spec(query.measure).system_matrix(
                    query.snapshot, query.damping, query.param_dict
                )
                jobs.append((group, new_matrix))
                payloads.append((new_matrix, prepared.factors, ordering, mapped))
            committed = 0
            if jobs:
                exec_plan = plan_refresh_batch(payloads)
                outcome = resolve_executor(self._executor).execute(exec_plan)
                for (group, new_matrix), decomposition in zip(
                    jobs, outcome.decompositions
                ):
                    if decomposition.factors is None:
                        self._cache.refresh_failed()
                        cold.append(group)
                        continue
                    system = FactorizedSystem(
                        new_matrix, decomposition.ordering, decomposition.factors
                    )
                    self._cache.commit_refresh(group.key, system)
                    refreshed[group.key] = system
                    committed += 1
            if not deferred:
                break
            if committed == 0:
                for group in deferred:
                    self._cache.refresh_failed()
                    cold.append(group)
                break
            pending = deferred
        return refreshed, cold

    # ------------------------------------------------------------------ #
    # Factorization fan-out
    # ------------------------------------------------------------------ #
    def _factorize(
        self, groups: Sequence[PlannedGroup]
    ) -> Dict[SystemKey, FactorizedSystem]:
        """Factorize each group's system matrix once, via the exec layer.

        Returns the new systems keyed by group key (they are also stored in
        the cache, which may evict them immediately if it is size-bounded).
        """
        if not groups:
            return {}
        matrices = []
        for group in groups:
            query = group.queries[0]
            spec = get_spec(query.measure)
            matrices.append(
                spec.system_matrix(query.snapshot, query.damping, query.param_dict)
            )
        exec_plan = plan_factor_batch(matrices)
        outcome = resolve_executor(self._executor).execute(exec_plan)
        systems: Dict[SystemKey, FactorizedSystem] = {}
        for group, matrix, decomposition in zip(
            groups, matrices, outcome.decompositions
        ):
            system = FactorizedSystem(
                matrix, decomposition.ordering, decomposition.factors
            )
            systems[group.key] = system
            self._cache.store(group.key, system)
        return systems
