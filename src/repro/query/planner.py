"""The factor-reusing query planner.

``N`` queries should cost ``#distinct-system-matrices`` factorizations, not
``N``.  The planner makes that explicit in two phases:

* :meth:`QueryPlanner.plan` groups a heterogeneous
  :class:`~repro.query.batch.QueryBatch` by
  :func:`~repro.query.spec.system_key` — queries that share a
  ``(snapshot, kind, damping, matrix-params)`` system matrix land in the
  same :class:`PlannedGroup`, in first-appearance order.  Queries a spec can
  answer in closed form (shortcuts) are split off as direct answers.
* :meth:`QueryPlanner.execute` factorizes each group's matrix **exactly
  once** — cache misses are dispatched as independent work units through the
  :mod:`repro.exec` executors, so distinct factor groups can run on a worker
  pool — then answers every group with a single batched multi-RHS
  substitution sweep and scatters the columns back to batch positions.

The factor cache outlives a single batch: a second batch over the same
snapshots costs zero factorizations, and sequence-level solvers
(:meth:`repro.core.solver.EMSSolver.seed_planner`) pre-seed it with their
decompositions so measure series ride on already-computed factors.  Every
numerical path is the same batched kernel stack used everywhere else, so
planner answers are bitwise identical to the legacy per-measure drivers.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import MeasureError
from repro.exec.executors import Executor, resolve_executor
from repro.exec.plan import plan_factor_batch
from repro.query.batch import QueryBatch
from repro.query.spec import (
    FactorizedSystem,
    Query,
    SystemKey,
    get_spec,
    system_key,
)


class FactorCache:
    """Cache of :class:`FactorizedSystem` objects keyed by :class:`SystemKey`.

    Tracks hits and misses at *group* granularity (one lookup per planned
    group, not per query), which is what the acceptance counters assert
    against.  Entries seeded via :meth:`seed` (e.g. from an EMS
    decomposition) count as ordinary hits when used.

    Parameters
    ----------
    max_systems:
        Optional LRU bound for long-lived serving planners over evolving
        graphs, where every new snapshot is a new key and an unbounded cache
        would grow without limit.  ``None`` (the default) keeps every entry —
        required for the bitwise guarantees of seeded sequence planners: an
        evicted entry is transparently re-factorized from scratch, which is
        still an exact solve but not necessarily bit-identical to the
        decomposition-seeded factors it replaced.
    """

    def __init__(self, max_systems: Optional[int] = None) -> None:
        if max_systems is not None and max_systems < 1:
            raise MeasureError(f"max_systems must be positive, got {max_systems}")
        self._systems: "OrderedDict[SystemKey, FactorizedSystem]" = OrderedDict()
        self._max_systems = max_systems
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._systems)

    def __contains__(self, key: SystemKey) -> bool:
        return key in self._systems

    def lookup(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system for ``key`` and count the hit or miss."""
        system = self._systems.get(key)
        if system is None:
            self._misses += 1
        else:
            self._hits += 1
            self._systems.move_to_end(key)
        return system

    def peek(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system without touching counters or recency."""
        return self._systems.get(key)

    def _install(self, key: SystemKey, system: FactorizedSystem) -> None:
        self._systems[key] = system
        self._systems.move_to_end(key)
        if self._max_systems is not None:
            while len(self._systems) > self._max_systems:
                self._systems.popitem(last=False)
                self._evictions += 1

    def seed(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a system without touching the counters (pre-population)."""
        self._install(key, system)

    def store(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a freshly factorized system (after a counted miss)."""
        self._install(key, system)

    def cache_info(self) -> Dict[str, int]:
        """Return hit/miss/eviction/size counters (the factor-reuse statistics)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": len(self._systems),
        }

    def clear(self) -> None:
        """Drop every cached system and reset the counters."""
        self._systems.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0


@dataclasses.dataclass(frozen=True)
class PlannedGroup:
    """All queries of one batch that share one system matrix."""

    key: SystemKey
    positions: Tuple[int, ...]
    queries: Tuple[Query, ...]

    @property
    def size(self) -> int:
        """Number of queries in the group (the batched-solve width)."""
        return len(self.queries)


@dataclasses.dataclass(frozen=True)
class DirectAnswer:
    """A query answered in closed form by its spec's shortcut."""

    position: int
    query: Query
    answer: np.ndarray


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """The grouped form of one batch: factor groups plus direct answers."""

    batch: QueryBatch
    groups: Tuple[PlannedGroup, ...]
    direct: Tuple[DirectAnswer, ...]

    @property
    def group_count(self) -> int:
        """Number of distinct system matrices the batch needs."""
        return len(self.groups)

    def __len__(self) -> int:
        return len(self.batch)


@dataclasses.dataclass(frozen=True)
class PlannerStats:
    """What one :meth:`QueryPlanner.execute` run cost.

    ``factorizations`` is the acceptance-criteria counter: it equals the
    number of planned groups whose key was not already in the factor cache —
    at most one factorization per distinct system matrix, ever.
    """

    queries: int
    groups: int
    factorizations: int
    cache_hits: int
    direct_answers: int


@dataclasses.dataclass
class BatchResult:
    """Positional answers of one batch plus the run's reuse statistics."""

    results: List[np.ndarray]
    stats: PlannerStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.results[index]


class QueryPlanner:
    """Group queries by shared system matrix; factorize once per group.

    Parameters
    ----------
    executor:
        How cache-miss factorizations are scheduled: ``None`` (default) runs
        them serially in-process; an ``int`` or an
        :class:`~repro.exec.executors.Executor` fans independent factor
        groups out exactly like the sequence-decomposition work units.
        Results are bitwise identical regardless of the executor.
    cache:
        An existing :class:`FactorCache` to share or pre-seed; a fresh one is
        created when omitted.
    """

    def __init__(
        self,
        executor: Union[Executor, int, None] = None,
        cache: Optional[FactorCache] = None,
    ) -> None:
        self._executor = executor
        self._cache = cache if cache is not None else FactorCache()

    @property
    def cache(self) -> FactorCache:
        """The planner's factor cache (shared, seedable, inspectable)."""
        return self._cache

    def cache_info(self) -> Dict[str, int]:
        """Lifetime hit/miss/size counters of the factor cache."""
        return self._cache.cache_info()

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
        """Group a batch by system key (first-appearance order, stable).

        Every query lands in exactly one group or one direct answer; the
        group count equals the number of distinct system matrices among the
        non-shortcut queries.
        """
        if not isinstance(batch, QueryBatch):
            batch = QueryBatch(batch)
        order: List[SystemKey] = []
        grouped: Dict[SystemKey, List[int]] = {}
        direct: List[DirectAnswer] = []
        for position, query in enumerate(batch):
            spec = get_spec(query.measure)
            if spec.shortcut is not None:
                answer = spec.shortcut(query.snapshot, query.damping, query.param_dict)
                if answer is not None:
                    direct.append(DirectAnswer(position, query, answer))
                    continue
            key = system_key(query)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(position)
        groups = tuple(
            PlannedGroup(
                key=key,
                positions=tuple(grouped[key]),
                queries=tuple(batch[p] for p in grouped[key]),
            )
            for key in order
        )
        return QueryPlan(batch=batch, groups=groups, direct=tuple(direct))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, plan: QueryPlan) -> BatchResult:
        """Run a plan: factorize miss groups once, batch-solve every group."""
        systems: Dict[SystemKey, FactorizedSystem] = {}
        misses: List[PlannedGroup] = []
        for group in plan.groups:
            cached = self._cache.lookup(group.key)
            if cached is None:
                misses.append(group)
            else:
                systems[group.key] = cached
        # Use the freshly factorized systems directly: a size-bounded cache
        # may already have evicted early ones by the time the batch solves.
        systems.update(self._factorize(misses))
        results: List[Optional[np.ndarray]] = [None] * len(plan.batch)
        for group in plan.groups:
            system = systems[group.key]
            block = np.column_stack([
                get_spec(query.measure).build_rhs(
                    query.snapshot, query.damping, query.param_dict
                )
                for query in group.queries
            ])
            solutions = system.solve_many(block)
            for column, (position, query) in enumerate(
                zip(group.positions, group.queries)
            ):
                spec = get_spec(query.measure)
                results[position] = spec.finalize(
                    solutions[:, column], query.snapshot, query.damping,
                    query.param_dict,
                )
        for direct in plan.direct:
            # Copy: the plan may be executed again, and callers own their
            # result arrays (the group path allocates fresh columns too).
            results[direct.position] = direct.answer.copy()
        stats = PlannerStats(
            queries=len(plan.batch),
            groups=len(plan.groups),
            factorizations=len(misses),
            cache_hits=len(plan.groups) - len(misses),
            direct_answers=len(plan.direct),
        )
        return BatchResult(results=list(results), stats=stats)

    def run(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchResult:
        """Plan and execute a batch in one call."""
        return self.execute(self.plan(batch))

    # ------------------------------------------------------------------ #
    # Factorization fan-out
    # ------------------------------------------------------------------ #
    def _factorize(
        self, groups: Sequence[PlannedGroup]
    ) -> Dict[SystemKey, FactorizedSystem]:
        """Factorize each group's system matrix once, via the exec layer.

        Returns the new systems keyed by group key (they are also stored in
        the cache, which may evict them immediately if it is size-bounded).
        """
        if not groups:
            return {}
        matrices = []
        for group in groups:
            query = group.queries[0]
            spec = get_spec(query.measure)
            matrices.append(
                spec.system_matrix(query.snapshot, query.damping, query.param_dict)
            )
        exec_plan = plan_factor_batch(matrices)
        outcome = resolve_executor(self._executor).execute(exec_plan)
        systems: Dict[SystemKey, FactorizedSystem] = {}
        for group, matrix, decomposition in zip(
            groups, matrices, outcome.decompositions
        ):
            system = FactorizedSystem(
                matrix, decomposition.ordering, decomposition.factors
            )
            systems[group.key] = system
            self._cache.store(group.key, system)
        return systems
