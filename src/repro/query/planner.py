"""The factor-reusing query planner.

``N`` queries should cost ``#distinct-system-matrices`` factorizations, not
``N``.  The planner makes that explicit in two phases:

* :meth:`QueryPlanner.plan` groups a heterogeneous
  :class:`~repro.query.batch.QueryBatch` by
  :func:`~repro.query.spec.system_key` — queries that share a
  ``(snapshot, kind, damping, matrix-params)`` system matrix land in the
  same :class:`PlannedGroup`, in first-appearance order.  Queries a spec can
  answer in closed form (shortcuts) are split off as direct answers.
* :meth:`QueryPlanner.execute` factorizes each group's matrix **exactly
  once** — cache misses are dispatched as independent work units through the
  :mod:`repro.exec` executors, so distinct factor groups can run on a worker
  pool — then answers every group with a single batched multi-RHS
  substitution sweep and scatters the columns back to batch positions.

The factor cache outlives a single batch: a second batch over the same
snapshots costs zero factorizations, and sequence-level solvers
(:meth:`repro.core.solver.EMSSolver.seed_planner`) pre-seed it with their
decompositions so measure series ride on already-computed factors.  Every
numerical path is the same batched kernel stack used everywhere else, so
planner answers are bitwise identical to the legacy per-measure drivers.

Two further reuse levels stack on top (see :class:`QueryPlanner` for the
precedence order):

* an answer-level :class:`ResultCache` keyed by ``(SystemKey, rhs
  fingerprint)`` short-circuits repeated identical queries before the
  substitution sweep, with invalidation driven by the factor cache;
* an approximate :class:`~repro.policy.base.ReusePolicy` (opt-in) may answer
  a miss group from a cached *similar* system's factors outright — the
  paper's bounded quality-loss trade applied to serving — recording one
  :class:`ApproximationRecord` per approximated group in the
  :class:`BatchResult` audit trail.
"""

from __future__ import annotations

import dataclasses
import hashlib
import types
import weakref
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import (
    FactorizationError,
    MeasureError,
    PatternError,
    SingularMatrixError,
    StoreError,
)
from repro.exec.executors import Executor, resolve_executor
from repro.exec.plan import plan_factor_batch, plan_refresh_batch
from repro.graphs.delta import GraphDelta
from repro.graphs.matrixkind import MatrixKind, damping_delta, system_delta
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.bennett import bennett_update
from repro.lu.smw import WoodburyCorrector
from repro.query.batch import QueryBatch
from repro.query.spec import (
    FactorizedSystem,
    MeasureSpec,
    Query,
    SystemKey,
    canonical_params,
    get_spec,
    system_key,
)
from repro.sparse.csr import SparseMatrix
from repro.sparse.types import Entries

if TYPE_CHECKING:  # runtime import is lazy: repro.policy sits above core,
    # whose solver module imports this one (see QueryPlanner.__init__).
    from repro.policy import CorrectionDecision, ReuseDecision, ReusePolicy
    from repro.store.factorstore import FactorStore, RefreshProvenance

#: Default ``refresh_threshold``: a system-matrix delta touching more than
#: this fraction of the cached matrix's non-zeros falls back to a cold
#: factorization — beyond it the rank-1 sweeps stop being cheaper than a
#: fresh Markowitz + Crout pass (and a large delta usually means the old
#: ordering misfits the new matrix anyway).
DEFAULT_REFRESH_THRESHOLD = 0.25


def _apply_entry_delta(matrix: SparseMatrix, delta: Entries) -> SparseMatrix:
    """Return ``matrix + ΔA`` for a sparse entry delta in original coordinates."""
    if not delta:
        return matrix
    change = SparseMatrix.from_triples(
        matrix.n, ((i, j, value) for (i, j), value in delta.items())
    )
    return matrix.add(change)


class FactorCache:
    """Cache of :class:`FactorizedSystem` objects keyed by :class:`SystemKey`.

    Tracks hits and misses at *group* granularity (one lookup per planned
    group, not per query), which is what the acceptance counters assert
    against.  Entries seeded via :meth:`seed` (e.g. from an EMS
    decomposition) count as ordinary hits when used.

    Parameters
    ----------
    max_systems:
        Optional LRU bound for long-lived serving planners over evolving
        graphs, where every new snapshot is a new key and an unbounded cache
        would grow without limit.  ``None`` (the default) keeps every entry —
        required for the bitwise guarantees of seeded sequence planners: an
        evicted entry is transparently re-factorized from scratch, which is
        still an exact solve but not necessarily bit-identical to the
        decomposition-seeded factors it replaced.  :meth:`seed` refuses to
        overflow the bound (see its docstring) for the same reason.
    refresh_threshold:
        Delta-refresh feasibility gate, as a fraction of the cached system
        matrix's non-zeros: a system delta with more entries than
        ``refresh_threshold * nnz`` is rejected (counted in
        ``refresh_fallbacks``) and the caller cold-factorizes instead.
    store:
        Optional :class:`~repro.store.factorstore.FactorStore` disk tier.
        With a store attached, LRU evictions (and stealing refreshes)
        *spill* the departing system to disk instead of dropping it, a
        memory miss consults the store before reporting a miss to the
        caller (a restored system is installed and returned — the planner
        sees it as a cache hit and skips the cold factorization), and
        :meth:`checkpoint` flushes the whole working set.  Refresh-produced
        systems remember their provenance (parent + applied delta) so their
        spills are compact delta checkpoints.  ``cache_info()`` grows four
        extra counters — ``store_hits`` / ``store_misses`` (partitioning
        the memory misses), ``spills``, and ``restore_fallbacks`` (files
        that existed but could not be restored: corrupt, torn, or replay
        breakdown — served cold instead, never wrong).
    """

    def __init__(
        self,
        max_systems: Optional[int] = None,
        refresh_threshold: float = DEFAULT_REFRESH_THRESHOLD,
        store: Optional["FactorStore"] = None,
    ) -> None:
        if max_systems is not None and max_systems < 1:
            raise MeasureError(f"max_systems must be positive, got {max_systems}")
        if refresh_threshold < 0.0:
            raise MeasureError(
                f"refresh_threshold must be non-negative, got {refresh_threshold}"
            )
        self._systems: "OrderedDict[SystemKey, FactorizedSystem]" = OrderedDict()
        self._max_systems = max_systems
        self._refresh_threshold = float(refresh_threshold)
        self._store = store
        #: refresh lineage per cached key, kept only while a store could
        #: spill it as a delta checkpoint (see RefreshProvenance)
        self._provenance: Dict[SystemKey, "RefreshProvenance"] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._refreshes = 0
        self._refresh_fallbacks = 0
        self._store_hits = 0
        self._store_misses = 0
        self._spills = 0
        self._restore_fallbacks = 0
        #: resolvers returning the live listener or ``None`` once collected
        self._invalidation_listeners: List[
            Callable[[], Optional[Callable[[SystemKey], None]]]
        ] = []
        self._eviction_listeners: List[
            Callable[[], Optional[Callable[[SystemKey], None]]]
        ] = []

    def __len__(self) -> int:
        return len(self._systems)

    def __contains__(self, key: SystemKey) -> bool:
        return key in self._systems

    def keys(self) -> Iterator[SystemKey]:
        """Iterate over the cached system keys (snapshot → key index scans)."""
        return iter(tuple(self._systems))

    @property
    def disk_store(self) -> Optional["FactorStore"]:
        """The attached disk tier, or ``None``.

        (Named ``disk_store`` because :meth:`store` — the historical install
        method — already occupies the ``store`` attribute.)
        """
        return self._store

    def lookup(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system for ``key`` and count the hit or miss.

        With a store attached, a memory miss consults the disk tier before
        giving up: a restorable checkpoint is decoded (or delta-replayed),
        installed, counted as a ``store_hits``, and returned — the caller
        never learns it was not in memory, which is exactly what makes a
        warm restart answer without cold factorizations.  ``store_misses``
        counts the memory misses the store could not serve either; among
        those, ``restore_fallbacks`` counts the ones where a checkpoint
        file existed but failed its checksum or its delta replay.
        """
        system = self._systems.get(key)
        if system is not None:
            self._hits += 1
            self._systems.move_to_end(key)
            return system
        self._misses += 1
        if self._store is None:
            return None
        if key not in self._store:
            self._store_misses += 1
            return None
        restored = self._store.load(key)
        if restored is None:
            self._restore_fallbacks += 1
            self._store_misses += 1
            return None
        self._store_hits += 1
        self._install(key, restored)
        return restored

    def peek(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Return the cached system without touching counters or recency."""
        return self._systems.get(key)

    def touch(self, key: SystemKey) -> None:
        """Freshen a key's LRU recency without counting a hit or a miss.

        Used by policy-level reuse: a cached system answering *for another
        key* is in active use and must not age towards eviction, but the
        pinned per-group hit/miss accounting (one counted lookup per planned
        group) may not change.
        """
        if key in self._systems:
            self._systems.move_to_end(key)

    def add_invalidation_listener(self, listener: Callable[[SystemKey], None]) -> None:
        """Subscribe to key invalidations (evictions and factor installs).

        The listener fires whenever the factors behind a key can no longer be
        assumed unchanged: the key is evicted (a later re-factorization is
        exact but not necessarily bit-identical), dropped by a stealing
        refresh, or has new factors installed over it.  Planners hang their
        result caches here so derived answers never outlive their factors.

        Bound-method listeners are held **weakly** (their receiver is not
        kept alive by the subscription, and dead subscriptions are pruned),
        so short-lived planners sharing a long-lived factor cache do not
        accumulate; keep the receiving object alive for as long as the
        subscription should fire.  Plain functions are held strongly.
        """
        self._invalidation_listeners.append(self._hold_listener(listener))

    def add_eviction_listener(self, listener: Callable[[SystemKey], None]) -> None:
        """Subscribe to key *removals* only (LRU eviction, steal, clear).

        Unlike :meth:`add_invalidation_listener` — which also fires when new
        factors are installed over a key — this channel fires exactly when a
        key leaves the cache.  Planners use it to prune per-key bookkeeping
        (lineage entries, snapshot bindings) that is only useful while the
        key's system is cached, which is what keeps a long-lived serving
        planner's registries bounded.  The same weak-holding rules as
        invalidation listeners apply.
        """
        self._eviction_listeners.append(self._hold_listener(listener))

    @staticmethod
    def _hold_listener(
        listener: Callable[[SystemKey], None],
    ) -> Callable[[], Optional[Callable[[SystemKey], None]]]:
        if isinstance(listener, types.MethodType):
            return weakref.WeakMethod(listener)
        return lambda _fn=listener: _fn

    @staticmethod
    def _fire(
        listeners: List[Callable[[], Optional[Callable[[SystemKey], None]]]],
        key: SystemKey,
    ) -> None:
        dead = False
        for resolver in listeners:
            listener = resolver()
            if listener is None:
                dead = True
                continue
            listener(key)
        if dead:
            listeners[:] = [
                resolver for resolver in listeners if resolver() is not None
            ]

    def _invalidate(self, key: SystemKey) -> None:
        self._fire(self._invalidation_listeners, key)

    def _evicted(self, key: SystemKey) -> None:
        self._fire(self._eviction_listeners, key)

    def _spill(self, key: SystemKey, system: FactorizedSystem) -> bool:
        """Checkpoint a departing (or flushed) system to the store, if any.

        Uses the recorded refresh provenance for a compact delta checkpoint
        when available, a full checkpoint otherwise.  Unsupported factor
        containers and I/O failures are swallowed — spilling is an
        optimization, never a correctness requirement (the system would
        simply cold-factorize on a later miss).
        """
        if self._store is None:
            return False
        try:
            self._store.save(key, system, self._provenance.get(key))
        except (StoreError, OSError):
            return False
        self._spills += 1
        return True

    def _install(self, key: SystemKey, system: FactorizedSystem) -> None:
        self._invalidate(key)
        # New factors over the key invalidate any recorded refresh lineage
        # (commit_refresh re-records its own right after).
        self._provenance.pop(key, None)
        self._systems[key] = system
        self._systems.move_to_end(key)
        if self._max_systems is not None:
            while len(self._systems) > self._max_systems:
                evicted, dropped = self._systems.popitem(last=False)
                self._evictions += 1
                self._spill(evicted, dropped)
                self._provenance.pop(evicted, None)
                self._invalidate(evicted)
                self._evicted(evicted)

    def seed(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a system without touching the counters (pre-population).

        Seeding must never evict: a seeded planner's guarantee is that the
        whole sequence answers from exactly the decomposition-provided
        factors, and a silent LRU eviction of a seeded entry would break it
        without any signal (the evicted index would be transparently — but
        approximately-bitwise-differently — re-factorized).  Seeding a key
        that would overflow ``max_systems`` therefore raises
        :class:`~repro.errors.MeasureError`; raise the bound or use an
        unbounded cache for seeded planners.
        """
        if (
            self._max_systems is not None
            and key not in self._systems
            and len(self._systems) >= self._max_systems
        ):
            raise MeasureError(
                f"seeding would overflow max_systems={self._max_systems} "
                f"(cache already holds {len(self._systems)} systems); seeded "
                "entries must never be evicted — raise max_systems to at "
                "least the number of seeded systems or use an unbounded cache"
            )
        self._install(key, system)

    def store(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Install a freshly factorized system (after a counted miss)."""
        self._install(key, system)

    # ------------------------------------------------------------------ #
    # Delta refresh
    # ------------------------------------------------------------------ #
    def _refresh_feasible(
        self, cached: Optional[FactorizedSystem], delta: Entries
    ) -> bool:
        """Gate a refresh: the parent must be cached and the delta small."""
        if cached is None:
            return False
        return len(delta) <= self._refresh_threshold * max(cached.matrix.nnz, 1)

    def prepare_refresh(
        self, old_key: SystemKey, delta: Entries
    ) -> Optional[FactorizedSystem]:
        """Feasibility-check a refresh and return a mutable clone of the parent.

        ``delta`` is the system-matrix entry delta in *original* (unordered)
        coordinates; only its size matters here.  Returns a clone whose
        factor container may be Bennett-updated in place (e.g. inside an
        executor work unit), or ``None`` — counting a ``refresh_fallbacks``
        — when the parent is missing or the delta exceeds the threshold.
        Hit/miss counters are untouched either way.
        """
        cached = self._systems.get(old_key)
        if not self._refresh_feasible(cached, delta):
            self._refresh_fallbacks += 1
            return None
        return cached.clone()

    def commit_refresh(
        self,
        new_key: SystemKey,
        system: FactorizedSystem,
        provenance: Optional["RefreshProvenance"] = None,
    ) -> None:
        """Install a successfully refreshed system (counted in ``refreshes``).

        ``provenance`` — the parent system and the exact applied delta — is
        remembered (only while a store is attached; it pins the parent
        system in memory) so a later spill of this key writes a compact
        delta checkpoint instead of a full one.
        """
        self._install(new_key, system)
        if provenance is not None and self._store is not None:
            self._provenance[new_key] = provenance
        self._refreshes += 1

    def refresh_failed(self) -> None:
        """Record that a prepared refresh broke down numerically."""
        self._refresh_fallbacks += 1

    def refresh(
        self,
        old_key: SystemKey,
        new_key: SystemKey,
        delta: Entries,
        new_matrix: Optional[SparseMatrix] = None,
        steal: bool = False,
    ) -> Optional[FactorizedSystem]:
        """Derive the system for ``new_key`` from ``old_key`` by Bennett update.

        The paper's INC insight applied to the serving cache: instead of a
        cold factorization for a snapshot that evolved from a cached one by a
        small delta, clone (or, with ``steal=True``, remove and reuse) the
        cached :class:`FactorizedSystem`, apply the sparse system-matrix
        ``delta`` (original coordinates; mapped through the stored ordering
        here) as rank-1 Bennett sweeps, and install the result under
        ``new_key``.

        Returns the refreshed system, or ``None`` with ``refresh_fallbacks``
        incremented when the parent is missing, the delta exceeds
        ``refresh_threshold`` as a fraction of the cached matrix's non-zeros,
        the update would fill outside a static factor pattern
        (:class:`~repro.errors.PatternError`), or a pivot breaks down — the
        caller then falls back to a full factorization.  Every failure mode
        leaves the parent entry intact (``steal`` only takes effect on
        success).  Hit/miss counters are never touched.  ``new_matrix``
        overrides the stored matrix of the result (defaults to
        ``old matrix + delta``).
        """
        cached = self._systems.get(old_key)
        if not self._refresh_feasible(cached, delta):
            self._refresh_fallbacks += 1
            return None
        # Always sweep on a clone — even when stealing — so a mid-sweep
        # breakdown leaves the parent entry intact and still answering; the
        # old key is dropped only once the refresh has succeeded.
        working = cached.clone()
        ordering = working.ordering
        mapped = ordering.map_entries(delta) if ordering is not None else dict(delta)
        try:
            bennett_update(working.factors, mapped)
        except (PatternError, SingularMatrixError):
            self._refresh_fallbacks += 1
            return None
        if new_matrix is None:
            new_matrix = _apply_entry_delta(cached.matrix, delta)
        system = FactorizedSystem(new_matrix, ordering, working.factors)
        if steal:
            popped = self._systems.pop(old_key, None)
            if popped is not None:
                self._spill(old_key, popped)
                self._provenance.pop(old_key, None)
                self._invalidate(old_key)
                self._evicted(old_key)
        provenance: Optional["RefreshProvenance"] = None
        if self._store is not None:
            from repro.store.factorstore import RefreshProvenance

            # This path applied ``mapped`` in its own insertion order (the
            # executor refresh units sort theirs); the provenance must
            # record exactly the order that produced the factors.
            provenance = RefreshProvenance(old_key, cached, dict(mapped))
        self.commit_refresh(new_key, system, provenance=provenance)
        return system

    def checkpoint(self) -> int:
        """Flush every cached system to the store; return the spill count.

        Non-destructive: the working set stays in memory untouched.  A
        warm-booted cache pointed at the same store directory answers the
        flushed keys from disk, bitwise-identically, without a single cold
        factorization.  Raises :class:`~repro.errors.MeasureError` when no
        store is attached.
        """
        if self._store is None:
            raise MeasureError(
                "checkpoint() requires a FactorCache constructed with store=..."
            )
        count = 0
        for key, system in list(self._systems.items()):
            if self._spill(key, system):
                count += 1
        return count

    def cache_info(self) -> Dict[str, int]:
        """Return hit/miss/eviction/refresh/size counters (the reuse statistics).

        With a store attached, four more counters appear: ``store_hits`` /
        ``store_misses`` partition the memory ``misses`` into served-from-
        disk vs truly cold, ``spills`` counts systems checkpointed on
        eviction/steal/:meth:`checkpoint`, and ``restore_fallbacks`` counts
        checkpoint files that existed but could not be restored.  (They are
        omitted entirely for store-less caches, whose ``cache_info()`` stays
        byte-compatible with earlier releases.)
        """
        info = {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "refreshes": self._refreshes,
            "refresh_fallbacks": self._refresh_fallbacks,
            "size": len(self._systems),
        }
        if self._store is not None:
            info.update({
                "store_hits": self._store_hits,
                "store_misses": self._store_misses,
                "spills": self._spills,
                "restore_fallbacks": self._restore_fallbacks,
            })
        return info

    def clear(self) -> None:
        """Drop every cached system and reset the counters.

        The store (if any) is left untouched: ``clear`` empties the memory
        tier, it does not delete checkpoints.  Subsequent lookups may
        therefore still restore from disk.
        """
        while self._systems:
            key, _ = self._systems.popitem(last=False)
            self._provenance.pop(key, None)
            self._invalidate(key)
            self._evicted(key)
        self._provenance.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._refreshes = 0
        self._refresh_fallbacks = 0
        self._store_hits = 0
        self._store_misses = 0
        self._spills = 0
        self._restore_fallbacks = 0


#: Default size of a planner's answer-level result cache.
DEFAULT_RESULT_CACHE_SIZE = 1024

#: A result-cache key: ``(SystemKey, finalize identity, rhs fingerprint)``.
ResultKey = Tuple[SystemKey, Hashable, bytes]


class ResultCache:
    """LRU cache of *finalized answers* keyed by ``(SystemKey, rhs fingerprint)``.

    Serving workloads repeat hot queries; a repeated query should not even
    pay the substitution sweep.  The key is the system identity plus a digest
    of the right-hand-side bytes — so two queries whose specs build the same
    RHS against the same factors share one entry (e.g. an RWR from node ``u``
    and a single-seed PPR at ``u``).  Specs with a post-transform or
    normalization extend the key with their name and parameters, since their
    final answer is not a pure function of ``(system, rhs)``.

    Entries are value-isolated: arrays are copied in on store and copied out
    on hit, so callers may mutate their results freely.  Invalidation is
    driven by the factor cache (:meth:`FactorCache.add_invalidation_listener`):
    whenever a key's factors are evicted, stolen or replaced, every answer
    derived from them is dropped — a re-factorized system is exact but not
    necessarily bit-identical, and a refreshed one is not even that.
    """

    def __init__(self, max_entries: int = DEFAULT_RESULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise MeasureError(f"max_entries must be positive, got {max_entries}")
        self._entries: "OrderedDict[ResultKey, np.ndarray]" = OrderedDict()
        self._by_system: Dict[SystemKey, Set[ResultKey]] = {}
        self._max_entries = int(max_entries)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: ResultKey) -> Optional[np.ndarray]:
        """Return a copy of the cached answer, counting the hit or miss."""
        answer = self._entries.get(key)
        if answer is None:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return answer.copy()

    def store(self, key: ResultKey, answer: np.ndarray) -> None:
        """Install (a copy of) a freshly computed answer."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = np.array(answer, dtype=float, copy=True)
        self._by_system.setdefault(key[0], set()).add(key)
        while len(self._entries) > self._max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._evictions += 1
            siblings = self._by_system.get(evicted[0])
            if siblings is not None:
                siblings.discard(evicted)
                if not siblings:
                    del self._by_system[evicted[0]]

    def invalidate_system(self, system_key: SystemKey) -> None:
        """Drop every answer derived from one system's factors."""
        for key in self._by_system.pop(system_key, ()):  # type: ignore[arg-type]
            if self._entries.pop(key, None) is not None:
                self._invalidations += 1

    def cache_info(self) -> Dict[str, int]:
        """Return hit/miss/eviction/invalidation/size counters."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "invalidations": self._invalidations,
            "size": len(self._entries),
        }

    def clear(self) -> None:
        """Drop every cached answer and reset the counters."""
        self._entries.clear()
        self._by_system.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0


@dataclasses.dataclass(frozen=True)
class ApproximationRecord:
    """Audit trail of one QC-approximated group: what was traded, for what.

    Every batch answered under an approximate :class:`~repro.policy.base.
    ReusePolicy` reports one record per group that was served from another
    system's factors, so callers can see exactly which positions of the
    result are approximate and at what certified cost.

    Attributes
    ----------
    positions:
        Batch positions answered from the reused factors.
    system:
        The :class:`~repro.query.spec.SystemKey` identity the queries asked
        for (snapshot or sequence token).
    parent_system:
        The identity of the cached system that actually answered.
    similarity:
        Snapshot similarity the candidate passed (``>= policy alpha``).
    loss_estimate:
        Certified relative-deviation bound of the raw answers
        (``<= policy loss bound``); see
        :func:`repro.core.quality.reuse_loss_bound`.
    policy:
        Name of the policy that licensed the approximation.
    rank:
        Number of delta columns applied exactly by a Sherman–Morrison–
        Woodbury correction over the parent's factors (``0`` for verbatim
        reuse — the parent's answer served unchanged).
    mode:
        How the group was served: ``"verbatim"`` (step-2 policy reuse),
        ``"corrected"`` (rank-``k`` corrected reuse across snapshots) or
        ``"cross-damping"`` (same snapshot answered across damping factors,
        possibly corrected).
    """

    positions: Tuple[int, ...]
    system: Hashable
    parent_system: Hashable
    similarity: float
    loss_estimate: float
    policy: str
    rank: int = 0
    mode: str = "verbatim"


@dataclasses.dataclass(frozen=True)
class PlannedGroup:
    """All queries of one batch that share one system matrix."""

    key: SystemKey
    positions: Tuple[int, ...]
    queries: Tuple[Query, ...]

    @property
    def size(self) -> int:
        """Number of queries in the group (the batched-solve width)."""
        return len(self.queries)


@dataclasses.dataclass(frozen=True)
class DirectAnswer:
    """A query answered in closed form by its spec's shortcut."""

    position: int
    query: Query
    answer: np.ndarray


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """The grouped form of one batch: factor groups plus direct answers."""

    batch: QueryBatch
    groups: Tuple[PlannedGroup, ...]
    direct: Tuple[DirectAnswer, ...]

    @property
    def group_count(self) -> int:
        """Number of distinct system matrices the batch needs."""
        return len(self.groups)

    def __len__(self) -> int:
        return len(self.batch)


@dataclasses.dataclass(frozen=True)
class PlannerStats:
    """What one :meth:`QueryPlanner.execute` run cost.

    ``factorizations`` is the acceptance-criteria counter: it equals the
    number of planned groups whose key was not already in the factor cache,
    was not answered outright by the reuse policy, *and* could not be
    delta-refreshed from a cached parent — at most one factorization per
    distinct system matrix, ever.  ``refreshes`` counts miss groups answered
    by Bennett-updating a cached parent's factors; ``qc_reuses`` counts miss
    groups answered *from another system's factors unchanged* under an
    approximate policy (no numerical work at all); ``corrected_reuses``
    counts miss groups answered through a rank-``k`` Sherman–Morrison–
    Woodbury correction of a cached system (including rank-0 cross-damping
    sharing); ``result_hits`` counts individual queries answered straight
    from the result cache without a substitution sweep.
    """

    queries: int
    groups: int
    factorizations: int
    cache_hits: int
    direct_answers: int
    refreshes: int = 0
    qc_reuses: int = 0
    corrected_reuses: int = 0
    result_hits: int = 0


@dataclasses.dataclass
class BatchResult:
    """Positional answers of one batch plus the run's reuse statistics.

    ``approximations`` is the quality audit: one
    :class:`ApproximationRecord` per group answered from a similar system's
    factors under the planner's reuse policy, carrying the similarity score
    and the certified loss estimate.  Empty under an exact policy — every
    answer is then bitwise what a policy-less planner produces.
    """

    results: List[np.ndarray]
    stats: PlannerStats
    approximations: Tuple[ApproximationRecord, ...] = ()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.results[index]

    @property
    def max_loss_estimate(self) -> float:
        """Largest certified loss estimate in the batch (0.0 if none)."""
        if not self.approximations:
            return 0.0
        return max(record.loss_estimate for record in self.approximations)

    def loss_estimates(self) -> Tuple[float, ...]:
        """Certified loss estimate of every approximate *query* in the batch.

        One value per approximated batch position (a group's estimate covers
        each of its queries), so the tuple is the per-answer loss
        distribution — empty when nothing was approximated.
        """
        return tuple(
            record.loss_estimate
            for record in self.approximations
            for _ in record.positions
        )

    def loss_estimate_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the per-query loss distribution.

        ``fraction`` in ``[0, 1]`` (``0.5`` = p50, ``0.99`` = p99); returns
        ``0.0`` when the batch carries no approximations, and the maximum at
        ``fraction=1.0``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise MeasureError(
                f"percentile fraction must lie in [0, 1], got {fraction}"
            )
        estimates = sorted(self.loss_estimates())
        if not estimates:
            return 0.0
        rank = max(1, int(np.ceil(fraction * len(estimates))))
        return estimates[rank - 1]

    def approximate_positions(self) -> Tuple[int, ...]:
        """Sorted batch positions whose answers are policy approximations."""
        return tuple(sorted(
            position
            for record in self.approximations
            for position in record.positions
        ))


class QueryPlanner:
    """Group queries by shared system matrix; factorize once per group.

    A miss group is answered by the cheapest admissible source, in one fixed
    precedence order (each step falls through to the next):

    1. **Factor-cache hit** — the key's own factors are cached (a store-
       backed cache transparently restores from disk here).
    2. **Policy reuse** — an approximate :class:`~repro.policy.base.
       ReusePolicy` (e.g. :class:`~repro.policy.qc.QCPolicy`) licenses
       answering from a cached *similar* system's factors outright: no
       factorization, no refresh, an :class:`ApproximationRecord` in the
       batch result.  Exact policies skip this step entirely.
    3. **Corrected reuse** — a correction-capable policy
       (:class:`~repro.policy.corrected.CorrectedPolicy`) licenses
       answering through a rank-``k`` Sherman–Morrison–Woodbury correction
       of a cached system's factors (:class:`~repro.lu.smw.
       WoodburyCorrector`): the ``k`` dominant columns of ``ΔA`` are applied
       exactly, the *residual* delta is certified, at the cost of ``k``
       extra triangular sweeps once plus a ``k×k`` dense solve per batch.
       The candidate scan also covers **cross-damping** sharing: a cached
       system over the *same snapshot* at a different damping factor, whose
       delta ``(d' - d)·M`` the same machinery bounds.
    4. **Delta refresh** — a registered lineage (or, with ``auto_refresh``,
       the nearest cached same-shape snapshot) Bennett-updates a clone of
       the parent's factors: near-exact, cheaper than cold.
    5. **Cold factorization** — Markowitz + Crout, dispatched as executor
       work units.

    Policy reuse outranks corrected reuse because it does zero numerical
    work; corrected reuse outranks refresh because its setup cost is ``k``
    sweeps instead of a full Bennett pass over the delta, and the policy
    explicitly certifies the accepted loss; refresh outranks cold because it
    is near-exact and cheaper.  Groups answered at steps 1–4 never reach the
    FACTOR unit fan-out; groups answered at steps 2–3 skip the REFRESH units
    as well.

    Parameters
    ----------
    executor:
        How cache-miss factorizations are scheduled: ``None`` (default) runs
        them serially in-process; an ``int`` or an
        :class:`~repro.exec.executors.Executor` fans independent factor
        groups out exactly like the sequence-decomposition work units.
        Results are bitwise identical regardless of the executor.
    cache:
        An existing :class:`FactorCache` to share or pre-seed; a fresh one is
        created when omitted.
    auto_refresh:
        When true, a cache-miss snapshot with no registered lineage scans the
        cached keys for a same-``(kind, damping)`` snapshot of the same size
        and delta-refreshes from the nearest one (smallest
        :class:`~repro.graphs.delta.GraphDelta`).  Off by default: refreshed
        factors answer within numerical tolerance but not bitwise-identically
        to a cold factorization, so refresh must be opted into — either
        through this flag or per-evolution via :meth:`register_evolution`.
    policy:
        The reuse policy for step 2.  ``None`` (default) resolves to
        :class:`~repro.policy.exact.ExactPolicy`, under which the planner's
        output is bitwise identical to the historical planner.  An
        approximate policy must be opted into explicitly — its answers are
        *approximations*, audited per group in
        :attr:`BatchResult.approximations`.
    result_cache:
        The answer-level cache for repeated identical queries: ``None``
        (default) creates a :class:`ResultCache` bounded at
        ``DEFAULT_RESULT_CACHE_SIZE``; an ``int`` bounds a fresh cache at
        that many entries (``0`` disables result caching); ``True`` /
        ``False`` mean default / disabled; a :class:`ResultCache` instance
        is used as given.  Cached answers are value-copies, so result
        caching never changes observable answers.
    store:
        Convenience for the common warm-boot construction: a
        :class:`~repro.store.factorstore.FactorStore` to build the
        planner's :class:`FactorCache` around (spill on eviction, consult
        on miss, :meth:`checkpoint`).  Mutually exclusive with ``cache`` —
        when sharing an existing cache, attach the store to it directly
        via ``FactorCache(store=...)``.
    """

    def __init__(
        self,
        executor: Union[Executor, int, None] = None,
        cache: Optional[FactorCache] = None,
        auto_refresh: bool = False,
        policy: Optional["ReusePolicy"] = None,
        result_cache: Union[ResultCache, int, None] = None,
        store: Optional["FactorStore"] = None,
    ) -> None:
        # Imported here, not at module level: repro.policy sits above the
        # core package, whose solver module imports this one.
        from repro.policy import ExactPolicy, ReusePolicy

        if policy is None:
            policy = ExactPolicy()
        elif not isinstance(policy, ReusePolicy):
            raise MeasureError(
                f"policy must be a ReusePolicy, got {type(policy).__name__}"
            )
        if store is not None and cache is not None:
            raise MeasureError(
                "pass either cache= or store=: to combine a shared cache "
                "with a disk tier, construct it as FactorCache(store=...)"
            )
        self._executor = executor
        if cache is not None:
            self._cache = cache
        else:
            self._cache = FactorCache(store=store)
        self._auto_refresh = bool(auto_refresh)
        self._policy = policy
        if result_cache is None:
            self._results: Optional[ResultCache] = ResultCache()
        elif isinstance(result_cache, bool):
            # bools are ints: True would otherwise build a degenerate
            # 1-entry cache.  Honor the evident intent instead.
            self._results = ResultCache() if result_cache else None
        elif isinstance(result_cache, int):
            if result_cache < 0:
                raise MeasureError(
                    f"result_cache bound must be >= 0 (0 disables), got {result_cache}"
                )
            self._results = ResultCache(result_cache) if result_cache > 0 else None
        else:
            self._results = result_cache
        self._cache.add_invalidation_listener(self._on_factor_invalidation)
        self._cache.add_eviction_listener(self._on_factor_eviction)
        #: new system identity -> (old system identity, old snapshot, new snapshot)
        self._lineage: Dict[
            Hashable, Tuple[Hashable, GraphSnapshot, GraphSnapshot]
        ] = {}
        #: non-snapshot system identities (sequence tokens) -> their snapshot,
        #: so policy reuse can score cached systems whose key is a token.
        self._snapshots: Dict[Hashable, GraphSnapshot] = {}
        #: memoized candidate-scan outcomes, valid until the cache changes:
        #: (kind, damping, child snapshot) -> (parent key, decision) or None
        self._reuse_memo: "OrderedDict[Tuple, Optional[Tuple[SystemKey, ReuseDecision]]]" = (
            OrderedDict()
        )
        #: same keying and lifetime for the corrected-reuse scan; holds the
        #: built corrector so steady-state batches skip its setup sweeps
        self._corrected_memo: "OrderedDict[Tuple, Optional[Tuple]]" = OrderedDict()

    def _clear_scan_memos(self) -> None:
        self._reuse_memo.clear()
        self._corrected_memo.clear()

    def _on_factor_invalidation(self, key: SystemKey) -> None:
        """React to a factor-cache change: drop derived answers, stale scans.

        Registered as a (weakly held) invalidation listener: any install,
        eviction or steal changes the candidate set the reuse policy scans,
        so the scan memos are discarded wholesale (the corrected memo also
        holds correctors built over possibly-departed factors), and the
        result cache drops the answers derived from the affected key.
        """
        if self._results is not None:
            self._results.invalidate_system(key)
        self._clear_scan_memos()

    def _on_factor_eviction(self, key: SystemKey) -> None:
        """React to a key leaving the factor cache: prune dead bookkeeping.

        The lineage registry maps a child system to its refresh parent; an
        entry is only actionable while some cached key still carries the
        parent's system (``_refresh_parent`` otherwise falls back cold).  So
        once the *last* cached key of a system is evicted, every lineage
        entry naming it as parent — and its snapshot binding — is dropped.
        This is what bounds the registries of a long-lived server admitting
        updates forever against a size-bounded factor cache: lineage tracks
        the cache's working set instead of the whole evolution history.
        """
        system = key.system
        if any(cached.system == system for cached in self._cache.keys()):
            return
        if any(parent == system for parent, _, _ in self._lineage.values()):
            self._lineage = {
                child: entry
                for child, entry in self._lineage.items()
                if entry[0] != system
            }
        self._snapshots.pop(system, None)

    @property
    def cache(self) -> FactorCache:
        """The planner's factor cache (shared, seedable, inspectable)."""
        return self._cache

    @property
    def policy(self) -> "ReusePolicy":
        """The reuse policy gating approximate answers (step 2)."""
        return self._policy

    @property
    def result_cache(self) -> Optional[ResultCache]:
        """The answer-level cache, or ``None`` when disabled."""
        return self._results

    def checkpoint(self) -> int:
        """Flush the factor cache's working set to its store (spill count).

        See :meth:`FactorCache.checkpoint`; raises
        :class:`~repro.errors.MeasureError` when the cache has no store.
        """
        return self._cache.checkpoint()

    def cache_info(self) -> Dict[str, int]:
        """Lifetime counters of the factor cache plus the result cache.

        Factor-cache counters keep their historical names; result-cache
        counters are prefixed ``result_`` (all zero when result caching is
        disabled).
        """
        info = self._cache.cache_info()
        result_info = (
            self._results.cache_info()
            if self._results is not None
            else {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0, "size": 0}
        )
        info.update({f"result_{name}": value for name, value in result_info.items()})
        return info

    def bind_snapshot(self, system: Hashable, snapshot: GraphSnapshot) -> None:
        """Declare which snapshot a token-keyed system identity describes.

        Sequence-level planners key their seeded factors by index token, not
        by snapshot; binding the token lets the reuse policy score those
        systems as candidates for answering similar snapshots.  Snapshot
        identities need no binding (they carry their own graph).
        """
        if not isinstance(snapshot, GraphSnapshot):
            raise MeasureError("bind_snapshot takes the system's GraphSnapshot")
        if isinstance(system, GraphSnapshot):
            return
        self._snapshots[system] = snapshot
        # A new binding can make a candidate scoreable: stale negative scans
        # must not outlive it.
        self._clear_scan_memos()

    def _prune_stale_bindings(self) -> None:
        """Drop snapshot bindings no cached key can use any more.

        A long-lived planner over an evolving chain accumulates bindings
        (each holding a full edge set) while a bounded factor cache keeps
        only the recent keys; once the binding map clearly outgrows the
        cache, everything not backed by a cached key's system is swept.  The
        sweep only ever disables *candidate scoring* for systems that would
        need re-seeding anyway — lineage refresh keeps its own snapshots and
        is unaffected.
        """
        if len(self._snapshots) <= max(32, 2 * len(self._cache)):
            return
        live = {key.system for key in self._cache.keys()}
        self._snapshots = {
            system: snapshot
            for system, snapshot in self._snapshots.items()
            if system in live
        }

    def register_evolution(
        self,
        old: GraphSnapshot,
        new: GraphSnapshot,
        old_system: Optional[Hashable] = None,
        new_system: Optional[Hashable] = None,
    ) -> None:
        """Declare that snapshot ``new`` evolved from snapshot ``old``.

        A later cache miss for ``new`` (any kind-based system key) will try
        to Bennett-refresh the system cached for ``old`` instead of
        factorizing from scratch.  ``old_system`` / ``new_system`` override
        the :class:`~repro.query.spec.SystemKey` identities when they differ
        from the snapshots themselves — e.g. an
        :class:`~repro.core.solver.EMSSolver` index token for factors seeded
        from a sequence decomposition.  Registering a lineage is the per-pair
        opt-in to refresh (answers match a cold factorization within
        numerical tolerance, not bitwise).

        Lineage entries live for the planner's lifetime (each holds both
        snapshots), so register per-pair evolutions judiciously on long-lived
        planners — for an unboundedly evolving stream prefer
        ``auto_refresh`` or a :class:`~repro.policy.qc.QCPolicy`, which need
        no per-pair state.
        """
        if not isinstance(old, GraphSnapshot) or not isinstance(new, GraphSnapshot):
            raise MeasureError(
                "register_evolution takes two GraphSnapshots (the delta is "
                "computed from their edge sets)"
            )
        if old.n != new.n:
            raise MeasureError(
                f"evolution must preserve the node count: {old.n} vs {new.n}"
            )
        self._lineage[new_system if new_system is not None else new] = (
            old_system if old_system is not None else old,
            old,
            new,
        )
        # Lineage doubles as a snapshot binding for token identities, so the
        # reuse policy can score either end as a candidate.
        if old_system is not None:
            self.bind_snapshot(old_system, old)
        if new_system is not None:
            self.bind_snapshot(new_system, new)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
        """Group a batch by system key (first-appearance order, stable).

        Every query lands in exactly one group or one direct answer; the
        group count equals the number of distinct system matrices among the
        non-shortcut queries.
        """
        if not isinstance(batch, QueryBatch):
            batch = QueryBatch(batch)
        order: List[SystemKey] = []
        grouped: Dict[SystemKey, List[int]] = {}
        direct: List[DirectAnswer] = []
        for position, query in enumerate(batch):
            spec = get_spec(query.measure)
            if spec.shortcut is not None:
                answer = spec.shortcut(query.snapshot, query.damping, query.param_dict)
                if answer is not None:
                    direct.append(DirectAnswer(position, query, answer))
                    continue
            key = system_key(query)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(position)
        groups = tuple(
            PlannedGroup(
                key=key,
                positions=tuple(grouped[key]),
                queries=tuple(batch[p] for p in grouped[key]),
            )
            for key in order
        )
        return QueryPlan(batch=batch, groups=groups, direct=tuple(direct))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, plan: QueryPlan) -> BatchResult:
        """Run a plan through the reuse precedence, then batch-solve.

        Miss groups walk the documented precedence: policy reuse (step 2,
        approximate policies only) answers a group from a cached similar
        system's factors outright; the snapshot lineage (explicit
        :meth:`register_evolution` entries, or the cached-snapshot index when
        ``auto_refresh`` is on) Bennett-refreshes a cached parent's factors;
        everything else — no candidate, gates failed, oversized delta,
        pattern violation, pivot breakdown — cold-factorizes exactly as
        before.
        """
        self._prune_stale_bindings()
        systems: Dict[SystemKey, FactorizedSystem] = {}
        misses: List[PlannedGroup] = []
        for group in plan.groups:
            cached = self._cache.lookup(group.key)
            if cached is None:
                misses.append(group)
            else:
                systems[group.key] = cached
        reused, records, remaining = self._policy_reuse(misses)
        corrected, corrected_records, remaining = self._corrected_reuse(remaining)
        refreshed, cold = self._refresh_misses(remaining)
        # Use the reused / refreshed / freshly factorized systems directly: a
        # size-bounded cache may already have evicted early ones by the time
        # the batch solves.
        systems.update(
            {key: system for key, (_, system) in reused.items()}
        )
        systems.update(
            {key: solver for key, (_, solver) in corrected.items()}
        )
        systems.update(refreshed)
        systems.update(self._factorize(cold))
        results: List[Optional[np.ndarray]] = [None] * len(plan.batch)
        result_hits = 0
        for group in plan.groups:
            # Approximate answers are cached under the PARENT's key (they
            # are, verbatim, that system's answers), never under the miss
            # key — a later exact answer for the miss key must not be
            # shadowed by an approximation.  Rank-k corrected answers are a
            # function of the *corrector* (parent factors + applied delta),
            # not of any cached system, so they bypass the result cache
            # entirely (cache_base None).
            reuse = reused.get(group.key)
            correction = corrected.get(group.key)
            if reuse is not None:
                cache_base: Optional[SystemKey] = reuse[0]
            elif correction is not None:
                cache_base = correction[0]
            else:
                cache_base = group.key
            result_hits += self._answer_group(
                group,
                systems[group.key],
                results,
                cache_base=cache_base,
                approximate=reuse is not None or correction is not None,
            )
        for direct in plan.direct:
            # Copy: the plan may be executed again, and callers own their
            # result arrays (the group path allocates fresh columns too).
            results[direct.position] = direct.answer.copy()
        stats = PlannerStats(
            queries=len(plan.batch),
            groups=len(plan.groups),
            factorizations=len(cold),
            cache_hits=len(plan.groups) - len(misses),
            direct_answers=len(plan.direct),
            refreshes=len(refreshed),
            qc_reuses=len(reused),
            corrected_reuses=len(corrected),
            result_hits=result_hits,
        )
        return BatchResult(
            results=list(results),
            stats=stats,
            approximations=tuple(records) + tuple(corrected_records),
        )

    def run(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchResult:
        """Plan and execute a batch in one call."""
        return self.execute(self.plan(batch))

    # ------------------------------------------------------------------ #
    # Group answering (vectorized RHS assembly + result cache)
    # ------------------------------------------------------------------ #
    def _assemble_rhs_block(self, group: PlannedGroup) -> np.ndarray:
        """Build the group's ``(n, k)`` RHS block, vectorized where possible.

        Consecutive queries of the same measure against the same snapshot
        form a *run*; runs whose spec declares ``build_rhs_block`` are
        assembled in one vectorized call (bitwise-equal per column to the
        scalar builder, by the spec contract), everything else falls back to
        per-query ``build_rhs``.  The group's damping is constant (it is part
        of the system key).
        """
        queries = group.queries
        block = np.empty((queries[0].snapshot.n, len(queries)), dtype=float)
        start = 0
        while start < len(queries):
            head = queries[start]
            spec = get_spec(head.measure)
            stop = start + 1
            while (
                stop < len(queries)
                and queries[stop].measure == head.measure
                and (
                    queries[stop].snapshot is head.snapshot
                    or queries[stop].snapshot == head.snapshot
                )
            ):
                stop += 1
            if spec.build_rhs_block is not None and stop - start > 1:
                block[:, start:stop] = spec.build_rhs_block(
                    head.snapshot,
                    head.damping,
                    [query.param_dict for query in queries[start:stop]],
                )
            else:
                for column in range(start, stop):
                    query = queries[column]
                    block[:, column] = spec.build_rhs(
                        query.snapshot, query.damping, query.param_dict
                    )
            start = stop
        return block

    @staticmethod
    def _result_key(
        group_key: SystemKey, spec: MeasureSpec, query: Query, rhs: np.ndarray
    ) -> ResultKey:
        """Key one finalized answer: system + finalize identity + RHS digest.

        Specs without a transform or normalization return the raw solution —
        a pure function of ``(system, rhs)`` — so their answers are shared
        across measures.  Transforming/normalizing specs add their name and
        parameters to the key — in *canonical* spelling
        (:func:`~repro.query.spec.canonical_params`), so a query built from
        an ``np.int64`` node id or a ``frozenset`` seed set shares one entry
        with its plain-``int`` / ``tuple`` twin instead of cold-missing.
        (:func:`~repro.query.spec.make_query` already canonicalizes; this
        covers :class:`Query` objects assembled from raw tuples directly.)
        """
        fingerprint = hashlib.blake2b(rhs.tobytes(), digest_size=16).digest()
        if spec.transform is None and not spec.normalize:
            return (group_key, None, fingerprint)
        return (group_key, (spec.name, canonical_params(query.params)), fingerprint)

    def _answer_group(
        self,
        group: PlannedGroup,
        system: FactorizedSystem,
        results: List[Optional[np.ndarray]],
        cache_base: Optional[SystemKey],
        approximate: bool,
    ) -> int:
        """Answer one group into ``results``; return the result-cache hits.

        Queries whose finalized answer is already in the result cache skip
        the solve; the rest share one batched substitution sweep (solving a
        column subset is bitwise identical to solving the full block — the
        batched kernels treat columns independently).

        ``cache_base`` is the system key answers are cached under: the
        group's own key normally, the *parent's* key for policy-reused
        (``approximate``) groups — a pure spec's answer from the parent's
        factors is, byte for byte, the parent's own answer for that RHS, so
        the entries are shared with the parent's exact traffic and repeated
        approximate batches skip the solve.  ``None`` disables result
        caching for the group: rank-``k`` corrected answers come from an
        ephemeral corrector, not from any cached system's factors, so no
        cached key may own them.  Specs with a transform or normalization
        bypass the cache in approximate groups (their finalize step may read
        the query's own snapshot).  Stores require the base key's factors to
        still be cached — a bounded factor cache may have evicted them
        mid-batch, and an entry stored after its key's invalidation event
        would outlive its factors.
        """
        block = self._assemble_rhs_block(group)
        answers: Dict[int, np.ndarray] = {}
        keys: List[Optional[ResultKey]] = [None] * group.size
        pending: List[int] = []
        hits = 0
        if self._results is not None and cache_base is not None:
            for column, query in enumerate(group.queries):
                spec = get_spec(query.measure)
                if approximate and (spec.transform is not None or spec.normalize):
                    pending.append(column)
                    continue
                key = self._result_key(cache_base, spec, query, block[:, column])
                keys[column] = key
                cached = self._results.lookup(key)
                if cached is None:
                    pending.append(column)
                else:
                    answers[column] = cached
                    hits += 1
        else:
            pending = list(range(group.size))
        if pending:
            storable = (
                self._results is not None
                and cache_base is not None
                and cache_base in self._cache
            )
            sub_block = block if len(pending) == group.size else block[:, pending]
            solutions = system.solve_many(sub_block)
            for offset, column in enumerate(pending):
                query = group.queries[column]
                spec = get_spec(query.measure)
                answer = spec.finalize(
                    solutions[:, offset], query.snapshot, query.damping,
                    query.param_dict,
                )
                answers[column] = answer
                if storable and keys[column] is not None:
                    self._results.store(keys[column], answer)
        for column, position in enumerate(group.positions):
            results[position] = answers[column]
        return hits

    # ------------------------------------------------------------------ #
    # Policy reuse (precedence step 2)
    # ------------------------------------------------------------------ #
    def _snapshot_of(self, key: SystemKey) -> Optional[GraphSnapshot]:
        """The graph a cached key's system was composed from, if known."""
        if isinstance(key.system, GraphSnapshot):
            return key.system
        return self._snapshots.get(key.system)

    def _policy_reuse(
        self, groups: Sequence[PlannedGroup]
    ) -> Tuple[
        Dict[SystemKey, Tuple[SystemKey, FactorizedSystem]],
        List[ApproximationRecord],
        List[PlannedGroup],
    ]:
        """Answer miss groups from similar cached systems, where the policy allows.

        Returns the borrowed ``(parent key, system)`` pairs keyed by the
        *miss* group's key (they are deliberately NOT installed in the
        factor cache — the cache maps a key to factors of *that* system, and
        aliasing would turn a bounded approximation into a silent cache
        hit), the audit records, and the groups that fall through to
        refresh / cold factorization.
        """
        if not groups or self._policy.is_exact:
            return {}, [], list(groups)
        reused: Dict[SystemKey, Tuple[SystemKey, FactorizedSystem]] = {}
        records: List[ApproximationRecord] = []
        remaining: List[PlannedGroup] = []
        for group in groups:
            found = self._reuse_candidate(group)
            if found is None:
                remaining.append(group)
                continue
            parent_key, decision = found
            system = self._cache.peek(parent_key)
            if system is None:  # pragma: no cover - memo cleared on eviction
                remaining.append(group)
                continue
            # Freshen recency (the parent is in active use) without touching
            # the pinned per-group hit/miss accounting.
            self._cache.touch(parent_key)
            reused[group.key] = (parent_key, system)
            records.append(ApproximationRecord(
                positions=group.positions,
                system=group.key.system,
                parent_system=parent_key.system,
                similarity=decision.similarity,
                loss_estimate=decision.loss_estimate,
                policy=self._policy.name,
            ))
        return reused, records, remaining

    #: Bound on the candidate-scan memo (distinct (kind, damping, child)
    #: combinations remembered between cache changes).
    _REUSE_MEMO_LIMIT = 128

    def _reuse_candidate(
        self, group: PlannedGroup
    ) -> Optional[Tuple[SystemKey, "ReuseDecision"]]:
        """Scan cached systems for the policy's best admissible stand-in.

        Only kind-composed keys participate (a custom matrix builder is
        opaque to similarity and loss scoring, and matrix parameters like the
        hitting-time target change the system beyond the snapshot).  The best
        candidate is the one the policy scores highest (similarity, then
        loss); ties keep the first-seen candidate, so the scan is
        deterministic for a given cache state.

        Scan outcomes — including "no candidate" — are memoized per
        ``(kind, damping, child snapshot)`` until the factor cache changes
        (any install or eviction clears the memo through the invalidation
        listener, as does a new snapshot binding), so steady-state repeated
        batches pay the full delta-scoring scan once, not per batch.
        """
        key = group.key
        if key.matrix_builder is not None or key.matrix_params:
            return None
        child = group.queries[0].snapshot
        memo_key = (key.kind, key.damping, child)
        if memo_key in self._reuse_memo:
            self._reuse_memo.move_to_end(memo_key)
            return self._reuse_memo[memo_key]
        best: Optional[Tuple[SystemKey, "ReuseDecision"]] = None
        for candidate in self._cache.keys():
            if (
                candidate.kind is not key.kind
                or candidate.damping != key.damping
                or candidate.matrix_params
                or candidate.matrix_builder is not None
            ):
                continue
            parent = self._snapshot_of(candidate)
            if parent is None or parent.n != child.n:
                continue
            if not self._policy.prefilter(parent, child):
                continue
            delta = GraphDelta.between(parent, child)
            decision = self._policy.evaluate_reuse(
                parent, child, kind=key.kind, damping=key.damping, delta=delta
            )
            if decision is None:
                continue
            if best is None or decision.preferable_to(best[1]):
                best = (candidate, decision)
        self._reuse_memo[memo_key] = best
        while len(self._reuse_memo) > self._REUSE_MEMO_LIMIT:
            self._reuse_memo.popitem(last=False)
        return best

    # ------------------------------------------------------------------ #
    # Corrected reuse (precedence step 3)
    # ------------------------------------------------------------------ #
    def _corrected_reuse(
        self, groups: Sequence[PlannedGroup]
    ) -> Tuple[
        Dict[SystemKey, Tuple[Optional[SystemKey], FactorizedSystem]],
        List[ApproximationRecord],
        List[PlannedGroup],
    ]:
        """Answer miss groups via rank-``k`` SMW correction, where licensed.

        Returns ``(cache_base, solver)`` pairs keyed by the miss group's key
        — the solver is the parent's own :class:`FactorizedSystem` for
        rank-0 decisions (pure sharing, result-cacheable under the parent's
        key like verbatim reuse) or a :class:`~repro.lu.smw.
        WoodburyCorrector` for rank ``>= 1`` (``cache_base`` ``None``: the
        corrected answer belongs to no cached system) — plus the audit
        records and the groups falling through to refresh / cold.  Like
        verbatim reuse, nothing is installed in the factor cache.
        """
        if not groups or not getattr(self._policy, "supports_correction", False):
            return {}, [], list(groups)
        corrected: Dict[SystemKey, Tuple[Optional[SystemKey], FactorizedSystem]] = {}
        records: List[ApproximationRecord] = []
        remaining: List[PlannedGroup] = []
        for group in groups:
            found = self._corrected_candidate(group)
            if found is None:
                remaining.append(group)
                continue
            parent_key, decision, mode, solver, cache_base = found
            if decision.rank == 0 and self._cache.peek(parent_key) is None:
                # pragma: no cover - memo cleared on eviction
                remaining.append(group)
                continue
            # Freshen recency (the parent's factors are in active use; a
            # rank-k corrector reads them on every batch) without touching
            # the pinned per-group hit/miss accounting.
            self._cache.touch(parent_key)
            corrected[group.key] = (cache_base, solver)
            records.append(ApproximationRecord(
                positions=group.positions,
                system=group.key.system,
                parent_system=parent_key.system,
                similarity=decision.similarity,
                loss_estimate=decision.loss_estimate,
                policy=self._policy.name,
                rank=decision.rank,
                mode=mode,
            ))
        return corrected, records, remaining

    def _corrected_candidate(self, group: PlannedGroup) -> Optional[Tuple]:
        """Scan cached systems for the best admissible corrected stand-in.

        Two candidate families share the scan, the bound machinery and the
        memo:

        * **same damping, different snapshot** — the step-2 scan's
          candidates, but judged by :meth:`~repro.policy.base.ReusePolicy.
          correct` against the *residual* of ``ΔA = system_delta(parent,
          child)`` after its ``k`` dominant columns, instead of against the
          full delta;
        * **same snapshot, different damping** — a cached ``(kind, snapshot,
          d')`` system whose delta to the miss is ``(d' - d)·M``
          (:func:`~repro.graphs.matrixkind.damping_delta`).  The corrected
          system mixes columns damped at ``d`` and ``d'``, so the
          conservative amplification constant ``1/(1 - max(d, d'))`` is
          certified (the Laplacian ignores damping entirely: its delta is
          empty and the reuse exact).

        The memo entry holds the *built* corrector (its setup sweeps are the
        expensive part), so steady-state repeated batches pay them once; any
        factor-cache change clears the memo, which also guarantees a held
        corrector never outlives the factors it wraps.  A candidate whose
        capacitance is singular or ill-conditioned is discarded (falls
        through to refresh / cold) rather than served.
        """
        key = group.key
        if key.matrix_builder is not None or key.matrix_params:
            return None
        certifies = getattr(self._policy, "certifies_kind", None)
        if certifies is not None and not certifies(key.kind):
            return None
        child = group.queries[0].snapshot
        memo_key = (key.kind, key.damping, child)
        if memo_key in self._corrected_memo:
            self._corrected_memo.move_to_end(memo_key)
            return self._corrected_memo[memo_key]
        from repro.core.similarity import snapshot_similarity

        best: Optional[Tuple[SystemKey, "CorrectionDecision", str, Entries]] = None
        for candidate in self._cache.keys():
            if (
                candidate.kind is not key.kind
                or candidate.matrix_params
                or candidate.matrix_builder is not None
            ):
                continue
            parent = self._snapshot_of(candidate)
            if parent is None or parent.n != child.n:
                continue
            if candidate.damping == key.damping:
                if not self._policy.prefilter(parent, child):
                    continue
                delta = GraphDelta.between(parent, child)
                similarity = snapshot_similarity(parent, child, delta=delta)
                entries = system_delta(
                    parent, child, kind=key.kind, damping=key.damping, delta=delta
                )
                mode = "corrected"
                amplifier = (
                    0.0 if key.kind is MatrixKind.LAPLACIAN else key.damping
                )
            else:
                if parent != child:
                    continue
                entries = damping_delta(
                    child,
                    key.kind,
                    from_damping=candidate.damping,
                    to_damping=key.damping,
                )
                similarity = 1.0
                mode = "cross-damping"
                amplifier = (
                    0.0
                    if key.kind is MatrixKind.LAPLACIAN
                    else max(key.damping, candidate.damping)
                )
            decision = self._policy.correct(
                entries, amplifier_damping=amplifier, similarity=similarity
            )
            if decision is None:
                continue
            if best is None or decision.preferable_to(best[1]):
                best = (candidate, decision, mode, entries)
        found = None if best is None else self._build_correction(*best)
        self._corrected_memo[memo_key] = found
        while len(self._corrected_memo) > self._REUSE_MEMO_LIMIT:
            self._corrected_memo.popitem(last=False)
        return found

    def _build_correction(
        self,
        parent_key: SystemKey,
        decision: "CorrectionDecision",
        mode: str,
        entries: Entries,
    ) -> Optional[Tuple]:
        """Materialize a licensed correction into a servable solver.

        Rank 0 needs no numerical setup: the parent's system answers as-is
        (verbatim-grade sharing, cache base = parent key).  Rank ``k``
        gathers the decision's columns of ``ΔA`` into a dense ``(n, k)``
        update block and builds the :class:`~repro.lu.smw.WoodburyCorrector`
        (``k`` triangular sweeps + the capacitance factorization, paid once
        per memo lifetime).  Returns ``None`` when the parent vanished or
        the capacitance check fails — the group then falls through to
        refresh / cold, never serving an uncertified answer.
        """
        parent_system = self._cache.peek(parent_key)
        if parent_system is None:  # pragma: no cover - scan just saw the key
            return None
        if decision.rank == 0:
            return (parent_key, decision, mode, parent_system, parent_key)
        n = parent_system.matrix.n
        update = np.zeros((n, decision.rank), dtype=float)
        offsets = {column: t for t, column in enumerate(decision.columns)}
        for (row, column), value in entries.items():
            t = offsets.get(column)
            if t is not None:
                update[row, t] += value
        try:
            corrector = WoodburyCorrector(
                parent_system.factors,
                parent_system.ordering,
                update,
                decision.columns,
            )
        except SingularMatrixError:
            return None
        return (parent_key, decision, mode, corrector, None)

    # ------------------------------------------------------------------ #
    # Delta-refresh fan-out
    # ------------------------------------------------------------------ #
    def _refresh_parent(
        self, key: SystemKey
    ) -> Optional[Tuple[SystemKey, GraphSnapshot, GraphSnapshot, GraphDelta]]:
        """Find a cached parent system to delta-refresh ``key`` from.

        Custom-matrix keys never refresh (their composition is opaque to the
        system-delta layer).  Explicit lineage wins; with ``auto_refresh`` a
        snapshot-keyed miss falls back to scanning the cached keys for the
        nearest same-shape snapshot.
        """
        if key.matrix_builder is not None:
            return None
        lineage = self._lineage.get(key.system)
        if lineage is not None:
            old_system, old_snapshot, new_snapshot = lineage
            old_key = dataclasses.replace(key, system=old_system)
            if self._cache.peek(old_key) is None:
                return None
            return (
                old_key,
                old_snapshot,
                new_snapshot,
                GraphDelta.between(old_snapshot, new_snapshot),
            )
        if not self._auto_refresh or not isinstance(key.system, GraphSnapshot):
            return None
        new_snapshot = key.system
        best = None
        for candidate in self._cache.keys():
            if (
                candidate.kind is key.kind
                and candidate.damping == key.damping
                and candidate.matrix_params == key.matrix_params
                and candidate.matrix_builder is None
                and isinstance(candidate.system, GraphSnapshot)
                and candidate.system.n == new_snapshot.n
            ):
                delta = GraphDelta.between(candidate.system, new_snapshot)
                if best is None or delta.size < best[3].size:
                    best = (candidate, candidate.system, new_snapshot, delta)
        return best

    def _has_lineage(self, key: SystemKey) -> bool:
        """Whether a refreshable lineage was registered for this key's system."""
        return key.matrix_builder is None and key.system in self._lineage

    def _refresh_misses(
        self, groups: Sequence[PlannedGroup]
    ) -> Tuple[Dict[SystemKey, FactorizedSystem], List[PlannedGroup]]:
        """Bennett-refresh the miss groups that have a cached lineage parent.

        Returns the refreshed systems (committed to the cache under their new
        keys) and the groups still needing a cold factorization — including
        any whose prepared refresh broke down numerically.  Refresh units
        dispatch through the same executors as factor units, so independent
        refreshes fan out onto a worker pool.

        Refreshes run in waves: a group whose registered parent is not cached
        *yet* may be the next link of a lineage chain whose earlier link is
        refreshing in this same batch, so it is deferred until a wave commits
        nothing new.  A group whose lineage parent never materializes counts
        a ``refresh_fallbacks`` (matching :meth:`FactorCache.refresh` on a
        missing parent) and factorizes cold.
        """
        refreshed: Dict[SystemKey, FactorizedSystem] = {}
        cold: List[PlannedGroup] = []
        pending = list(groups)
        record_provenance = self._cache.disk_store is not None
        while pending:
            jobs: List[Tuple[PlannedGroup, SparseMatrix, SystemKey, Entries]] = []
            payloads = []
            deferred: List[PlannedGroup] = []
            for group in pending:
                parent = self._refresh_parent(group.key)
                if parent is None:
                    if self._has_lineage(group.key):
                        deferred.append(group)
                    else:
                        cold.append(group)
                    continue
                old_key, old_snapshot, new_snapshot, graph_delta = parent
                entries = system_delta(
                    old_snapshot,
                    new_snapshot,
                    kind=group.key.kind,
                    damping=group.key.damping,
                    delta=graph_delta,
                )
                prepared = self._cache.prepare_refresh(old_key, entries)
                if prepared is None:
                    cold.append(group)
                    continue
                ordering = prepared.ordering
                mapped = (
                    ordering.map_entries(entries)
                    if ordering is not None
                    else dict(entries)
                )
                query = group.queries[0]
                new_matrix = get_spec(query.measure).system_matrix(
                    query.snapshot, query.damping, query.param_dict
                )
                jobs.append((group, new_matrix, old_key, mapped))
                payloads.append((new_matrix, prepared.factors, ordering, mapped))
            committed = 0
            if jobs:
                exec_plan = plan_refresh_batch(payloads)
                outcome = resolve_executor(self._executor).execute(exec_plan)
                for (group, new_matrix, old_key, mapped), decomposition in zip(
                    jobs, outcome.decompositions
                ):
                    if decomposition.factors is None:
                        self._cache.refresh_failed()
                        cold.append(group)
                        continue
                    system = FactorizedSystem(
                        new_matrix, decomposition.ordering, decomposition.factors
                    )
                    provenance = None
                    parent_system = (
                        self._cache.peek(old_key) if record_provenance else None
                    )
                    if parent_system is not None:
                        from repro.store.factorstore import RefreshProvenance

                        # The refresh units freeze and apply the delta in
                        # sorted-key order (see plan_refresh_batch); the
                        # provenance must record exactly that order for a
                        # bit-exact replay at restore time.
                        provenance = RefreshProvenance(
                            old_key, parent_system, dict(sorted(mapped.items()))
                        )
                    self._cache.commit_refresh(
                        group.key, system, provenance=provenance
                    )
                    refreshed[group.key] = system
                    committed += 1
            if not deferred:
                break
            if committed == 0:
                for group in deferred:
                    self._cache.refresh_failed()
                    cold.append(group)
                break
            pending = deferred
        return refreshed, cold

    # ------------------------------------------------------------------ #
    # Factorization fan-out
    # ------------------------------------------------------------------ #
    @staticmethod
    def _describe_group(group: PlannedGroup) -> str:
        """One-line system description for factor-unit failure reports."""
        key = group.key
        query = group.queries[0]
        if isinstance(key.system, GraphSnapshot):
            system = (
                f"snapshot(n={key.system.n}, edges={key.system.edge_count})"
            )
        else:
            system = f"token {key.system!r}"
        parts = [
            f"measure={query.measure!r}",
            f"kind={key.kind.name}",
            f"damping={key.damping}",
            f"system={system}",
        ]
        if key.matrix_params:
            parts.append(f"matrix_params={key.matrix_params!r}")
        return ", ".join(parts)

    def _factorize(
        self, groups: Sequence[PlannedGroup]
    ) -> Dict[SystemKey, FactorizedSystem]:
        """Factorize each group's system matrix once, via the exec layer.

        Returns the new systems keyed by group key (they are also stored in
        the cache, which may evict them immediately if it is size-bounded).

        Factor units report failures instead of raising (one poisoned query
        must not abort its siblings with a bare worker traceback): every
        healthy group's system is computed *and cached* first, then a single
        :class:`~repro.errors.FactorizationError` carries the annotated
        per-unit reports — so a retry without the poisoned queries answers
        warm from the cache.
        """
        if not groups:
            return {}
        matrices = []
        labels = []
        for group in groups:
            query = group.queries[0]
            spec = get_spec(query.measure)
            matrices.append(
                spec.system_matrix(query.snapshot, query.damping, query.param_dict)
            )
            labels.append(self._describe_group(group))
        exec_plan = plan_factor_batch(matrices, labels=labels)
        outcome = resolve_executor(self._executor).execute(exec_plan)
        systems: Dict[SystemKey, FactorizedSystem] = {}
        failures: List[str] = []
        for group, matrix, label, decomposition in zip(
            groups, matrices, labels, outcome.decompositions
        ):
            if decomposition.factors is None:
                failures.append(decomposition.error or f"factorization failed [{label}]")
                continue
            system = FactorizedSystem(
                matrix, decomposition.ordering, decomposition.factors
            )
            systems[group.key] = system
            self._cache.store(group.key, system)
        if failures:
            raise FactorizationError(failures)
        return systems
