"""The factor-reusing query planner: plan groups, walk the resolution ladder.

``N`` queries should cost ``#distinct-system-matrices`` factorizations, not
``N``.  The planner makes that explicit in two phases:

* :meth:`QueryPlanner.plan` groups a heterogeneous
  :class:`~repro.query.batch.QueryBatch` by
  :func:`~repro.query.spec.system_key` — queries that share a
  ``(snapshot, kind, damping, matrix-params)`` system matrix land in the
  same :class:`PlannedGroup`, in first-appearance order.  Queries a spec can
  answer in closed form (shortcuts) are split off as direct answers.
* :meth:`QueryPlanner.execute` walks every group down the **resolution
  ladder** (:class:`~repro.query.resolution.ResolutionLadder`) — hit,
  store restore, verbatim reuse, corrected reuse, delta refresh, cold
  factorization, each group served by the first tier that can — then
  answers every group with a single batched multi-RHS substitution sweep
  and scatters the columns back to batch positions.

The factor cache (:class:`~repro.query.cache.FactorCache`) outlives a
single batch: a second batch over the same snapshots costs zero
factorizations, and sequence-level solvers
(:meth:`repro.core.solver.EMSSolver.seed_planner`) pre-seed it with their
decompositions so measure series ride on already-computed factors.  Every
numerical path is the same batched kernel stack used everywhere else, so
planner answers are bitwise identical to the legacy per-measure drivers.

An answer-level :class:`~repro.query.cache.ResultCache` keyed by
``(SystemKey, rhs fingerprint)`` short-circuits repeated identical queries
before the substitution sweep, with invalidation driven by the factor
cache; approximate serves are audited per group as
:class:`~repro.query.resolution.ApproximationRecord` entries in the
:class:`BatchResult`.

This module historically also housed the caches and the miss-resolution
machinery; they now live in :mod:`repro.query.cache` and
:mod:`repro.query.resolution`, and every historical name is re-exported
here unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import MeasureError
from repro.exec.executors import Executor
from repro.graphs.snapshot import GraphSnapshot
from repro.query.batch import QueryBatch
from repro.query.cache import (  # noqa: F401  (historical import surface)
    DEFAULT_REFRESH_THRESHOLD,
    DEFAULT_RESULT_CACHE_SIZE,
    FactorCache,
    ResultCache,
    ResultKey,
    _apply_entry_delta,
)
from repro.query.resolution import (  # noqa: F401  (historical import surface)
    ApproximationRecord,
    CandidateScan,
    ColdTier,
    CorrectedReuseTier,
    HitTier,
    RefreshTier,
    Resolution,
    ResolutionContext,
    ResolutionLadder,
    ResolutionTier,
    StoreRestoreTier,
    VerbatimReuseTier,
)
from repro.query.spec import (
    FactorizedSystem,
    MeasureSpec,
    Query,
    SystemKey,
    canonical_params,
    get_spec,
    system_key,
)

if TYPE_CHECKING:  # runtime import is lazy: repro.policy sits above the
    # core package, whose solver module imports this one (see
    # QueryPlanner.__init__).
    from repro.policy import ReusePolicy
    from repro.store.factorstore import FactorStore


@dataclasses.dataclass(frozen=True)
class PlannedGroup:
    """All queries of one batch that share one system matrix."""

    key: SystemKey
    positions: Tuple[int, ...]
    queries: Tuple[Query, ...]

    @property
    def size(self) -> int:
        """Number of queries in the group (the batched-solve width)."""
        return len(self.queries)


@dataclasses.dataclass(frozen=True)
class DirectAnswer:
    """A query answered in closed form by its spec's shortcut."""

    position: int
    query: Query
    answer: np.ndarray


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """The grouped form of one batch: factor groups plus direct answers."""

    batch: QueryBatch
    groups: Tuple[PlannedGroup, ...]
    direct: Tuple[DirectAnswer, ...]

    @property
    def group_count(self) -> int:
        """Number of distinct system matrices the batch needs."""
        return len(self.groups)

    def __len__(self) -> int:
        return len(self.batch)


@dataclasses.dataclass(frozen=True)
class PlannerStats:
    """What one :meth:`QueryPlanner.execute` run cost.

    ``resolutions`` maps every resolution-tier name to the number of
    planned groups that tier served — one uniform surface for the whole
    ladder, shape-stable across batches (every tier appears, zeros
    included).  With the default ladder the keys are ``"hit"``,
    ``"store_restore"``, ``"verbatim_reuse"``, ``"corrected_reuse"``,
    ``"refresh"`` and ``"cold"``.

    The historical counters are derived views of that mapping:
    ``factorizations`` (the acceptance-criteria counter — at most one cold
    factorization per distinct system matrix, ever) is the ``"cold"``
    count; ``cache_hits`` sums ``"hit"`` and ``"store_restore"`` (a
    store-backed cache restoring from disk has always reported as a cache
    hit); ``refreshes`` counts miss groups answered by Bennett-updating a
    cached parent's factors; ``qc_reuses`` counts miss groups answered
    *from another system's factors unchanged* under an approximate policy
    (no numerical work at all); ``corrected_reuses`` counts miss groups
    answered through a rank-``k`` Sherman–Morrison–Woodbury correction of
    a cached system (including rank-0 cross-damping sharing).
    ``result_hits`` counts individual queries answered straight from the
    result cache without a substitution sweep.
    """

    queries: int
    groups: int
    direct_answers: int
    result_hits: int = 0
    resolutions: Mapping[str, int] = dataclasses.field(default_factory=dict)

    @property
    def factorizations(self) -> int:
        """Groups served by a cold factorization (the ``"cold"`` tier)."""
        return self.resolutions.get("cold", 0)

    @property
    def cache_hits(self) -> int:
        """Groups served from cached factors (``"hit"`` + ``"store_restore"``)."""
        return self.resolutions.get("hit", 0) + self.resolutions.get(
            "store_restore", 0
        )

    @property
    def refreshes(self) -> int:
        """Groups served by Bennett delta refresh (the ``"refresh"`` tier)."""
        return self.resolutions.get("refresh", 0)

    @property
    def qc_reuses(self) -> int:
        """Groups served by verbatim policy reuse (the ``"verbatim_reuse"`` tier)."""
        return self.resolutions.get("verbatim_reuse", 0)

    @property
    def corrected_reuses(self) -> int:
        """Groups served by rank-k SMW correction (the ``"corrected_reuse"`` tier)."""
        return self.resolutions.get("corrected_reuse", 0)


@dataclasses.dataclass
class BatchResult:
    """Positional answers of one batch plus the run's reuse statistics.

    ``approximations`` is the quality audit: one
    :class:`ApproximationRecord` per group answered from a similar system's
    factors under the planner's reuse policy, carrying the similarity score
    and the certified loss estimate.  Empty under an exact policy — every
    answer is then bitwise what a policy-less planner produces.
    """

    results: List[np.ndarray]
    stats: PlannerStats
    approximations: Tuple[ApproximationRecord, ...] = ()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.results[index]

    @property
    def max_loss_estimate(self) -> float:
        """Largest certified loss estimate in the batch (0.0 if none)."""
        if not self.approximations:
            return 0.0
        return max(record.loss_estimate for record in self.approximations)

    def loss_estimates(self) -> Tuple[float, ...]:
        """Certified loss estimate of every approximate *query* in the batch.

        One value per approximated batch position (a group's estimate covers
        each of its queries), so the tuple is the per-answer loss
        distribution — empty when nothing was approximated.
        """
        return tuple(
            record.loss_estimate
            for record in self.approximations
            for _ in record.positions
        )

    def loss_estimate_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the per-query loss distribution.

        ``fraction`` in ``[0, 1]`` (``0.5`` = p50, ``0.99`` = p99); returns
        ``0.0`` when the batch carries no approximations, and the maximum at
        ``fraction=1.0``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise MeasureError(
                f"percentile fraction must lie in [0, 1], got {fraction}"
            )
        estimates = sorted(self.loss_estimates())
        if not estimates:
            return 0.0
        rank = max(1, int(np.ceil(fraction * len(estimates))))
        return estimates[rank - 1]

    def approximate_positions(self) -> Tuple[int, ...]:
        """Sorted batch positions whose answers are policy approximations."""
        return tuple(sorted(
            position
            for record in self.approximations
            for position in record.positions
        ))


def plan_batch(batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
    """Group a batch by system key (first-appearance order, stable).

    A pure function of the batch — no planner state is consulted — so the
    sharded front-end plans with exactly the grouping the serial planner
    would produce.  Every query lands in exactly one group or one direct
    answer; the group count equals the number of distinct system matrices
    among the non-shortcut queries.
    """
    if not isinstance(batch, QueryBatch):
        batch = QueryBatch(batch)
    order: List[SystemKey] = []
    grouped: Dict[SystemKey, List[int]] = {}
    direct: List[DirectAnswer] = []
    for position, query in enumerate(batch):
        spec = get_spec(query.measure)
        if spec.shortcut is not None:
            answer = spec.shortcut(query.snapshot, query.damping, query.param_dict)
            if answer is not None:
                direct.append(DirectAnswer(position, query, answer))
                continue
        key = system_key(query)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(position)
    groups = tuple(
        PlannedGroup(
            key=key,
            positions=tuple(grouped[key]),
            queries=tuple(batch[p] for p in grouped[key]),
        )
        for key in order
    )
    return QueryPlan(batch=batch, groups=groups, direct=tuple(direct))


class QueryPlanner:
    """Group queries by shared system matrix; factorize once per group.

    A miss group is answered by the cheapest admissible source — the
    **resolution ladder** (:class:`~repro.query.resolution.
    ResolutionLadder`), each tier falling through to the next:

    1. **Hit** (:class:`~repro.query.resolution.HitTier`) — the key's own
       factors are cached in memory.
    2. **Store restore** (:class:`~repro.query.resolution.
       StoreRestoreTier`) — a store-backed cache restores the factors from
       disk (transparently: historically part of the cache hit).
    3. **Verbatim reuse** (:class:`~repro.query.resolution.
       VerbatimReuseTier`) — an approximate :class:`~repro.policy.base.
       ReusePolicy` (e.g. :class:`~repro.policy.qc.QCPolicy`) licenses
       answering from a cached *similar* system's factors outright: no
       factorization, no refresh, an :class:`ApproximationRecord` in the
       batch result.  Exact policies skip this tier entirely.
    4. **Corrected reuse** (:class:`~repro.query.resolution.
       CorrectedReuseTier`) — a correction-capable policy
       (:class:`~repro.policy.corrected.CorrectedPolicy`) licenses
       answering through a rank-``k`` Sherman–Morrison–Woodbury correction
       of a cached system's factors (:class:`~repro.lu.smw.
       WoodburyCorrector`): the ``k`` dominant columns of ``ΔA`` are applied
       exactly, the *residual* delta is certified, at the cost of ``k``
       extra triangular sweeps once plus a ``k×k`` dense solve per batch.
       The candidate scan also covers **cross-damping** sharing: a cached
       system over the *same snapshot* at a different damping factor, whose
       delta ``(d' - d)·M`` the same machinery bounds.
    5. **Delta refresh** (:class:`~repro.query.resolution.RefreshTier`) —
       a registered lineage (or, with ``auto_refresh``, the nearest cached
       same-shape snapshot) Bennett-updates a clone of the parent's
       factors: near-exact, cheaper than cold.
    6. **Cold factorization** (:class:`~repro.query.resolution.ColdTier`)
       — Markowitz + Crout, dispatched as executor work units.

    Verbatim reuse outranks corrected reuse because it does zero numerical
    work; corrected reuse outranks refresh because its setup cost is ``k``
    sweeps instead of a full Bennett pass over the delta, and the policy
    explicitly certifies the accepted loss; refresh outranks cold because it
    is near-exact and cheaper.  Groups answered at tiers 1–5 never reach the
    FACTOR unit fan-out; groups answered at tiers 3–4 skip the REFRESH units
    as well.

    Parameters
    ----------
    executor:
        How cache-miss factorizations are scheduled: ``None`` (default) runs
        them serially in-process; an ``int`` or an
        :class:`~repro.exec.executors.Executor` fans independent factor
        groups out exactly like the sequence-decomposition work units.
        Results are bitwise identical regardless of the executor.
    cache:
        An existing :class:`FactorCache` to share or pre-seed; a fresh one is
        created when omitted.
    auto_refresh:
        When true, a cache-miss snapshot with no registered lineage scans the
        cached keys for a same-``(kind, damping)`` snapshot of the same size
        and delta-refreshes from the nearest one (smallest
        :class:`~repro.graphs.delta.GraphDelta`).  Off by default: refreshed
        factors answer within numerical tolerance but not bitwise-identically
        to a cold factorization, so refresh must be opted into — either
        through this flag or per-evolution via :meth:`register_evolution`.
    policy:
        The reuse policy for the verbatim/corrected tiers.  ``None``
        (default) resolves to :class:`~repro.policy.exact.ExactPolicy`,
        under which the planner's output is bitwise identical to the
        historical planner.  An approximate policy must be opted into
        explicitly — its answers are *approximations*, audited per group in
        :attr:`BatchResult.approximations`.
    result_cache:
        The answer-level cache for repeated identical queries: ``None``
        (default) creates a :class:`ResultCache` bounded at
        ``DEFAULT_RESULT_CACHE_SIZE``; an ``int`` bounds a fresh cache at
        that many entries (``0`` disables result caching); ``True`` /
        ``False`` mean default / disabled; a :class:`ResultCache` instance
        is used as given.  Cached answers are value-copies, so result
        caching never changes observable answers.
    store:
        Convenience for the common warm-boot construction: a
        :class:`~repro.store.factorstore.FactorStore` to build the
        planner's :class:`FactorCache` around (spill on eviction, consult
        on miss, :meth:`checkpoint`).  Mutually exclusive with ``cache`` —
        when sharing an existing cache, attach the store to it directly
        via ``FactorCache(store=...)``.
    ladder:
        The :class:`~repro.query.resolution.ResolutionLadder` to walk;
        ``None`` (default) builds the standard six-tier ladder above.  A
        ladder belongs to one planner (its tiers' scan memos are cleared
        through this planner's cache listeners) — build a fresh one per
        planner rather than sharing.
    """

    def __init__(
        self,
        executor: Union[Executor, int, None] = None,
        cache: Optional[FactorCache] = None,
        auto_refresh: bool = False,
        policy: Optional["ReusePolicy"] = None,
        result_cache: Union[ResultCache, int, None] = None,
        store: Optional["FactorStore"] = None,
        ladder: Optional[ResolutionLadder] = None,
    ) -> None:
        # Imported here, not at module level: repro.policy sits above the
        # core package, whose solver module imports this one.
        from repro.policy import ExactPolicy, ReusePolicy

        if policy is None:
            policy = ExactPolicy()
        elif not isinstance(policy, ReusePolicy):
            raise MeasureError(
                f"policy must be a ReusePolicy, got {type(policy).__name__}"
            )
        if store is not None and cache is not None:
            raise MeasureError(
                "pass either cache= or store=: to combine a shared cache "
                "with a disk tier, construct it as FactorCache(store=...)"
            )
        self._executor = executor
        if cache is not None:
            self._cache = cache
        else:
            self._cache = FactorCache(store=store)
        self._auto_refresh = bool(auto_refresh)
        self._policy = policy
        self._ladder = ladder if ladder is not None else ResolutionLadder()
        if result_cache is None:
            self._results: Optional[ResultCache] = ResultCache()
        elif isinstance(result_cache, bool):
            # bools are ints: True would otherwise build a degenerate
            # 1-entry cache.  Honor the evident intent instead.
            self._results = ResultCache() if result_cache else None
        elif isinstance(result_cache, int):
            if result_cache < 0:
                raise MeasureError(
                    f"result_cache bound must be >= 0 (0 disables), got {result_cache}"
                )
            self._results = ResultCache(result_cache) if result_cache > 0 else None
        else:
            self._results = result_cache
        self._cache.add_invalidation_listener(self._on_factor_invalidation)
        self._cache.add_eviction_listener(self._on_factor_eviction)
        #: new system identity -> (old system identity, old snapshot, new snapshot)
        self._lineage: Dict[
            Hashable, Tuple[Hashable, GraphSnapshot, GraphSnapshot]
        ] = {}
        #: non-snapshot system identities (sequence tokens) -> their snapshot,
        #: so policy reuse can score cached systems whose key is a token.
        self._snapshots: Dict[Hashable, GraphSnapshot] = {}

    def _clear_scan_memos(self) -> None:
        self._ladder.clear_memos()

    def _on_factor_invalidation(self, key: SystemKey) -> None:
        """React to a factor-cache change: drop derived answers, stale scans.

        Registered as a (weakly held) invalidation listener: any install,
        eviction or steal changes the candidate set the reuse tiers scan,
        so their scan memos are discarded wholesale (the corrected tier's
        memo also holds correctors built over possibly-departed factors),
        and the result cache drops the answers derived from the affected
        key.
        """
        if self._results is not None:
            self._results.invalidate_system(key)
        self._clear_scan_memos()

    def _on_factor_eviction(self, key: SystemKey) -> None:
        """React to a key leaving the factor cache: prune dead bookkeeping.

        The lineage registry maps a child system to its refresh parent; an
        entry is only actionable while some cached key still carries the
        parent's system (the refresh tier otherwise falls back cold).  So
        once the *last* cached key of a system is evicted, every lineage
        entry naming it as parent — and its snapshot binding — is dropped.
        This is what bounds the registries of a long-lived server admitting
        updates forever against a size-bounded factor cache: lineage tracks
        the cache's working set instead of the whole evolution history.
        """
        system = key.system
        if any(cached.system == system for cached in self._cache.keys()):
            return
        if any(parent == system for parent, _, _ in self._lineage.values()):
            self._lineage = {
                child: entry
                for child, entry in self._lineage.items()
                if entry[0] != system
            }
        self._snapshots.pop(system, None)

    @property
    def cache(self) -> FactorCache:
        """The planner's factor cache (shared, seedable, inspectable)."""
        return self._cache

    @property
    def policy(self) -> "ReusePolicy":
        """The reuse policy gating approximate answers (the reuse tiers)."""
        return self._policy

    @property
    def ladder(self) -> ResolutionLadder:
        """The resolution ladder miss groups walk, in precedence order."""
        return self._ladder

    @property
    def result_cache(self) -> Optional[ResultCache]:
        """The answer-level cache, or ``None`` when disabled."""
        return self._results

    def checkpoint(self) -> int:
        """Flush the factor cache's working set to its store (spill count).

        See :meth:`FactorCache.checkpoint`; raises
        :class:`~repro.errors.MeasureError` when the cache has no store.
        """
        return self._cache.checkpoint()

    def cache_info(self) -> Dict[str, int]:
        """Lifetime counters of the factor cache plus the result cache.

        Factor-cache counters keep their historical names; result-cache
        counters are prefixed ``result_`` (all zero when result caching is
        disabled).
        """
        info = self._cache.cache_info()
        result_info = (
            self._results.cache_info()
            if self._results is not None
            else {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0, "size": 0}
        )
        info.update({f"result_{name}": value for name, value in result_info.items()})
        return info

    def bind_snapshot(self, system: Hashable, snapshot: GraphSnapshot) -> None:
        """Declare which snapshot a token-keyed system identity describes.

        Sequence-level planners key their seeded factors by index token, not
        by snapshot; binding the token lets the reuse policy score those
        systems as candidates for answering similar snapshots.  Snapshot
        identities need no binding (they carry their own graph).
        """
        if not isinstance(snapshot, GraphSnapshot):
            raise MeasureError("bind_snapshot takes the system's GraphSnapshot")
        if isinstance(system, GraphSnapshot):
            return
        self._snapshots[system] = snapshot
        # A new binding can make a candidate scoreable: stale negative scans
        # must not outlive it.
        self._clear_scan_memos()

    def _prune_stale_bindings(self) -> None:
        """Drop snapshot bindings no cached key can use any more.

        A long-lived planner over an evolving chain accumulates bindings
        (each holding a full edge set) while a bounded factor cache keeps
        only the recent keys; once the binding map clearly outgrows the
        cache, everything not backed by a cached key's system is swept.  The
        sweep only ever disables *candidate scoring* for systems that would
        need re-seeding anyway — lineage refresh keeps its own snapshots and
        is unaffected.
        """
        if len(self._snapshots) <= max(32, 2 * len(self._cache)):
            return
        live = {key.system for key in self._cache.keys()}
        self._snapshots = {
            system: snapshot
            for system, snapshot in self._snapshots.items()
            if system in live
        }

    def register_evolution(
        self,
        old: GraphSnapshot,
        new: GraphSnapshot,
        old_system: Optional[Hashable] = None,
        new_system: Optional[Hashable] = None,
    ) -> None:
        """Declare that snapshot ``new`` evolved from snapshot ``old``.

        A later cache miss for ``new`` (any kind-based system key) will try
        to Bennett-refresh the system cached for ``old`` instead of
        factorizing from scratch.  ``old_system`` / ``new_system`` override
        the :class:`~repro.query.spec.SystemKey` identities when they differ
        from the snapshots themselves — e.g. an
        :class:`~repro.core.solver.EMSSolver` index token for factors seeded
        from a sequence decomposition.  Registering a lineage is the per-pair
        opt-in to refresh (answers match a cold factorization within
        numerical tolerance, not bitwise).

        Lineage entries live for the planner's lifetime (each holds both
        snapshots), so register per-pair evolutions judiciously on long-lived
        planners — for an unboundedly evolving stream prefer
        ``auto_refresh`` or a :class:`~repro.policy.qc.QCPolicy`, which need
        no per-pair state.
        """
        if not isinstance(old, GraphSnapshot) or not isinstance(new, GraphSnapshot):
            raise MeasureError(
                "register_evolution takes two GraphSnapshots (the delta is "
                "computed from their edge sets)"
            )
        if old.n != new.n:
            raise MeasureError(
                f"evolution must preserve the node count: {old.n} vs {new.n}"
            )
        self._lineage[new_system if new_system is not None else new] = (
            old_system if old_system is not None else old,
            old,
            new,
        )
        # Lineage doubles as a snapshot binding for token identities, so the
        # reuse policy can score either end as a candidate.
        if old_system is not None:
            self.bind_snapshot(old_system, old)
        if new_system is not None:
            self.bind_snapshot(new_system, new)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
        """Group a batch by system key (first-appearance order, stable).

        Every query lands in exactly one group or one direct answer; the
        group count equals the number of distinct system matrices among the
        non-shortcut queries.
        """
        return plan_batch(batch)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _resolution_context(self) -> ResolutionContext:
        """Bundle the collaborators the ladder's tiers consult."""
        return ResolutionContext(
            cache=self._cache,
            policy=self._policy,
            executor=self._executor,
            auto_refresh=self._auto_refresh,
            lineage=self._lineage,
            snapshot_of=self._snapshot_of,
        )

    def execute(self, plan: QueryPlan) -> BatchResult:
        """Run a plan down the resolution ladder, then batch-solve.

        Every group is served by the first tier that can: cached factors
        (memory or store), policy reuse (approximate policies only),
        rank-``k`` correction, lineage refresh — everything else (no
        candidate, gates failed, oversized delta, pattern violation, pivot
        breakdown) cold-factorizes exactly as before.  The per-tier serve
        counts land in :attr:`PlannerStats.resolutions` under the tier
        names.
        """
        self._prune_stale_bindings()
        resolved, resolutions, records = self._ladder.resolve(
            plan.groups, self._resolution_context()
        )
        results: List[Optional[np.ndarray]] = [None] * len(plan.batch)
        result_hits = 0
        for group in plan.groups:
            resolution = resolved[group.key]
            result_hits += self._answer_group(
                group,
                resolution.solver,
                results,
                cache_base=resolution.cache_base,
                approximate=resolution.approximate,
            )
        for direct in plan.direct:
            # Copy: the plan may be executed again, and callers own their
            # result arrays (the group path allocates fresh columns too).
            results[direct.position] = direct.answer.copy()
        stats = PlannerStats(
            queries=len(plan.batch),
            groups=len(plan.groups),
            direct_answers=len(plan.direct),
            result_hits=result_hits,
            resolutions=resolutions,
        )
        return BatchResult(
            results=list(results),
            stats=stats,
            approximations=tuple(records),
        )

    def run(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchResult:
        """Plan and execute a batch in one call."""
        return self.execute(self.plan(batch))

    # ------------------------------------------------------------------ #
    # Group answering (vectorized RHS assembly + result cache)
    # ------------------------------------------------------------------ #
    def _assemble_rhs_block(self, group: PlannedGroup) -> np.ndarray:
        """Build the group's ``(n, k)`` RHS block, vectorized where possible.

        Consecutive queries of the same measure against the same snapshot
        form a *run*; runs whose spec declares ``build_rhs_block`` are
        assembled in one vectorized call (bitwise-equal per column to the
        scalar builder, by the spec contract), everything else falls back to
        per-query ``build_rhs``.  The group's damping is constant (it is part
        of the system key).
        """
        queries = group.queries
        block = np.empty((queries[0].snapshot.n, len(queries)), dtype=float)
        start = 0
        while start < len(queries):
            head = queries[start]
            spec = get_spec(head.measure)
            stop = start + 1
            while (
                stop < len(queries)
                and queries[stop].measure == head.measure
                and (
                    queries[stop].snapshot is head.snapshot
                    or queries[stop].snapshot == head.snapshot
                )
            ):
                stop += 1
            if spec.build_rhs_block is not None and stop - start > 1:
                block[:, start:stop] = spec.build_rhs_block(
                    head.snapshot,
                    head.damping,
                    [query.param_dict for query in queries[start:stop]],
                )
            else:
                for column in range(start, stop):
                    query = queries[column]
                    block[:, column] = spec.build_rhs(
                        query.snapshot, query.damping, query.param_dict
                    )
            start = stop
        return block

    @staticmethod
    def _result_key(
        group_key: SystemKey, spec: MeasureSpec, query: Query, rhs: np.ndarray
    ) -> ResultKey:
        """Key one finalized answer: system + finalize identity + RHS digest.

        Specs without a transform or normalization return the raw solution —
        a pure function of ``(system, rhs)`` — so their answers are shared
        across measures.  Transforming/normalizing specs add their name and
        parameters to the key — in *canonical* spelling
        (:func:`~repro.query.spec.canonical_params`), so a query built from
        an ``np.int64`` node id or a ``frozenset`` seed set shares one entry
        with its plain-``int`` / ``tuple`` twin instead of cold-missing.
        (:func:`~repro.query.spec.make_query` already canonicalizes; this
        covers :class:`Query` objects assembled from raw tuples directly.)
        """
        fingerprint = hashlib.blake2b(rhs.tobytes(), digest_size=16).digest()
        if spec.transform is None and not spec.normalize:
            return (group_key, None, fingerprint)
        return (group_key, (spec.name, canonical_params(query.params)), fingerprint)

    def _answer_group(
        self,
        group: PlannedGroup,
        system: FactorizedSystem,
        results: List[Optional[np.ndarray]],
        cache_base: Optional[SystemKey],
        approximate: bool,
    ) -> int:
        """Answer one group into ``results``; return the result-cache hits.

        Queries whose finalized answer is already in the result cache skip
        the solve; the rest share one batched substitution sweep (solving a
        column subset is bitwise identical to solving the full block — the
        batched kernels treat columns independently).

        ``cache_base`` is the system key answers are cached under: the
        group's own key normally, the *parent's* key for policy-reused
        (``approximate``) groups — a pure spec's answer from the parent's
        factors is, byte for byte, the parent's own answer for that RHS, so
        the entries are shared with the parent's exact traffic and repeated
        approximate batches skip the solve.  ``None`` disables result
        caching for the group: rank-``k`` corrected answers come from an
        ephemeral corrector, not from any cached system's factors, so no
        cached key may own them.  Specs with a transform or normalization
        bypass the cache in approximate groups (their finalize step may read
        the query's own snapshot).  Stores require the base key's factors to
        still be cached — a bounded factor cache may have evicted them
        mid-batch, and an entry stored after its key's invalidation event
        would outlive its factors.
        """
        block = self._assemble_rhs_block(group)
        answers: Dict[int, np.ndarray] = {}
        keys: List[Optional[ResultKey]] = [None] * group.size
        pending: List[int] = []
        hits = 0
        if self._results is not None and cache_base is not None:
            for column, query in enumerate(group.queries):
                spec = get_spec(query.measure)
                if approximate and (spec.transform is not None or spec.normalize):
                    pending.append(column)
                    continue
                key = self._result_key(cache_base, spec, query, block[:, column])
                keys[column] = key
                cached = self._results.lookup(key)
                if cached is None:
                    pending.append(column)
                else:
                    answers[column] = cached
                    hits += 1
        else:
            pending = list(range(group.size))
        if pending:
            storable = (
                self._results is not None
                and cache_base is not None
                and cache_base in self._cache
            )
            sub_block = block if len(pending) == group.size else block[:, pending]
            solutions = system.solve_many(sub_block)
            for offset, column in enumerate(pending):
                query = group.queries[column]
                spec = get_spec(query.measure)
                answer = spec.finalize(
                    solutions[:, offset], query.snapshot, query.damping,
                    query.param_dict,
                )
                answers[column] = answer
                if storable and keys[column] is not None:
                    self._results.store(keys[column], answer)
        for column, position in enumerate(group.positions):
            results[position] = answers[column]
        return hits

    def _snapshot_of(self, key: SystemKey) -> Optional[GraphSnapshot]:
        """The graph a cached key's system was composed from, if known."""
        if isinstance(key.system, GraphSnapshot):
            return key.system
        return self._snapshots.get(key.system)
