"""The declarative measure IR: specs, queries and the generic solve engine.

Every measure in the paper is the same recipe instantiated differently
(Section 1): compose a system matrix ``A`` from the snapshot, build a
measure-specific right-hand side ``b``, solve ``A x = b`` through the cached
LU factors, and optionally post-process ``x``.  A :class:`MeasureSpec`
captures one such instantiation *declaratively* — matrix kind (or a custom
matrix builder), RHS builder, post-transform, normalization flag and an
optional closed-form shortcut — so the per-measure driver modules in
:mod:`repro.measures` collapse into thin wrappers over one generic engine
(:func:`evaluate` / :func:`evaluate_block`) and the query planner can reason
about *which queries share a factorization* without knowing anything about
individual measures.

The sharing boundary is the :class:`SystemKey`: two queries whose keys
compare equal are answered by the same ``(ordering, factors)`` pair, computed
once.  For ad-hoc queries the key embeds the snapshot itself (snapshots hash
by content, so content-equal snapshots deduplicate); sequence-level callers
(:class:`~repro.core.solver.EMSSolver`) override it with an index token so
their per-index factors are reused exactly as stored.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, MeasureError
from repro.graphs.matrixkind import (
    DEFAULT_DAMPING,
    MatrixKind,
    hitting_time_matrix,
    measure_matrix,
    row_stochastic_matrix,
    validate_damping,
)
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.lu.solve import solve_reordered_system, solve_reordered_system_many
from repro.sparse.csr import SparseMatrix
from repro.sparse.permutation import Ordering
from repro.sparse.vector import seed_vector, unit_vector

#: ``(snapshot, damping, params) -> b`` — the measure's right-hand side.
RhsBuilder = Callable[[GraphSnapshot, float, Mapping[str, object]], np.ndarray]

#: ``(snapshot, damping, params_list) -> B`` — a whole ``(n, k)`` RHS block at
#: once.  Column ``c`` must be bitwise identical to ``build_rhs`` of the
#: ``c``-th parameter set; the planner uses it to assemble large warm-path
#: batches without a per-query Python loop.
RhsBlockBuilder = Callable[
    [GraphSnapshot, float, Sequence[Mapping[str, object]]], np.ndarray
]

#: ``(snapshot, damping, params) -> A`` — overrides the kind-based composition.
MatrixBuilder = Callable[[GraphSnapshot, float, Mapping[str, object]], SparseMatrix]

#: ``(x, snapshot, damping, params) -> y`` — post-solve transform.
Transform = Callable[[np.ndarray, GraphSnapshot, float, Mapping[str, object]], np.ndarray]

#: ``(snapshot, damping, params) -> answer or None`` — closed-form shortcut.
Shortcut = Callable[[GraphSnapshot, float, Mapping[str, object]], Optional[np.ndarray]]


@dataclasses.dataclass(frozen=True)
class MeasureSpec:
    """Declarative description of one measure as an ``A x = b`` instance.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"rwr"``); also the ``measure`` field of queries.
    kind:
        Base matrix composition.  Part of every query's :class:`SystemKey`,
        so measures with equal ``(snapshot, kind, damping)`` share factors.
    build_rhs:
        Builds the right-hand side from ``(snapshot, damping, params)``.
    build_rhs_block:
        Optional vectorized builder assembling the whole ``(n, k)`` RHS block
        of ``k`` same-snapshot queries at once.  Contract: column ``c`` is
        bitwise identical to ``build_rhs`` of the ``c``-th parameter set.
        The planner falls back to per-query ``build_rhs`` when absent.
    required_params:
        Parameter names a query must supply; :func:`make_query` validates
        them eagerly with a descriptive error instead of letting a missing
        parameter surface as a ``KeyError`` mid-execute (matrix parameters
        are additionally enforced at system-key time).
    matrix_params:
        Names of query parameters that select the *matrix* (not just the
        RHS), e.g. the hitting-time target.  They become part of the system
        key, so queries differing in them never share a factorization.
    build_matrix:
        Optional custom system-matrix builder; ``None`` uses
        :func:`~repro.graphs.matrixkind.measure_matrix` with :attr:`kind`.
    transform:
        Optional post-solve transform applied to the raw solution.
    normalize:
        When true, the (possibly transformed) solution is rescaled to sum to
        one (all-zero vectors are left untouched).
    shortcut:
        Optional closed-form answer for degenerate inputs (e.g. SALSA on an
        edgeless graph); a non-``None`` return is the final result and no
        factorization happens.
    description:
        One-line human description.
    """

    name: str
    kind: MatrixKind
    build_rhs: RhsBuilder
    build_rhs_block: Optional[RhsBlockBuilder] = None
    required_params: Tuple[str, ...] = ()
    matrix_params: Tuple[str, ...] = ()
    build_matrix: Optional[MatrixBuilder] = None
    transform: Optional[Transform] = None
    normalize: bool = False
    shortcut: Optional[Shortcut] = None
    description: str = ""

    def system_matrix(
        self, snapshot: GraphSnapshot, damping: float, params: Mapping[str, object]
    ) -> SparseMatrix:
        """Compose the system matrix ``A`` for one query."""
        if self.build_matrix is not None:
            return self.build_matrix(snapshot, damping, params)
        return measure_matrix(snapshot, kind=self.kind, damping=damping)

    def matrix_param_key(
        self, params: Mapping[str, object]
    ) -> Tuple[Tuple[str, Hashable], ...]:
        """Freeze the matrix-selecting parameters into a hashable key part."""
        try:
            return tuple((name, params[name]) for name in self.matrix_params)
        except KeyError as missing:
            raise MeasureError(
                f"measure {self.name!r} requires parameter {missing.args[0]!r}"
            ) from None

    def finalize(
        self,
        x: np.ndarray,
        snapshot: GraphSnapshot,
        damping: float,
        params: Mapping[str, object],
    ) -> np.ndarray:
        """Apply the post-transform and normalization to a raw solution."""
        if self.transform is not None:
            x = self.transform(x, snapshot, damping, params)
        if self.normalize:
            total = float(np.sum(x))
            if total != 0.0:
                x = x / total
        return x


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, MeasureSpec] = {}


def register_spec(spec: MeasureSpec, replace: bool = False) -> MeasureSpec:
    """Register a measure spec under its name (refusing silent redefinition)."""
    if not replace and spec.name in _REGISTRY:
        raise MeasureError(f"measure spec {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> MeasureSpec:
    """Look up a registered spec, with a helpful error for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MeasureError(
            f"unknown measure {name!r}; registered: {', '.join(registered_measures())}"
        ) from None


def unregister_spec(name: str) -> None:
    """Remove a registered spec (used by tests and plugin-style extensions)."""
    if name not in _REGISTRY:
        raise MeasureError(f"measure spec {name!r} is not registered")
    del _REGISTRY[name]


def registered_measures() -> Tuple[str, ...]:
    """Return the sorted names of all registered measure specs."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------- #
# Queries and system identity
# ---------------------------------------------------------------------- #
Params = Tuple[Tuple[str, object], ...]


def _canonical_value(value: object) -> object:
    """Map one parameter value to its canonical hashable spelling.

    Serving traffic spells the same parameter many ways — ``np.int64`` node
    ids out of array indexing, seed sets as ``list`` / ``tuple`` / ``set`` /
    ``frozenset`` / ``np.ndarray`` — and every spelling must behave as one
    value: NumPy scalars collapse to Python scalars, ordered collections
    become tuples of canonical elements (caller order preserved — PPR seed
    order matches the legacy RHS accumulation), and *unordered* collections
    become **sorted** tuples, since their iteration order is an accident of
    hashing, not information.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (set, frozenset)):
        canonical = tuple(_canonical_value(item) for item in value)
        try:
            return tuple(sorted(canonical))
        except TypeError:  # mixed uncomparable types: any fixed order will do
            return tuple(sorted(canonical, key=repr))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(item) for item in value)
    if isinstance(value, np.ndarray):
        return tuple(_canonical_value(item) for item in value.tolist())
    return value


def _freeze_params(params: Mapping[str, object]) -> Params:
    """Freeze a params mapping into canonical, hashable form.

    Values are canonicalized (see :func:`_canonical_value`), so two queries
    whose parameters differ only in spelling — ``list`` vs ``tuple`` vs
    ``np.ndarray`` seed collections, ``int`` vs ``np.int64`` node ids —
    compare equal, share a :class:`SystemKey` and share result-cache
    entries.  Ordered collections keep their caller order (two queries with
    differently-*ordered* equal seed lists stay distinct Query objects that
    produce equal answers); unordered ones are sorted.
    """
    return tuple((name, _canonical_value(params[name])) for name in sorted(params))


def canonical_params(params: Params) -> Params:
    """Re-canonicalize an already-frozen params tuple.

    Queries built through :func:`make_query` are canonical by construction;
    this is the defensive pass for :class:`Query` objects assembled directly
    from raw tuples (the planner's result-cache key uses it, so equivalent
    spellings never cold-miss even then).
    """
    return tuple((name, _canonical_value(value)) for name, value in params)


def _validate_measure_damping(measure: str, damping: float) -> None:
    """Check a damping factor against the *measure's* matrix-kind domain.

    The admissible domain depends on the kind the measure's spec composes
    with: the walk kinds need ``0 < d < 1``, while ``LAPLACIAN`` measures
    accept the undamped ``d = 0.0`` convention (see
    :func:`~repro.graphs.matrixkind.validate_damping`, the shared gate).
    Unregistered measure names — a :class:`Query` can be constructed before
    its spec is registered — fall back to the strict walk-kind domain,
    which every built-in measure uses.
    """
    spec = _REGISTRY.get(measure)
    if spec is None:
        if not 0.0 < damping < 1.0:
            raise MeasureError(
                f"damping factor must lie in (0, 1), got {damping}"
            )
        return
    validate_damping(spec.kind, damping)


@dataclasses.dataclass(frozen=True)
class Query:
    """One measure evaluation request against one snapshot.

    ``params`` is stored as a sorted tuple of pairs so queries are hashable;
    use :func:`make_query` (or the :class:`~repro.query.batch.QueryBatch`
    helpers) rather than building the tuple by hand.  ``system_token``, when
    set, replaces the snapshot in the :class:`SystemKey` — sequence-level
    planners use it to pin a query to the factors of one EMS index.
    """

    measure: str
    snapshot: GraphSnapshot
    damping: float = DEFAULT_DAMPING
    params: Params = ()
    system_token: Optional[Hashable] = None

    def __post_init__(self) -> None:
        _validate_measure_damping(self.measure, self.damping)

    @property
    def param_dict(self) -> Dict[str, object]:
        """The query parameters as a plain dictionary."""
        return dict(self.params)


def make_query(
    measure: str,
    snapshot: GraphSnapshot,
    damping: float = DEFAULT_DAMPING,
    system_token: Optional[Hashable] = None,
    **params: object,
) -> Query:
    """Build a :class:`Query`, validating measure name and required params eagerly."""
    spec = get_spec(measure)
    for name in spec.required_params:
        if name not in params:
            raise MeasureError(
                f"measure {measure!r} requires parameter {name!r}"
            )
    return Query(
        measure=measure,
        snapshot=snapshot,
        damping=float(damping),
        params=_freeze_params(params),
        system_token=system_token,
    )


@dataclasses.dataclass(frozen=True)
class SystemKey:
    """Identity of one system matrix: queries with equal keys share factors.

    ``matrix_builder`` is the spec's custom ``build_matrix`` callable (or
    ``None`` for the kind-based composition): a spec that overrides the
    matrix must never share factors with one that merely shares its kind.
    """

    system: Hashable
    kind: MatrixKind
    damping: float
    matrix_params: Tuple[Tuple[str, Hashable], ...] = ()
    matrix_builder: Optional[MatrixBuilder] = None

    def digest(self) -> str:
        """A stable 32-hex-digit content digest of this key.

        Built from canonical byte encodings — sorted edge lists for
        snapshot identities, the kind *name*, the raw IEEE-754 bytes of the
        damping factor, ``repr`` of the canonical params tuple and the
        builder's qualified name — never from Python ``hash()``, which is
        salted per process.  Equal keys therefore digest identically across
        interpreter restarts and across processes, which is what both the
        :class:`~repro.store.factorstore.FactorStore` file naming and the
        :mod:`repro.shard` worker routing rely on
        (:func:`~repro.store.factorstore.system_key_digest` delegates here,
        so store checkpoints written before this method existed keep their
        names).
        """
        system = self.system
        if isinstance(system, GraphSnapshot):
            identity: object = (
                "snapshot", system.n, system.directed, tuple(sorted(system.edges))
            )
        else:
            identity = ("token", repr(system))
        canonical = repr((
            identity,
            getattr(self.kind, "name", repr(self.kind)),
            struct.pack("<d", self.damping).hex(),
            repr(tuple(self.matrix_params)),
            _builder_name(self.matrix_builder),
        ))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def _builder_name(builder: Optional[MatrixBuilder]) -> Optional[str]:
    """The content-stable spelling of a custom matrix builder (or ``None``)."""
    if builder is None:
        return None
    return "{}.{}".format(
        getattr(builder, "__module__", "?"),
        getattr(builder, "__qualname__", repr(builder)),
    )


def system_key(query: Query) -> SystemKey:
    """Return the factor-sharing key of a query."""
    spec = get_spec(query.measure)
    return SystemKey(
        system=query.system_token if query.system_token is not None else query.snapshot,
        kind=spec.kind,
        damping=query.damping,
        matrix_params=spec.matrix_param_key(query.param_dict),
        matrix_builder=spec.build_matrix,
    )


# ---------------------------------------------------------------------- #
# Factorized systems and the generic engine
# ---------------------------------------------------------------------- #
class FactorizedSystem:
    """One system matrix with its ordering and Crout factors, ready to solve.

    This is the shared artifact the whole refactor is about: compute it once
    per distinct :class:`SystemKey`, then answer any number of queries by
    substitution (scalar or batched — bitwise identical per column).
    """

    __slots__ = ("_matrix", "_ordering", "_factors")

    def __init__(
        self,
        matrix: SparseMatrix,
        ordering: Optional[Ordering],
        factors: object,
    ) -> None:
        self._matrix = matrix
        self._ordering = ordering
        self._factors = factors

    @classmethod
    def factorize(cls, matrix: SparseMatrix, reorder: bool = True) -> "FactorizedSystem":
        """Markowitz-order (optional) and Crout-decompose a system matrix."""
        if reorder:
            ordering: Optional[Ordering] = markowitz_ordering(matrix)
            factors = crout_decompose(ordering.apply(matrix))
        else:
            ordering = None
            factors = crout_decompose(matrix)
        return cls(matrix, ordering, factors)

    @property
    def matrix(self) -> SparseMatrix:
        """The composed system matrix ``A``."""
        return self._matrix

    @property
    def ordering(self) -> Optional[Ordering]:
        """The ordering applied before decomposition (``None`` = identity)."""
        return self._ordering

    @property
    def factors(self) -> object:
        """The LU factor container of the (reordered) matrix."""
        return self._factors

    def clone(self) -> "FactorizedSystem":
        """Return a copy whose factor container can be mutated independently.

        The matrix and ordering are shared (both immutable); the factors are
        value-copied — this is what a Bennett refresh updates in place while
        the cached original keeps answering queries for its own key.
        """
        return FactorizedSystem(self._matrix, self._ordering, self._factors.copy())

    def solve(self, b) -> np.ndarray:
        """Solve ``A x = b`` using the cached factors."""
        return solve_reordered_system(self._factors, self._ordering, b)

    def solve_many(self, block) -> np.ndarray:
        """Solve ``A X = B`` for an ``(n, k)`` block in one batched sweep."""
        return solve_reordered_system_many(self._factors, self._ordering, block)


def evaluate(query: Query, system=None) -> np.ndarray:
    """Answer one query through the generic engine.

    ``system`` is any object with ``solve`` (e.g. a cached
    :class:`FactorizedSystem` or a
    :class:`~repro.measures.base.SnapshotMeasureSolver`); when omitted the
    system matrix is composed and factorized on the spot.
    """
    spec = get_spec(query.measure)
    params = query.param_dict
    if spec.shortcut is not None:
        direct = spec.shortcut(query.snapshot, query.damping, params)
        if direct is not None:
            return direct
    rhs = spec.build_rhs(query.snapshot, query.damping, params)
    if system is None:
        system = FactorizedSystem.factorize(
            spec.system_matrix(query.snapshot, query.damping, params)
        )
    return spec.finalize(system.solve(rhs), query.snapshot, query.damping, params)


def evaluate_block(
    measure: str,
    snapshot: GraphSnapshot,
    params_list,
    damping: float = DEFAULT_DAMPING,
    system=None,
) -> np.ndarray:
    """Answer many same-matrix queries of one measure in one batched solve.

    ``params_list`` is a sequence of parameter mappings that differ only in
    RHS-selecting parameters (matrix parameters must agree — they are taken
    from the first entry).  Returns an ``(n, k)`` array whose column ``c`` is
    bitwise identical to ``evaluate`` of the ``c``-th parameter set.
    """
    spec = get_spec(measure)
    params_list = [dict(p) for p in params_list]
    validate_damping(spec.kind, damping)
    if not params_list:
        return np.zeros((snapshot.n, 0), dtype=float)
    first_key = spec.matrix_param_key(params_list[0])
    for params in params_list[1:]:
        if spec.matrix_param_key(params) != first_key:
            raise MeasureError(
                f"evaluate_block needs a single system matrix; measure "
                f"{measure!r} queries disagree on matrix parameters"
            )
    block = np.column_stack(
        [spec.build_rhs(snapshot, damping, params) for params in params_list]
    )
    if system is None:
        system = FactorizedSystem.factorize(
            spec.system_matrix(snapshot, damping, params_list[0])
        )
    solutions = system.solve_many(block)
    out = np.empty_like(solutions)
    for column, params in enumerate(params_list):
        out[:, column] = spec.finalize(
            solutions[:, column], snapshot, damping, params
        )
    return out


# ---------------------------------------------------------------------- #
# Canonical right-hand sides (single implementation; the measure driver
# modules re-export these under their historical names)
# ---------------------------------------------------------------------- #
def rwr_rhs(n: int, start_node: int, damping: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the RWR right-hand side ``(1 - d) q_u`` for a start node."""
    return unit_vector(n, start_node, value=1.0 - damping)


def ppr_rhs(n: int, seeds, damping: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the PPR right-hand side ``(1 - d) s`` for a seed set."""
    return seed_vector(n, seeds, total=1.0 - damping)


def uniform_teleport_rhs(n: int, damping: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the uniform teleportation right-hand side ``((1 - d)/n) 1``."""
    return np.full(n, (1.0 - damping) / n, dtype=float)


def hitting_time_rhs(n: int, target: int) -> np.ndarray:
    """Return the DHT right-hand side ``e_target`` (bounds-checked)."""
    if not 0 <= target < n:
        raise MeasureError(f"target node {target} out of bounds for n={n}")
    return unit_vector(n, target, 1.0)


# ---------------------------------------------------------------------- #
# Built-in specs (the five measures of the paper's framework)
# ---------------------------------------------------------------------- #
def _rwr_rhs(snapshot: GraphSnapshot, damping: float, params: Mapping) -> np.ndarray:
    return rwr_rhs(snapshot.n, int(params["start_node"]), damping)


def _ppr_rhs(snapshot: GraphSnapshot, damping: float, params: Mapping) -> np.ndarray:
    return ppr_rhs(snapshot.n, params["seeds"], damping)


def _uniform_teleport_rhs(
    snapshot: GraphSnapshot, damping: float, params: Mapping
) -> np.ndarray:
    return uniform_teleport_rhs(snapshot.n, damping)


def _hitting_rhs(snapshot: GraphSnapshot, damping: float, params: Mapping) -> np.ndarray:
    return hitting_time_rhs(snapshot.n, int(params["target"]))


def _hitting_matrix(
    snapshot: GraphSnapshot, damping: float, params: Mapping
) -> SparseMatrix:
    return hitting_time_matrix(snapshot, int(params["target"]), damping=damping)


# ---------------------------------------------------------------------- #
# Vectorized RHS blocks (bitwise-equal to the scalar builders per column)
# ---------------------------------------------------------------------- #
def _check_indices(
    indices: np.ndarray, n: int, describe: Callable[[int], Exception]
) -> None:
    """Raise ``describe(first_bad_index)`` when any index falls outside [0, n).

    One bounds check shared by every block builder; ``describe`` supplies
    the exception so each column keeps the exact error class and message of
    its scalar builder.
    """
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        bad = int(indices[(indices < 0) | (indices >= n)][0])
        raise describe(bad)


def _rwr_rhs_block(
    snapshot: GraphSnapshot, damping: float, params_list: Sequence[Mapping]
) -> np.ndarray:
    starts = np.fromiter(
        (int(p["start_node"]) for p in params_list),
        dtype=np.int64,
        count=len(params_list),
    )
    _check_indices(starts, snapshot.n, lambda bad: DimensionError(
        f"index {bad} out of bounds for a length-{snapshot.n} vector"
    ))
    block = np.zeros((snapshot.n, len(params_list)), dtype=float)
    block[starts, np.arange(len(params_list))] = 1.0 - damping
    return block


def _ppr_rhs_block(
    snapshot: GraphSnapshot, damping: float, params_list: Sequence[Mapping]
) -> np.ndarray:
    n = snapshot.n
    rows = []
    columns = []
    values = []
    for column, params in enumerate(params_list):
        seeds = [int(s) for s in params["seeds"]]
        if not seeds:
            raise DimensionError("seed set must not be empty")
        # Same accumulated share as seed_vector: repeated seeds add the same
        # float repeatedly, in the same order, so the column stays bitwise
        # identical to the scalar builder.
        share = (1.0 - damping) / len(seeds)
        rows.extend(seeds)
        columns.extend([column] * len(seeds))
        values.extend([share] * len(seeds))
    row_idx = np.asarray(rows, dtype=np.int64)
    _check_indices(row_idx, n, lambda bad: DimensionError(
        f"seed {bad} out of bounds for a length-{n} vector"
    ))
    block = np.zeros((n, len(params_list)), dtype=float)
    np.add.at(block, (row_idx, np.asarray(columns, dtype=np.int64)),
              np.asarray(values, dtype=float))
    return block


def _uniform_teleport_rhs_block(
    snapshot: GraphSnapshot, damping: float, params_list: Sequence[Mapping]
) -> np.ndarray:
    return np.full(
        (snapshot.n, len(params_list)), (1.0 - damping) / snapshot.n, dtype=float
    )


def _hitting_rhs_block(
    snapshot: GraphSnapshot, damping: float, params_list: Sequence[Mapping]
) -> np.ndarray:
    targets = np.fromiter(
        (int(p["target"]) for p in params_list),
        dtype=np.int64,
        count=len(params_list),
    )
    _check_indices(targets, snapshot.n, lambda bad: MeasureError(
        f"target node {bad} out of bounds for n={snapshot.n}"
    ))
    block = np.zeros((snapshot.n, len(params_list)), dtype=float)
    block[targets, np.arange(len(params_list))] = 1.0
    return block


# ---------------------------------------------------------------------- #
# Shared-system hitting time (one factorization serves every target)
# ---------------------------------------------------------------------- #
def _hitting_shared_matrix(
    snapshot: GraphSnapshot, damping: float, params: Mapping
) -> SparseMatrix:
    """The *unmasked* DHT system ``I - d P`` — target independent.

    The per-target masked system is a rank-1 update of this one:
    ``A_t = A + e_t (d p_t)ᵀ`` (masking row ``t`` removes exactly the
    ``-d p_t`` row).  Sherman–Morrison collapses the masked solve to

        ``h = y / y[t]``  with  ``y = A⁻¹ e_t``,

    because row ``t`` of ``A y = e_t`` reads ``y_t - d p_tᵀ y = 1``, i.e.
    ``1 + d p_tᵀ y = y_t`` — precisely the Sherman–Morrison denominator.
    ``y_t >= 1`` always (``A⁻¹ = Σ dᵏ Pᵏ >= 0``), so the division is safe.
    The target therefore moves from the *matrix* to the RHS + transform, and
    every target shares one :class:`SystemKey` — the planner answers ``k``
    targets with one factorization and one batched sweep.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    transition = row_stochastic_matrix(snapshot)
    return SparseMatrix.identity(snapshot.n).subtract(transition.scale(damping))


def _hitting_shared_transform(
    x: np.ndarray, snapshot: GraphSnapshot, damping: float, params: Mapping
) -> np.ndarray:
    target = int(params["target"])
    return x / x[target]


def _salsa_shortcut(
    snapshot: GraphSnapshot, damping: float, params: Mapping
) -> Optional[np.ndarray]:
    if snapshot.edge_count == 0:
        return np.full(snapshot.n, 1.0 / max(snapshot.n, 1))
    return None


register_spec(MeasureSpec(
    name="rwr",
    kind=MatrixKind.RANDOM_WALK,
    build_rhs=_rwr_rhs,
    build_rhs_block=_rwr_rhs_block,
    required_params=("start_node",),
    description="Random Walk with Restart from one start node",
))

register_spec(MeasureSpec(
    name="ppr",
    kind=MatrixKind.RANDOM_WALK,
    build_rhs=_ppr_rhs,
    build_rhs_block=_ppr_rhs_block,
    required_params=("seeds",),
    description="Personalized PageRank for one seed set",
))

register_spec(MeasureSpec(
    name="pagerank",
    kind=MatrixKind.RANDOM_WALK,
    build_rhs=_uniform_teleport_rhs,
    build_rhs_block=_uniform_teleport_rhs_block,
    description="PageRank with uniform teleportation",
))

register_spec(MeasureSpec(
    name="hitting_time",
    kind=MatrixKind.RANDOM_WALK,
    build_rhs=_hitting_rhs,
    build_rhs_block=_hitting_rhs_block,
    required_params=("target",),
    matrix_params=("target",),
    build_matrix=_hitting_matrix,
    description="Discounted hitting time towards one target node",
))

register_spec(MeasureSpec(
    name="hitting_time_shared",
    kind=MatrixKind.RANDOM_WALK,
    build_rhs=_hitting_rhs,
    build_rhs_block=_hitting_rhs_block,
    required_params=("target",),
    build_matrix=_hitting_shared_matrix,
    transform=_hitting_shared_transform,
    description=(
        "Discounted hitting time via the shared unmasked system "
        "(one factorization serves every target)"
    ),
))

register_spec(MeasureSpec(
    name="salsa_authority",
    kind=MatrixKind.SALSA_AUTHORITY,
    build_rhs=_uniform_teleport_rhs,
    build_rhs_block=_uniform_teleport_rhs_block,
    shortcut=_salsa_shortcut,
    description="Damped SALSA authority scores",
))

register_spec(MeasureSpec(
    name="salsa_hub",
    kind=MatrixKind.SALSA_HUB,
    build_rhs=_uniform_teleport_rhs,
    build_rhs_block=_uniform_teleport_rhs_block,
    shortcut=_salsa_shortcut,
    description="Damped SALSA hub scores",
))
