"""`FactorStore`: a content-keyed directory of factor checkpoints.

Each :class:`~repro.query.spec.SystemKey` maps to a stable 32-hex-digit
digest computed from the key's *content* (snapshot edge set, kind, damping
bytes, matrix params) — never from Python's randomized ``hash()`` — so the
same system resolves to the same file across processes and restarts.  A key
owns at most one file:

``<digest>.factors``
    A full checkpoint of the :class:`~repro.query.spec.FactorizedSystem`
    (matrix + ordering + factor container), bitwise round-trip exact.

``<digest>.delta``
    A delta checkpoint for a refresh-produced system: the child's system
    matrix plus the exact Bennett entry delta that produced its factors, in
    the exact order it was applied, referencing the lineage parent's
    checkpoint by key digest *and* payload digest.  The parent may itself
    be a delta checkpoint — an evolving chain persists as one full
    checkpoint at the root plus one small delta per generation.  Restore
    recursively restores the parent (depth-capped), verifies the payload
    digest (the delta was recorded against those exact bits; a restored
    parent re-encodes deterministically, so the digest is comparable at any
    chain depth), clones, and replays
    :func:`~repro.lu.bennett.bennett_update` with its default tolerances —
    reproducing the in-memory child bit for bit.  The factor payload
    (which carries the fill-in) is what dominates a full checkpoint, so a
    delta file is far smaller.

Every restore failure — missing file, torn/corrupt blob
(:class:`~repro.errors.StoreFormatError`), parent payload mismatch, pattern
violation or pivot breakdown during replay — degrades to ``None``: the
caller treats it as a store miss and cold-factorizes, mirroring
:meth:`~repro.query.planner.FactorCache.refresh` fallback semantics.  A bad
checkpoint is never served.
"""

from __future__ import annotations

import collections
import dataclasses
import os
from typing import Dict, Optional, Tuple

from repro.errors import PatternError, SingularMatrixError, StoreError, StoreFormatError
from repro.lu.bennett import bennett_update
from repro.query.spec import FactorizedSystem, SystemKey
from repro.sparse.types import Entries
from repro.store.serialize import (
    blob_digest,
    decode_entries,
    decode_factorized_system,
    decode_matrix,
    encode_entries,
    encode_factorized_system,
    encode_matrix,
    read_blob,
    read_blob_digest,
    write_blob,
)


@dataclasses.dataclass(frozen=True)
class RefreshProvenance:
    """How a refresh-produced system's factors came to be.

    Recorded by :class:`~repro.query.planner.FactorCache` when a refresh
    commits, consumed at spill time to write a delta checkpoint instead of a
    full one.

    Attributes
    ----------
    parent_key:
        The cache key of the lineage parent whose factors were cloned.
    parent_system:
        A strong reference to the parent system *as it was at refresh time*
        — the cache may later evict or replace the key, but the delta is
        only replayable against these exact bits, so they are pinned until
        the child's provenance is dropped (bounding the extra memory to one
        parent generation per refreshed key).
    delta:
        The mapped (reordered) entry delta exactly as applied, in its
        applied iteration order — the planner's refresh units apply it in
        sorted-key order while :meth:`FactorCache.refresh` applies it in
        ``map_entries`` insertion order, and Bennett sweeps are sensitive to
        that order, so the dict preserves whichever order produced the
        factors.
    """

    parent_key: SystemKey
    parent_system: FactorizedSystem
    delta: Entries


def system_key_digest(key: SystemKey) -> str:
    """A stable 32-hex-digit content digest of a :class:`SystemKey`.

    Delegates to :meth:`SystemKey.digest` (the recipe moved there so the
    shard router shares it); the bytes are unchanged, so checkpoints
    written by earlier versions keep their file names.
    """
    return key.digest()


class FactorStore:
    """A directory of checkpointed factorized systems, keyed by content digest.

    Thread-compatibility matches the cache that owns it: calls are expected
    to come from one thread at a time (the planner / serving thread).  Files
    themselves are crash-safe — atomically replaced, checksummed on read.

    Parameters
    ----------
    root:
        Directory for the checkpoint files; created if missing.
    """

    _FULL_SUFFIX = ".factors"
    _DELTA_SUFFIX = ".delta"
    #: Longest delta chain a restore will replay before giving up (a cycle
    #: or absurdly deep lineage in a corrupt store must not recurse forever).
    _MAX_DELTA_DEPTH = 64

    #: Restored chain links kept for reuse by later restores, so walking an
    #: evolving chain key-by-key replays each link once instead of replaying
    #: every prefix (O(chain) instead of O(chain^2)).  Entries are validated
    #: against the backing file's blob digest on every hit, so an
    #: overwritten checkpoint can never serve a stale memo entry.
    _MEMO_CAPACITY = 16

    def __init__(self, root: str) -> None:
        self._root = os.fspath(root)
        os.makedirs(self._root, exist_ok=True)
        self._saved_full = 0
        self._saved_delta = 0
        self._restored_full = 0
        self._restored_delta = 0
        self._restore_failures = 0
        self._memo: "collections.OrderedDict[str, Tuple[str, FactorizedSystem, str]]" = (
            collections.OrderedDict()
        )

    @property
    def root(self) -> str:
        """The store's directory."""
        return self._root

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def _path(self, digest: str, suffix: str) -> str:
        return os.path.join(self._root, digest + suffix)

    def path_for(self, key: SystemKey) -> Optional[str]:
        """The file currently backing ``key``, or ``None`` (full file wins)."""
        digest = system_key_digest(key)
        for suffix in (self._FULL_SUFFIX, self._DELTA_SUFFIX):
            path = self._path(digest, suffix)
            if os.path.exists(path):
                return path
        return None

    def file_bytes(self, key: SystemKey) -> int:
        """On-disk size of the key's checkpoint (0 when absent)."""
        path = self.path_for(key)
        return os.path.getsize(path) if path is not None else 0

    def __contains__(self, key: SystemKey) -> bool:
        return self.path_for(key) is not None

    def __len__(self) -> int:
        return sum(
            1
            for name in os.listdir(self._root)
            if name.endswith((self._FULL_SUFFIX, self._DELTA_SUFFIX))
        )

    # ------------------------------------------------------------------ #
    # Saving
    # ------------------------------------------------------------------ #
    def save_full(self, key: SystemKey, system: FactorizedSystem) -> None:
        """Write (or overwrite) a full checkpoint for ``key``.

        Raises :class:`~repro.errors.StoreError` for factor containers the
        format does not cover.  Any stale delta checkpoint for the key is
        removed — at most one file answers for a key.
        """
        digest = system_key_digest(key)
        meta, arrays = encode_factorized_system(system)
        meta["key"] = digest
        write_blob(self._path(digest, self._FULL_SUFFIX), meta, arrays)
        self._remove(self._path(digest, self._DELTA_SUFFIX))
        self._saved_full += 1

    def save_delta(
        self, key: SystemKey, system: FactorizedSystem, provenance: RefreshProvenance
    ) -> None:
        """Write a delta checkpoint for a refresh-produced system.

        Ensures a checkpoint of the lineage parent is on disk for the bits
        the delta was recorded against: the pinned parent system is encoded
        and its payload digest recorded in the child.  When the parent has a
        full checkpoint whose digest differs (an older or newer
        factorization generation) — or no checkpoint at all — the pinned
        parent bits are (re)written as a full checkpoint.  When the parent
        is itself a delta checkpoint it is left in place, extending the
        chain; its generation is verified at restore time against the
        recorded payload digest (a restored system re-encodes
        deterministically), so a stale chain link degrades the restore to a
        counted miss rather than ever replaying against wrong bits.  The
        child's own file stores its full system matrix (CSR) plus the
        ordered entry delta; only the factor payload — the expensive part —
        is delta-compressed away.
        """
        digest = system_key_digest(key)
        parent_digest = system_key_digest(provenance.parent_key)
        parent_meta, parent_arrays = encode_factorized_system(
            provenance.parent_system
        )
        parent_meta["key"] = parent_digest
        expected = blob_digest(parent_meta, parent_arrays)
        parent_path = self._path(parent_digest, self._FULL_SUFFIX)
        on_disk: Optional[str]
        try:
            on_disk = read_blob_digest(parent_path)
        except (OSError, StoreFormatError):
            on_disk = None
        if on_disk != expected and not os.path.exists(
            self._path(parent_digest, self._DELTA_SUFFIX)
        ):
            write_blob(parent_path, parent_meta, parent_arrays)
        # The child's own payload digest (the digest a full checkpoint of it
        # would carry) is recorded so that a grandchild delta can verify
        # this link's generation from the checksummed header alone, without
        # re-encoding the replayed system.
        child_meta, child_arrays = encode_factorized_system(system)
        child_meta["key"] = digest
        meta: Dict[str, object] = {
            "type": "delta",
            "n": system.matrix.n,
            "key": digest,
            "parent_key": parent_digest,
            "parent_payload": expected,
            "payload": blob_digest(child_meta, child_arrays),
        }
        arrays: Dict[str, object] = {}
        encode_matrix(system.matrix, arrays)
        encode_entries(provenance.delta, arrays)
        write_blob(self._path(digest, self._DELTA_SUFFIX), meta, arrays)
        self._remove(self._path(digest, self._FULL_SUFFIX))
        self._saved_delta += 1

    def save(
        self,
        key: SystemKey,
        system: FactorizedSystem,
        provenance: Optional[RefreshProvenance] = None,
    ) -> None:
        """Checkpoint ``key``: delta form when provenance is known, else full.

        A delta save that fails for representational reasons (e.g. the
        parent's factor container is not serializable) degrades to a full
        checkpoint of the child before propagating any error.
        """
        if provenance is not None:
            try:
                self.save_delta(key, system, provenance)
                return
            except StoreError:
                pass
        self.save_full(key, system)

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load(self, key: SystemKey) -> Optional[FactorizedSystem]:
        """Restore ``key``'s system, or ``None`` when absent or unrestorable.

        A full checkpoint decodes directly.  A delta checkpoint restores
        its parent recursively (the parent may itself be a delta — one
        replay per chain link, depth-capped), verifies the parent payload
        digest recorded at save time, clones the parent and replays the
        stored entry delta through :func:`~repro.lu.bennett.bennett_update`
        with its default tolerances — the same code path (and therefore the
        same bits) as the original refresh.  *Every* failure mode — corrupt
        or truncated file, missing/mismatched chain link, pattern
        violation, pivot breakdown, over-deep or cyclic chain — returns
        ``None`` (counted in ``restore_failures``) so the caller falls back
        to a cold factorization.  Intermediate chain links count in
        ``restored_full``/``restored_delta`` as they replay.
        """
        digest = system_key_digest(key)
        if not (
            os.path.exists(self._path(digest, self._FULL_SUFFIX))
            or os.path.exists(self._path(digest, self._DELTA_SUFFIX))
        ):
            return None
        try:
            system, _ = self._restore(digest, depth=0)
        except (
            OSError,
            StoreError,
            PatternError,
            SingularMatrixError,
            KeyError,
            ValueError,
            TypeError,
        ):
            self._restore_failures += 1
            return None
        return system

    def _restore(self, digest: str, depth: int) -> Tuple[FactorizedSystem, str]:
        """Restore one chain link, raising on any failure.

        Returns the system plus the payload digest of its full encoding,
        used by the child one level up to verify this link is the
        generation its delta was recorded against.  A full file yields that
        digest for free (it *is* the blob digest); a delta file carries the
        digest its save recorded (``meta["payload"]``), trustworthy because
        the header is checksummed and replay is bitwise.  Restored links
        land in a digest-validated LRU memo so a later restore one
        generation down replays only its own delta.
        """
        full_path = self._path(digest, self._FULL_SUFFIX)
        if os.path.exists(full_path):
            file_digest = read_blob_digest(full_path)
            memoized = self._memo.get(digest)
            if memoized is not None and memoized[0] == file_digest:
                self._memo.move_to_end(digest)
                return memoized[1], memoized[2]
            meta, arrays, payload = read_blob(full_path)
            system = decode_factorized_system(meta, arrays)
            self._restored_full += 1
            self._memoize(digest, file_digest, system, payload)
            return system, payload
        if depth >= self._MAX_DELTA_DEPTH:
            raise StoreFormatError(
                f"{digest}: delta chain exceeds {self._MAX_DELTA_DEPTH} links"
            )
        delta_path = self._path(digest, self._DELTA_SUFFIX)
        file_digest = read_blob_digest(delta_path)
        memoized = self._memo.get(digest)
        if memoized is not None and memoized[0] == file_digest:
            self._memo.move_to_end(digest)
            return memoized[1], memoized[2]
        meta, arrays, _ = read_blob(delta_path)
        if meta.get("type") != "delta":
            raise StoreFormatError(f"{delta_path}: not a delta checkpoint")
        parent_digest = str(meta["parent_key"])
        if parent_digest == digest:
            raise StoreFormatError(f"{delta_path}: delta names itself as parent")
        parent, parent_payload = self._restore(parent_digest, depth + 1)
        if parent_payload != meta["parent_payload"]:
            raise StoreFormatError(
                f"{delta_path}: parent payload digest mismatch "
                "(different factorization generation)"
            )
        working = parent.clone()
        delta = decode_entries(arrays)
        bennett_update(working.factors, delta)
        matrix = decode_matrix(int(meta["n"]), arrays)
        system = FactorizedSystem(matrix, parent.ordering, working.factors)
        self._restored_delta += 1
        payload = meta.get("payload")
        if not isinstance(payload, str):
            # Older delta files did not record their payload digest; derive
            # it from the replayed bits (deterministic encoding).
            child_meta, child_arrays = encode_factorized_system(system)
            child_meta["key"] = digest
            payload = blob_digest(child_meta, child_arrays)
        self._memoize(digest, file_digest, system, payload)
        return system, payload

    def _memoize(
        self, digest: str, file_digest: str, system: FactorizedSystem, payload: str
    ) -> None:
        self._memo[digest] = (file_digest, system, payload)
        self._memo.move_to_end(digest)
        while len(self._memo) > self._MEMO_CAPACITY:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def discard(self, key: SystemKey) -> None:
        """Remove any checkpoint files for ``key`` (missing files are fine)."""
        digest = system_key_digest(key)
        self._remove(self._path(digest, self._FULL_SUFFIX))
        self._remove(self._path(digest, self._DELTA_SUFFIX))

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def stats(self) -> Dict[str, int]:
        """Lifetime save/restore counters plus the current file count."""
        return {
            "saved_full": self._saved_full,
            "saved_delta": self._saved_delta,
            "restored_full": self._restored_full,
            "restored_delta": self._restored_delta,
            "restore_failures": self._restore_failures,
            "files": len(self),
        }
