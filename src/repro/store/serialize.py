"""Versioned, checksummed blobs for factor-store checkpoints.

One checkpoint is one file::

    MAGIC (4)  |  version (2, LE)  |  digest (16)  |  body
    body  =  header-length (4, LE)  |  JSON header  |  raw array payload

The digest is a 16-byte BLAKE2b over the *body*, so any truncation, bit flip
or partially-written file is detected before a single byte of it is
interpreted; a file that fails any structural check raises
:class:`~repro.errors.StoreFormatError`, which the store treats as a miss —
a corrupt checkpoint is never served.  The JSON header carries small
metadata plus the name/dtype/length of each array; the payload is the
arrays' raw little-endian bytes concatenated in header order.  No pickle is
involved anywhere in the hot payload.

Writes are atomic: the blob is written to a temporary file in the target
directory, fsynced, and :func:`os.replace`-d over the final name — a crash
mid-checkpoint leaves either the old file or no file, never a torn one.

The encoders are **bitwise round-trip exact**: every float64 is stored and
restored by raw bytes (``-0.0`` and subnormals included), and both factor
containers rebuild their structure deterministically (the dynamic adjacency
lists keep their per-row lists sorted, the static structure sorts its slots
from the pattern), so a decoded :class:`~repro.query.spec.FactorizedSystem`
answers bitwise-identically to the one that was encoded.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import StoreFormatError
from repro.lu.factors import LUFactors
from repro.lu.static_structure import StaticLUFactors
from repro.query.spec import FactorizedSystem
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from repro.sparse.permutation import Ordering
from repro.sparse.types import Entries

#: First four bytes of every checkpoint file.
MAGIC = b"RPFS"

#: On-disk format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1

#: Only these dtypes ever appear in a payload (little-endian, fixed width).
_ALLOWED_DTYPES = ("<i8", "<f8")

_PREFIX = struct.Struct("<4sH16s")
_HEADER_LEN = struct.Struct("<I")

#: Digest parameters shared by writer and reader.
_DIGEST_SIZE = 16


def _digest(body: bytes) -> bytes:
    return hashlib.blake2b(body, digest_size=_DIGEST_SIZE).digest()


# ---------------------------------------------------------------------- #
# Blob I/O
# ---------------------------------------------------------------------- #
def _build_body(
    meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> bytes:
    """Serialize header + payload into the digestable body bytes."""
    descriptors = []
    chunks = []
    for name, array in arrays.items():
        if array.dtype == np.int64:
            dtype = "<i8"
        elif array.dtype == np.float64:
            dtype = "<f8"
        else:
            raise StoreFormatError(
                f"array {name!r} has unsupported dtype {array.dtype}"
            )
        data = np.ascontiguousarray(array.ravel())
        if data.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
            data = data.astype(dtype)
        descriptors.append({"name": name, "dtype": dtype, "length": int(data.size)})
        chunks.append(data.tobytes())
    header = json.dumps(
        {"meta": dict(meta), "arrays": descriptors}, sort_keys=True
    ).encode("utf-8")
    return b"".join([_HEADER_LEN.pack(len(header)), header, *chunks])


def blob_digest(
    meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> str:
    """The body digest (hex) that :func:`write_blob` would record.

    Lets a caller compare an in-memory encoding against an existing file's
    prefix (:func:`read_blob_digest`) without writing or reading a payload.
    """
    return _digest(_build_body(meta, arrays)).hex()


def write_blob(
    path: str, meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> str:
    """Atomically write one checkpoint blob; return the body digest (hex).

    ``arrays`` iteration order is the payload order (preserved in the
    header).  The file appears under ``path`` only after its full content is
    durably on disk, via a same-directory temporary file and
    :func:`os.replace`.
    """
    body = _build_body(meta, arrays)
    digest = _digest(body)
    blob = _PREFIX.pack(MAGIC, FORMAT_VERSION, digest) + body

    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return digest.hex()


def read_blob(path: str) -> Tuple[Dict[str, object], Dict[str, np.ndarray], str]:
    """Read and verify one checkpoint blob.

    Returns ``(meta, arrays, digest_hex)``.  Every structural problem —
    missing file treated separately by the caller, wrong magic, unknown
    version, checksum mismatch (truncation, bit flips, partial writes),
    malformed header, arrays not covering the payload exactly — raises
    :class:`~repro.errors.StoreFormatError`; nothing from a bad file is ever
    returned.  The returned arrays own their memory (safe to mutate).
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _PREFIX.size:
        raise StoreFormatError(f"{path}: file shorter than the blob prefix")
    magic, version, digest = _PREFIX.unpack_from(blob)
    if magic != MAGIC:
        raise StoreFormatError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"{path}: unsupported format version {version} "
            f"(expected {FORMAT_VERSION})"
        )
    body = blob[_PREFIX.size:]
    if _digest(body) != digest:
        raise StoreFormatError(f"{path}: checksum mismatch (torn or corrupt file)")
    if len(body) < _HEADER_LEN.size:
        raise StoreFormatError(f"{path}: body shorter than the header length field")
    (header_len,) = _HEADER_LEN.unpack_from(body)
    header_end = _HEADER_LEN.size + header_len
    if header_end > len(body):
        raise StoreFormatError(f"{path}: header length exceeds the body")
    try:
        header = json.loads(body[_HEADER_LEN.size:header_end].decode("utf-8"))
        meta = dict(header["meta"])
        descriptors = list(header["arrays"])
    except (ValueError, KeyError, TypeError) as error:
        raise StoreFormatError(f"{path}: malformed header ({error})") from None
    arrays: Dict[str, np.ndarray] = {}
    offset = header_end
    for descriptor in descriptors:
        try:
            name = descriptor["name"]
            dtype = descriptor["dtype"]
            length = int(descriptor["length"])
        except (KeyError, TypeError, ValueError) as error:
            raise StoreFormatError(
                f"{path}: malformed array descriptor ({error})"
            ) from None
        if dtype not in _ALLOWED_DTYPES or length < 0:
            raise StoreFormatError(
                f"{path}: illegal array descriptor {descriptor!r}"
            )
        nbytes = length * 8
        if offset + nbytes > len(body):
            raise StoreFormatError(f"{path}: array {name!r} exceeds the payload")
        arrays[name] = np.frombuffer(
            body, dtype=dtype, count=length, offset=offset
        ).copy()
        offset += nbytes
    if offset != len(body):
        raise StoreFormatError(f"{path}: trailing bytes after the declared arrays")
    return meta, arrays, digest.hex()


def read_blob_digest(path: str) -> str:
    """Return the body digest recorded in a blob's prefix (hex), cheaply.

    Only the fixed-size prefix is read; the digest is *not* re-verified
    against the body (that happens on the full :func:`read_blob`).  Raises
    :class:`~repro.errors.StoreFormatError` on a short or foreign file.
    """
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX.size)
    if len(prefix) < _PREFIX.size:
        raise StoreFormatError(f"{path}: file shorter than the blob prefix")
    magic, version, digest = _PREFIX.unpack(prefix)
    if magic != MAGIC or version != FORMAT_VERSION:
        raise StoreFormatError(f"{path}: bad magic or version")
    return digest.hex()


# ---------------------------------------------------------------------- #
# Component encoders
# ---------------------------------------------------------------------- #
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise StoreFormatError(message)


def encode_matrix(matrix: SparseMatrix, arrays: Dict[str, np.ndarray]) -> None:
    """Append a CSR matrix's three arrays under the ``matrix_`` prefix."""
    arrays["matrix_indptr"] = matrix.indptr
    arrays["matrix_indices"] = matrix.indices
    arrays["matrix_data"] = matrix.data


def decode_matrix(n: int, arrays: Mapping[str, np.ndarray]) -> SparseMatrix:
    """Rebuild a CSR matrix from its stored arrays (exact same buffers)."""
    indptr = arrays["matrix_indptr"]
    indices = arrays["matrix_indices"]
    data = arrays["matrix_data"]
    _require(indptr.size == n + 1, "matrix indptr has the wrong length")
    _require(
        indices.size == data.size and (n == 0 or int(indptr[-1]) == indices.size),
        "matrix index/data arrays disagree",
    )
    return SparseMatrix._from_csr(n, indptr, indices, data)


def encode_entries(
    entries: Entries, arrays: Dict[str, np.ndarray], prefix: str = "delta"
) -> None:
    """Append a sparse entry dict, preserving its iteration order.

    The order matters: Bennett rank-1 sweeps iterate the update vectors in
    dict insertion order, so a bit-exact replay must apply the entries in
    exactly the order they were applied originally.
    """
    count = len(entries)
    rows = np.empty(count, dtype=np.int64)
    cols = np.empty(count, dtype=np.int64)
    vals = np.empty(count, dtype=np.float64)
    for slot, ((i, j), value) in enumerate(entries.items()):
        rows[slot] = i
        cols[slot] = j
        vals[slot] = value
    arrays[f"{prefix}_rows"] = rows
    arrays[f"{prefix}_cols"] = cols
    arrays[f"{prefix}_vals"] = vals


def decode_entries(
    arrays: Mapping[str, np.ndarray], prefix: str = "delta"
) -> Entries:
    """Rebuild a sparse entry dict in its stored (original) order."""
    rows = arrays[f"{prefix}_rows"]
    cols = arrays[f"{prefix}_cols"]
    vals = arrays[f"{prefix}_vals"]
    _require(
        rows.size == cols.size == vals.size, "delta arrays disagree in length"
    )
    return {
        (int(rows[k]), int(cols[k])): float(vals[k]) for k in range(rows.size)
    }


def _encode_ordering(
    ordering: Optional[Ordering], meta: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> None:
    meta["ordering"] = ordering is not None
    if ordering is not None:
        arrays["order_row"] = np.asarray(ordering.row.order, dtype=np.int64)
        arrays["order_col"] = np.asarray(ordering.column.order, dtype=np.int64)


def _decode_ordering(
    meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> Optional[Ordering]:
    if not meta.get("ordering"):
        return None
    return Ordering.from_sequences(
        arrays["order_row"].tolist(), arrays["order_col"].tolist()
    )


def _encode_dynamic_factors(
    factors: LUFactors, arrays: Dict[str, np.ndarray]
) -> None:
    """Store dynamic factors as two COO triples (deterministic iteration).

    ``l_items`` / ``u_items`` iterate the adjacency lists in their canonical
    sorted order, and the lists never store zeros (``set`` deletes them), so
    the triples are exactly the stored entries and re-inserting them rebuilds
    an identical structure (the per-row lists are kept sorted by ``bisect``,
    making the final structure insertion-order independent).
    """
    l_triples = list(factors.l_items())
    u_triples = list(factors.u_items())
    for prefix, triples in (("l", l_triples), ("u", u_triples)):
        rows = np.fromiter((i for i, _, _ in triples), np.int64, len(triples))
        cols = np.fromiter((j for _, j, _ in triples), np.int64, len(triples))
        vals = np.fromiter((v for _, _, v in triples), np.float64, len(triples))
        arrays[f"{prefix}_rows"] = rows
        arrays[f"{prefix}_cols"] = cols
        arrays[f"{prefix}_vals"] = vals


def _decode_dynamic_factors(
    n: int, arrays: Mapping[str, np.ndarray]
) -> LUFactors:
    factors = LUFactors(n)
    l_rows, l_cols, l_vals = arrays["l_rows"], arrays["l_cols"], arrays["l_vals"]
    _require(
        l_rows.size == l_cols.size == l_vals.size, "L arrays disagree in length"
    )
    for k in range(l_rows.size):
        i, j = int(l_rows[k]), int(l_cols[k])
        value = float(l_vals[k])
        _require(value != 0.0, "dynamic factors must not store explicit zeros")
        if i == j:
            factors.set_l_diagonal(i, value)
        else:
            factors.l_set(i, j, value)
    u_rows, u_cols, u_vals = arrays["u_rows"], arrays["u_cols"], arrays["u_vals"]
    _require(
        u_rows.size == u_cols.size == u_vals.size, "U arrays disagree in length"
    )
    for k in range(u_rows.size):
        value = float(u_vals[k])
        _require(value != 0.0, "dynamic factors must not store explicit zeros")
        factors.u_set(int(u_rows[k]), int(u_cols[k]), value)
    factors.reset_counters()
    return factors


def _encode_static_factors(
    factors: StaticLUFactors, arrays: Dict[str, np.ndarray]
) -> None:
    """Store the full slot arrays of a static structure, zeros included.

    Zero-valued slots are part of the container's state (and ``-0.0`` is a
    distinct bit pattern), so the flattened value arrays are stored verbatim
    rather than as non-zero triples.  The pattern rebuilds the slot layout
    deterministically (``StaticLUFactors.__init__`` sorts per column/row).
    """
    pattern = sorted(factors.pattern.indices)
    arrays["pattern_rows"] = np.fromiter(
        (i for i, _ in pattern), np.int64, len(pattern)
    )
    arrays["pattern_cols"] = np.fromiter(
        (j for _, j in pattern), np.int64, len(pattern)
    )
    arrays["diag"] = factors._diagonal
    arrays["l_values"] = np.array(
        [value for values in factors._l_col_values for value in values],
        dtype=np.float64,
    )
    arrays["u_values"] = np.array(
        [value for values in factors._u_row_values for value in values],
        dtype=np.float64,
    )


def _decode_static_factors(
    n: int, arrays: Mapping[str, np.ndarray]
) -> StaticLUFactors:
    rows = arrays["pattern_rows"]
    cols = arrays["pattern_cols"]
    _require(rows.size == cols.size, "pattern arrays disagree in length")
    pattern = SparsityPattern(
        n, ((int(rows[k]), int(cols[k])) for k in range(rows.size))
    )
    factors = StaticLUFactors(pattern)
    diag = arrays["diag"]
    _require(diag.size == n, "diagonal has the wrong length")
    factors._diagonal[:] = diag
    l_values = arrays["l_values"]
    offset = 0
    for j in range(n):
        width = len(factors._l_col_values[j])
        _require(offset + width <= l_values.size, "L values shorter than the pattern")
        factors._l_col_values[j] = [float(v) for v in l_values[offset:offset + width]]
        offset += width
    _require(offset == l_values.size, "L values longer than the pattern")
    u_values = arrays["u_values"]
    offset = 0
    for i in range(n):
        width = len(factors._u_row_values[i])
        _require(offset + width <= u_values.size, "U values shorter than the pattern")
        factors._u_row_values[i] = [float(v) for v in u_values[offset:offset + width]]
        offset += width
    _require(offset == u_values.size, "U values longer than the pattern")
    return factors


# ---------------------------------------------------------------------- #
# FactorizedSystem checkpoints
# ---------------------------------------------------------------------- #
def encode_factorized_system(
    system: FactorizedSystem,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Encode a full system checkpoint: matrix + ordering + factor container.

    Raises :class:`~repro.errors.StoreFormatError` for factor containers the
    format does not cover (anything other than the library's dynamic and
    static containers) — the caller then simply skips the spill.
    """
    meta: Dict[str, object] = {"type": "system", "n": system.matrix.n}
    arrays: Dict[str, np.ndarray] = {}
    encode_matrix(system.matrix, arrays)
    _encode_ordering(system.ordering, meta, arrays)
    factors = system.factors
    if isinstance(factors, LUFactors):
        meta["factors"] = "dynamic"
        _encode_dynamic_factors(factors, arrays)
    elif isinstance(factors, StaticLUFactors):
        meta["factors"] = "static"
        _encode_static_factors(factors, arrays)
    else:
        raise StoreFormatError(
            f"unsupported factor container {type(factors).__name__}"
        )
    return meta, arrays


def decode_factorized_system(
    meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
) -> FactorizedSystem:
    """Decode a full system checkpoint back into a :class:`FactorizedSystem`."""
    _require(meta.get("type") == "system", "not a system checkpoint")
    n = int(meta["n"])
    _require(n >= 0, "negative dimension")
    matrix = decode_matrix(n, arrays)
    ordering = _decode_ordering(meta, arrays)
    container = meta.get("factors")
    if container == "dynamic":
        factors: object = _decode_dynamic_factors(n, arrays)
    elif container == "static":
        factors = _decode_static_factors(n, arrays)
    else:
        raise StoreFormatError(f"unknown factor container tag {container!r}")
    return FactorizedSystem(matrix, ordering, factors)
