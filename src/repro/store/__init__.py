"""Persistent factor store: a disk tier under the in-memory factor cache.

Every :class:`~repro.query.planner.FactorCache` is per-process, so a restart
of the serving stack used to be a cold fleet — the whole economy of the
paper (factorize once, refresh by Bennett deltas, reuse under QC bounds) was
rebuilt from scratch on every boot.  This package adds the missing tier:

* :mod:`repro.store.serialize` — a versioned, checksummed on-disk format for
  :class:`~repro.sparse.csr.SparseMatrix`, orderings and both LU factor
  containers (raw little-endian array blobs behind a small JSON header, no
  pickle for the hot payload), written atomically so a crash mid-checkpoint
  can never leave a torn file that parses.
* :mod:`repro.store.factorstore` — :class:`FactorStore`, the content-keyed
  directory of checkpoints: full snapshots of a
  :class:`~repro.query.spec.FactorizedSystem`, and *delta* checkpoints for
  refresh-produced systems that persist only the Bennett update against the
  stored lineage parent (replayed bit-exactly on restore).

The cache consumes the store through ``FactorCache(store=...)``: LRU
evictions spill to disk instead of dropping, misses consult the store before
the planner cold-factorizes, and ``checkpoint()`` flushes the whole working
set — every restored system answers bitwise-identically to the in-memory one
it checkpointed.
"""

from repro.store.factorstore import FactorStore, RefreshProvenance
from repro.store.serialize import (
    FORMAT_VERSION,
    decode_factorized_system,
    encode_factorized_system,
    read_blob,
    write_blob,
)

__all__ = [
    "FactorStore",
    "RefreshProvenance",
    "FORMAT_VERSION",
    "encode_factorized_system",
    "decode_factorized_system",
    "read_blob",
    "write_blob",
]
