"""Small helpers for dense and sparse vectors used by measures and solvers."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError


def unit_vector(n: int, index: int, value: float = 1.0) -> np.ndarray:
    """Return a length-``n`` vector that is zero except for ``value`` at ``index``."""
    if not 0 <= index < n:
        raise DimensionError(f"index {index} out of bounds for a length-{n} vector")
    vector = np.zeros(n, dtype=float)
    vector[index] = value
    return vector


def seed_vector(n: int, seeds: Iterable[int], total: float = 1.0) -> np.ndarray:
    """Return a vector spreading ``total`` uniformly over the ``seeds`` indices.

    Used by Personalized PageRank when a *set* of seed nodes is given (as in
    the paper's patent case study, Section 7).
    """
    seed_list = [int(s) for s in seeds]
    if not seed_list:
        raise DimensionError("seed set must not be empty")
    for s in seed_list:
        if not 0 <= s < n:
            raise DimensionError(f"seed {s} out of bounds for a length-{n} vector")
    vector = np.zeros(n, dtype=float)
    share = total / len(seed_list)
    for s in seed_list:
        vector[s] += share
    return vector


def sparse_to_dense(n: int, entries: Dict[int, float]) -> np.ndarray:
    """Expand a ``{index: value}`` mapping into a dense length-``n`` vector."""
    vector = np.zeros(n, dtype=float)
    for index, value in entries.items():
        if not 0 <= index < n:
            raise DimensionError(f"index {index} out of bounds for a length-{n} vector")
        vector[index] = value
    return vector


def dense_to_sparse(vector: Sequence[float], tolerance: float = 0.0) -> Dict[int, float]:
    """Collect the entries of ``vector`` whose magnitude exceeds ``tolerance``."""
    array = np.asarray(vector, dtype=float)
    return {int(i): float(v) for i, v in enumerate(array) if abs(v) > tolerance}


def residual_norm(matvec_result: Sequence[float], b: Sequence[float]) -> float:
    """Return the infinity norm of ``A x - b`` given a precomputed ``A x``."""
    ax = np.asarray(matvec_result, dtype=float)
    rhs = np.asarray(b, dtype=float)
    if ax.shape != rhs.shape:
        raise DimensionError(f"shape mismatch: {ax.shape} vs {rhs.shape}")
    if ax.size == 0:
        return 0.0
    return float(np.max(np.abs(ax - rhs)))


def top_k(vector: Sequence[float], k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return the indices and values of the ``k`` largest entries, descending."""
    array = np.asarray(vector, dtype=float)
    if k <= 0:
        return np.array([], dtype=int), np.array([], dtype=float)
    k = min(k, array.size)
    order = np.argsort(-array, kind="stable")[:k]
    return order, array[order]
