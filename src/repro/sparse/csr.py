"""An immutable sparse matrix stored in compressed-sparse-row form.

:class:`SparseMatrix` is the exchange format used throughout the library:
evolving matrix sequences hold one per snapshot, orderings produce reordered
copies, and the LU engines consume it when building their own working
structures.  It deliberately supports only the operations the algorithms in
the paper need (element access, row/column iteration, matrix-vector products,
pattern extraction, reordering, and element-wise deltas between snapshots).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError
from repro.sparse.pattern import SparsityPattern
from repro.sparse.types import Entries, Index, Triples

_DEFAULT_TOLERANCE = 0.0


class SparseMatrix:
    """An ``n x n`` sparse matrix with float64 values.

    Instances are immutable: every transformation returns a new matrix.

    Parameters
    ----------
    n:
        Matrix dimension.
    entries:
        Mapping from ``(row, column)`` to value.  Exact zeros are dropped.
    """

    __slots__ = ("_n", "_rows", "_nnz")

    def __init__(self, n: int, entries: Optional[Entries] = None) -> None:
        if n < 0:
            raise DimensionError(f"matrix dimension must be non-negative, got {n}")
        self._n = n
        rows: List[Dict[int, float]] = [dict() for _ in range(n)]
        nnz = 0
        if entries:
            for (i, j), value in entries.items():
                i = int(i)
                j = int(j)
                if not (0 <= i < n and 0 <= j < n):
                    raise DimensionError(
                        f"index ({i}, {j}) out of bounds for a {n}x{n} matrix"
                    )
                value = float(value)
                if value != 0.0:
                    if j not in rows[i]:
                        nnz += 1
                    rows[i][j] = value
        self._rows = rows
        self._nnz = nnz

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(cls, n: int, triples: Triples) -> "SparseMatrix":
        """Build a matrix from ``(row, column, value)`` triples.

        Duplicate indices are summed, mirroring COO-format semantics.
        """
        entries: Entries = {}
        for i, j, value in triples:
            key = (int(i), int(j))
            entries[key] = entries.get(key, 0.0) + float(value)
        return cls(n, entries)

    @classmethod
    def from_dense(cls, dense: Sequence[Sequence[float]]) -> "SparseMatrix":
        """Build a matrix from a dense 2-D array-like (must be square)."""
        array = np.asarray(dense, dtype=float)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise DimensionError(f"expected a square 2-D array, got shape {array.shape}")
        n = array.shape[0]
        entries: Entries = {}
        nonzero_rows, nonzero_cols = np.nonzero(array)
        for i, j in zip(nonzero_rows.tolist(), nonzero_cols.tolist()):
            entries[(i, j)] = float(array[i, j])
        return cls(n, entries)

    @classmethod
    def identity(cls, n: int) -> "SparseMatrix":
        """Return the ``n x n`` identity matrix."""
        return cls(n, {(i, i): 1.0 for i in range(n)})

    @classmethod
    def zeros(cls, n: int) -> "SparseMatrix":
        """Return the ``n x n`` all-zero matrix."""
        return cls(n, {})

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self._n

    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape as a ``(rows, columns)`` tuple."""
        return (self._n, self._n)

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return self._nnz

    def get(self, i: int, j: int) -> float:
        """Return the value at ``(i, j)`` (0.0 when the entry is absent)."""
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise DimensionError(
                f"index ({i}, {j}) out of bounds for a {self._n}x{self._n} matrix"
            )
        return self._rows[i].get(j, 0.0)

    def __getitem__(self, index: Index) -> float:
        i, j = index
        return self.get(i, j)

    def row(self, i: int) -> Dict[int, float]:
        """Return a copy of row ``i`` as a ``{column: value}`` mapping."""
        return dict(self._rows[i])

    def row_items(self, i: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(column, value)`` pairs of row ``i``."""
        return iter(self._rows[i].items())

    def column(self, j: int) -> Dict[int, float]:
        """Return column ``j`` as a ``{row: value}`` mapping (O(nnz) scan)."""
        return {i: row[j] for i, row in enumerate(self._rows) if j in row}

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over all stored entries as ``(row, column, value)`` triples."""
        for i, row in enumerate(self._rows):
            for j, value in row.items():
                yield i, j, value

    def entries(self) -> Entries:
        """Return all stored entries as a ``{(row, column): value}`` dict."""
        return {(i, j): value for i, j, value in self.items()}

    def pattern(self) -> SparsityPattern:
        """Return the sparsity pattern ``sp(A)`` of this matrix."""
        return SparsityPattern(self._n, ((i, j) for i, j, _ in self.items()))

    def to_dense(self) -> np.ndarray:
        """Return a dense float64 copy of the matrix."""
        dense = np.zeros((self._n, self._n), dtype=float)
        for i, j, value in self.items():
            dense[i, j] = value
        return dense

    # ------------------------------------------------------------------ #
    # Structure / numeric predicates
    # ------------------------------------------------------------------ #
    def is_symmetric(self, tolerance: float = 1e-12) -> bool:
        """Return ``True`` when ``A`` equals its transpose within ``tolerance``."""
        for i, j, value in self.items():
            if abs(self.get(j, i) - value) > tolerance:
                return False
        return True

    def is_diagonally_dominant(self) -> bool:
        """Return ``True`` when every row is weakly diagonally dominant."""
        for i in range(self._n):
            row = self._rows[i]
            diagonal = abs(row.get(i, 0.0))
            off_diagonal = sum(abs(v) for j, v in row.items() if j != i)
            if diagonal + 1e-15 < off_diagonal:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def matvec(self, x: Sequence[float]) -> np.ndarray:
        """Return ``A @ x`` for a dense vector ``x``."""
        vector = np.asarray(x, dtype=float)
        if vector.shape != (self._n,):
            raise DimensionError(
                f"vector of length {vector.shape} incompatible with n={self._n}"
            )
        result = np.zeros(self._n, dtype=float)
        for i, row in enumerate(self._rows):
            total = 0.0
            for j, value in row.items():
                total += value * vector[j]
            result[i] = total
        return result

    def rmatvec(self, x: Sequence[float]) -> np.ndarray:
        """Return ``A.T @ x`` for a dense vector ``x``."""
        vector = np.asarray(x, dtype=float)
        if vector.shape != (self._n,):
            raise DimensionError(
                f"vector of length {vector.shape} incompatible with n={self._n}"
            )
        result = np.zeros(self._n, dtype=float)
        for i, row in enumerate(self._rows):
            xi = vector[i]
            if xi == 0.0:
                continue
            for j, value in row.items():
                result[j] += value * xi
        return result

    def transpose(self) -> "SparseMatrix":
        """Return the transposed matrix."""
        return SparseMatrix.from_triples(self._n, ((j, i, v) for i, j, v in self.items()))

    def scale(self, factor: float) -> "SparseMatrix":
        """Return ``factor * A``."""
        return SparseMatrix.from_triples(
            self._n, ((i, j, factor * v) for i, j, v in self.items())
        )

    def add(self, other: "SparseMatrix") -> "SparseMatrix":
        """Return ``A + B``."""
        self._check_compatible(other)
        entries = self.entries()
        for i, j, value in other.items():
            entries[(i, j)] = entries.get((i, j), 0.0) + value
        return SparseMatrix(self._n, entries)

    def subtract(self, other: "SparseMatrix") -> "SparseMatrix":
        """Return ``A - B``."""
        return self.add(other.scale(-1.0))

    __add__ = add
    __sub__ = subtract

    def delta_entries(self, other: "SparseMatrix", tolerance: float = _DEFAULT_TOLERANCE) -> Entries:
        """Return the entries of ``other - self`` whose magnitude exceeds ``tolerance``.

        This is the sparse "update matrix" ``ΔA`` that incremental decomposition
        algorithms consume when moving from one snapshot to the next.
        """
        self._check_compatible(other)
        delta: Entries = {}
        for i, j, value in other.items():
            difference = value - self.get(i, j)
            if abs(difference) > tolerance:
                delta[(i, j)] = difference
        for i, j, value in self.items():
            if other.get(i, j) == 0.0 and (i, j) not in delta:
                difference = -value
                if abs(difference) > tolerance:
                    delta[(i, j)] = difference
        return delta

    def _check_compatible(self, other: "SparseMatrix") -> None:
        if self._n != other._n:
            raise DimensionError(
                f"matrices have different dimensions: {self._n} vs {other._n}"
            )

    # ------------------------------------------------------------------ #
    # Reordering
    # ------------------------------------------------------------------ #
    def permuted(self, row_perm: Sequence[int], col_perm: Sequence[int]) -> "SparseMatrix":
        """Return the matrix reordered so that ``B[r, c] = A[row_perm[r], col_perm[c]]``.

        ``row_perm[r]`` is the original row placed at new position ``r`` and
        ``col_perm[c]`` the original column placed at new position ``c``.  This
        is exactly ``B = P A Q`` for the permutation matrices implied by the
        two sequences (see :mod:`repro.sparse.permutation`).
        """
        if len(row_perm) != self._n or len(col_perm) != self._n:
            raise DimensionError("permutation length does not match matrix dimension")
        new_row_of = {original: new for new, original in enumerate(row_perm)}
        new_col_of = {original: new for new, original in enumerate(col_perm)}
        return SparseMatrix.from_triples(
            self._n,
            ((new_row_of[i], new_col_of[j], v) for i, j, v in self.items()),
        )

    # ------------------------------------------------------------------ #
    # Comparisons / dunder helpers
    # ------------------------------------------------------------------ #
    def allclose(self, other: "SparseMatrix", tolerance: float = 1e-9) -> bool:
        """Return ``True`` when both matrices agree entry-wise within ``tolerance``."""
        self._check_compatible(other)
        keys = set(self.entries()) | set(other.entries())
        return all(
            math.isclose(self.get(i, j), other.get(i, j), abs_tol=tolerance, rel_tol=tolerance)
            for i, j in keys
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrix):
            return NotImplemented
        return self._n == other._n and self.entries() == other.entries()

    def __hash__(self) -> int:  # pragma: no cover - matrices are rarely hashed
        return hash((self._n, frozenset(self.entries().items())))

    def __repr__(self) -> str:
        return f"SparseMatrix(n={self._n}, nnz={self._nnz})"


def column_normalized_adjacency(
    n: int, edges: Iterable[Tuple[int, int]]
) -> SparseMatrix:
    """Build the column-normalized adjacency matrix ``W`` used by PR/RWR/PPR.

    For an edge ``(i, j)`` (from node ``i`` to node ``j``) the matrix gets
    ``W[j, i] = 1 / out_degree(i)``, matching footnote 1 of the paper.
    Dangling nodes (out-degree zero) contribute an empty column.
    """
    out_degree: Dict[int, int] = {}
    edge_list: List[Tuple[int, int]] = []
    for i, j in edges:
        i = int(i)
        j = int(j)
        if not (0 <= i < n and 0 <= j < n):
            raise DimensionError(f"edge ({i}, {j}) out of bounds for n={n}")
        out_degree[i] = out_degree.get(i, 0) + 1
        edge_list.append((i, j))
    return SparseMatrix.from_triples(
        n, ((j, i, 1.0 / out_degree[i]) for i, j in edge_list)
    )
