"""An immutable sparse matrix stored in true compressed-sparse-row form.

:class:`SparseMatrix` is the exchange format used throughout the library:
evolving matrix sequences hold one per snapshot, orderings produce reordered
copies, and the LU engines consume it when building their own working
structures.  It deliberately supports only the operations the algorithms in
the paper need (element access, row/column iteration, matrix-vector products,
pattern extraction, reordering, and element-wise deltas between snapshots).

Storage layout
--------------
Entries live in three parallel NumPy arrays — the classic CSR triple:

* ``indptr``  — ``int64[n + 1]``; row ``i`` occupies slots
  ``indptr[i]:indptr[i + 1]``,
* ``indices`` — ``int64[nnz]``; column indices, strictly increasing inside
  each row,
* ``data``    — ``float64[nnz]``; the values, exact zeros never stored.

All three arrays are marked read-only, so the container is immutable down to
the buffer level: every transformation returns a new matrix, and the hot
paths (``matvec``, ``rmatvec``, ``delta_entries``, ``permuted``) are
vectorized kernels from :mod:`repro.sparse.kernels` rather than Python loops.
Iteration (``items()``) is therefore deterministic: row-major, ascending
column within each row.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError
from repro.sparse import kernels
from repro.sparse.pattern import SparsityPattern
from repro.sparse.types import Entries, Index, Triples

_DEFAULT_TOLERANCE = 0.0


def _check_bounds(n: int, rows: np.ndarray, cols: np.ndarray) -> None:
    """Raise :class:`DimensionError` naming the first out-of-bounds index."""
    bad = (rows < 0) | (rows >= n) | (cols < 0) | (cols >= n)
    if np.any(bad):
        position = int(np.argmax(bad))
        raise DimensionError(
            f"index ({int(rows[position])}, {int(cols[position])}) "
            f"out of bounds for a {n}x{n} matrix"
        )


class SparseMatrix:
    """An ``n x n`` sparse matrix with float64 values in CSR storage.

    Instances are immutable: the backing ``indptr`` / ``indices`` / ``data``
    arrays are read-only and every transformation returns a new matrix.

    Parameters
    ----------
    n:
        Matrix dimension.
    entries:
        Mapping from ``(row, column)`` to value.  Exact zeros are dropped.
    """

    __slots__ = ("_n", "_indptr", "_indices", "_data", "_row_ids")

    def __init__(self, n: int, entries: Optional[Entries] = None) -> None:
        if n < 0:
            raise DimensionError(f"matrix dimension must be non-negative, got {n}")
        self._n = int(n)
        if entries:
            keys = np.array([(int(i), int(j)) for i, j in entries.keys()], dtype=np.int64)
            rows = keys[:, 0]
            cols = keys[:, 1]
            vals = np.fromiter(
                (float(v) for v in entries.values()), dtype=np.float64, count=len(entries)
            )
            _check_bounds(n, rows, cols)
            # Dict keys are unique, so no duplicate summing is needed.
            arrays = kernels.csr_from_coo(n, rows, cols, vals, sum_duplicates=False)
        else:
            arrays = kernels.csr_from_coo(
                n, np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.float64)
            )
        self._adopt(*arrays)

    def _adopt(
        self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray
    ) -> None:
        """Install canonical CSR arrays and freeze them."""
        for array in (indptr, indices, data):
            array.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._data = data
        row_ids = kernels.expand_row_ids(self._n, indptr)
        row_ids.setflags(write=False)
        self._row_ids = row_ids

    @classmethod
    def _from_csr(
        cls, n: int, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray
    ) -> "SparseMatrix":
        """Wrap already-canonical CSR arrays (internal fast path)."""
        matrix = cls.__new__(cls)
        matrix._n = n
        matrix._adopt(indptr, indices, data)
        return matrix

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_triples(cls, n: int, triples: Triples) -> "SparseMatrix":
        """Build a matrix from ``(row, column, value)`` triples.

        Duplicate indices are summed, mirroring COO-format semantics.
        """
        rows_list: List[int] = []
        cols_list: List[int] = []
        vals_list: List[float] = []
        for i, j, value in triples:
            rows_list.append(int(i))
            cols_list.append(int(j))
            vals_list.append(float(value))
        return cls.from_coo(n, rows_list, cols_list, vals_list)

    @classmethod
    def from_coo(
        cls,
        n: int,
        rows: Sequence[int],
        cols: Sequence[int],
        values: Sequence[float],
    ) -> "SparseMatrix":
        """Build a matrix from parallel COO arrays (duplicates are summed)."""
        if n < 0:
            raise DimensionError(f"matrix dimension must be non-negative, got {n}")
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        vals_arr = np.asarray(values, dtype=np.float64)
        if not (rows_arr.shape == cols_arr.shape == vals_arr.shape):
            raise DimensionError(
                f"COO arrays have mismatched lengths: "
                f"{rows_arr.size}, {cols_arr.size}, {vals_arr.size}"
            )
        _check_bounds(n, rows_arr, cols_arr)
        return cls._from_csr(
            n, *kernels.csr_from_coo(n, rows_arr, cols_arr, vals_arr)
        )

    @classmethod
    def from_csr_arrays(
        cls,
        n: int,
        indptr: Sequence[int],
        indices: Sequence[int],
        data: Sequence[float],
    ) -> "SparseMatrix":
        """Build a matrix directly from CSR arrays (the builder lowering path).

        Rows may hold unsorted or duplicate columns; the input is
        canonicalized (sorted, duplicates summed, zeros dropped).
        """
        if n < 0:
            raise DimensionError(f"matrix dimension must be non-negative, got {n}")
        indptr_arr = np.asarray(indptr, dtype=np.int64)
        indices_arr = np.asarray(indices, dtype=np.int64)
        data_arr = np.asarray(data, dtype=np.float64)
        if indptr_arr.shape != (n + 1,) or indptr_arr[0] != 0:
            raise DimensionError(f"indptr must have shape ({n + 1},) and start at 0")
        if np.any(np.diff(indptr_arr) < 0) or indptr_arr[-1] != indices_arr.size:
            raise DimensionError("indptr must be non-decreasing and end at nnz")
        if indices_arr.shape != data_arr.shape:
            raise DimensionError(
                f"indices/data length mismatch: {indices_arr.size} vs {data_arr.size}"
            )
        rows = kernels.expand_row_ids(n, indptr_arr)
        _check_bounds(n, rows, indices_arr)
        return cls._from_csr(n, *kernels.csr_from_coo(n, rows, indices_arr, data_arr))

    @classmethod
    def from_dense(cls, dense: Sequence[Sequence[float]]) -> "SparseMatrix":
        """Build a matrix from a dense 2-D array-like (must be square)."""
        array = np.asarray(dense, dtype=float)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise DimensionError(f"expected a square 2-D array, got shape {array.shape}")
        n = array.shape[0]
        rows, cols = np.nonzero(array)
        return cls._from_csr(
            n,
            *kernels.csr_from_coo(
                n, rows.astype(np.int64), cols.astype(np.int64), array[rows, cols]
            ),
        )

    @classmethod
    def identity(cls, n: int) -> "SparseMatrix":
        """Return the ``n x n`` identity matrix."""
        diag = np.arange(n, dtype=np.int64)
        return cls._from_csr(
            n,
            np.arange(n + 1, dtype=np.int64),
            diag,
            np.ones(n, dtype=np.float64),
        )

    @classmethod
    def zeros(cls, n: int) -> "SparseMatrix":
        """Return the ``n x n`` all-zero matrix."""
        return cls(n, {})

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self._n

    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape as a ``(rows, columns)`` tuple."""
        return (self._n, self._n)

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries: the length of ``data``."""
        return int(self._data.size)

    @property
    def indptr(self) -> np.ndarray:
        """Row pointer array (read-only view, length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Column index array (read-only view, length ``nnz``)."""
        return self._indices

    @property
    def data(self) -> np.ndarray:
        """Value array (read-only view, length ``nnz``)."""
        return self._data

    def csr_arrays(self) -> kernels.CSRArrays:
        """Return the ``(indptr, indices, data)`` triple (read-only views)."""
        return self._indptr, self._indices, self._data

    def coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` COO views in row-major order."""
        return self._row_ids, self._indices, self._data

    def get(self, i: int, j: int) -> float:
        """Return the value at ``(i, j)`` (0.0 when the entry is absent)."""
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise DimensionError(
                f"index ({i}, {j}) out of bounds for a {self._n}x{self._n} matrix"
            )
        start, end = int(self._indptr[i]), int(self._indptr[i + 1])
        position = int(np.searchsorted(self._indices[start:end], j)) + start
        if position < end and self._indices[position] == j:
            return float(self._data[position])
        return 0.0

    def __getitem__(self, index: Index) -> float:
        i, j = index
        return self.get(i, j)

    def _row_bounds(self, i: int) -> Tuple[int, int]:
        if not 0 <= i < self._n:
            raise DimensionError(
                f"row index {i} out of bounds for a {self._n}x{self._n} matrix"
            )
        return int(self._indptr[i]), int(self._indptr[i + 1])

    def row(self, i: int) -> Dict[int, float]:
        """Return row ``i`` as a ``{column: value}`` mapping (ascending columns)."""
        start, end = self._row_bounds(i)
        return dict(zip(self._indices[start:end].tolist(), self._data[start:end].tolist()))

    def row_items(self, i: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(column, value)`` pairs of row ``i`` in column order."""
        start, end = self._row_bounds(i)
        return zip(self._indices[start:end].tolist(), self._data[start:end].tolist())

    def column(self, j: int) -> Dict[int, float]:
        """Return column ``j`` as a ``{row: value}`` mapping (O(nnz) scan)."""
        mask = self._indices == j
        return dict(zip(self._row_ids[mask].tolist(), self._data[mask].tolist()))

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over all stored entries as ``(row, column, value)`` triples.

        Order is deterministic: row-major, ascending column within each row.
        """
        return zip(
            self._row_ids.tolist(), self._indices.tolist(), self._data.tolist()
        )

    def entries(self) -> Entries:
        """Return all stored entries as a ``{(row, column): value}`` dict."""
        return {(i, j): value for i, j, value in self.items()}

    def pattern(self) -> SparsityPattern:
        """Return the sparsity pattern ``sp(A)`` of this matrix."""
        return SparsityPattern(
            self._n, zip(self._row_ids.tolist(), self._indices.tolist())
        )

    def to_dense(self) -> np.ndarray:
        """Return a dense float64 copy of the matrix."""
        dense = np.zeros((self._n, self._n), dtype=float)
        dense[self._row_ids, self._indices] = self._data
        return dense

    # ------------------------------------------------------------------ #
    # Structure / numeric predicates
    # ------------------------------------------------------------------ #
    def is_symmetric(self, tolerance: float = 1e-12) -> bool:
        """Return ``True`` when ``A`` equals its transpose within ``tolerance``."""
        transposed = kernels.csr_transpose(self._n, *self.csr_arrays())
        _, _, own, other = kernels.csr_aligned_values(
            self._n, self.csr_arrays(), transposed
        )
        if own.size == 0:
            return True
        return bool(np.max(np.abs(own - other)) <= tolerance)

    def is_diagonally_dominant(self) -> bool:
        """Return ``True`` when every row is weakly diagonally dominant."""
        on_diagonal = self._row_ids == self._indices
        diagonal = np.zeros(self._n, dtype=np.float64)
        diagonal[self._row_ids[on_diagonal]] = self._data[on_diagonal]
        off = np.bincount(
            self._row_ids[~on_diagonal],
            weights=np.abs(self._data[~on_diagonal]),
            minlength=self._n,
        )[: self._n]
        return bool(np.all(np.abs(diagonal) + 1e-15 >= off))

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def matvec(self, x: Sequence[float]) -> np.ndarray:
        """Return ``A @ x`` for a dense vector ``x``."""
        vector = np.asarray(x, dtype=float)
        if vector.shape != (self._n,):
            raise DimensionError(
                f"vector of length {vector.shape} incompatible with n={self._n}"
            )
        return kernels.csr_matvec(
            self._n, self._indptr, self._indices, self._data, vector,
            row_ids=self._row_ids,
        )

    def rmatvec(self, x: Sequence[float]) -> np.ndarray:
        """Return ``A.T @ x`` for a dense vector ``x``."""
        vector = np.asarray(x, dtype=float)
        if vector.shape != (self._n,):
            raise DimensionError(
                f"vector of length {vector.shape} incompatible with n={self._n}"
            )
        return kernels.csr_rmatvec(self._n, self._indptr, self._indices, self._data, vector)

    def matmat(self, block: Sequence[Sequence[float]]) -> np.ndarray:
        """Return ``A @ X`` for a dense ``(n, k)`` block of column vectors.

        Each output column is bitwise identical to ``matvec`` of the matching
        input column (see the determinism contract in
        :mod:`repro.sparse.kernels`).
        """
        dense = np.asarray(block, dtype=float)
        if dense.ndim != 2 or dense.shape[0] != self._n:
            raise DimensionError(
                f"block of shape {dense.shape} incompatible with n={self._n}"
            )
        return kernels.csr_matmat(
            self._n, self._indptr, self._indices, self._data, dense,
            row_ids=self._row_ids,
        )

    def multiply(self, other: "SparseMatrix") -> "SparseMatrix":
        """Return the sparse-sparse product ``A @ B`` as a new matrix.

        Runs on the vectorized :func:`~repro.sparse.kernels.csr_spgemm`
        kernel: deterministic (identical inputs give identical bits) with
        the same structure as the historical dict-of-dicts product and
        values equal to it up to the rounding of the pairwise reduction.
        """
        self._check_compatible(other)
        return SparseMatrix._from_csr(
            self._n,
            *kernels.csr_spgemm(
                self._n,
                self._indptr,
                self._indices,
                self._data,
                other._indptr,
                other._indices,
                other._data,
            ),
        )

    def __matmul__(self, other: object):
        if isinstance(other, SparseMatrix):
            return self.multiply(other)
        return NotImplemented

    def transpose(self) -> "SparseMatrix":
        """Return the transposed matrix."""
        return SparseMatrix._from_csr(
            self._n, *kernels.csr_transpose(self._n, *self.csr_arrays())
        )

    def scale(self, factor: float) -> "SparseMatrix":
        """Return ``factor * A`` (products that are exactly zero are dropped)."""
        scaled = self._data * float(factor)
        keep = scaled != 0.0
        if np.all(keep):
            # Structure unchanged: share the (read-only) index arrays.
            return SparseMatrix._from_csr(self._n, self._indptr, self._indices, scaled)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self._row_ids[keep], minlength=self._n)[: self._n],
            out=indptr[1:],
        )
        return SparseMatrix._from_csr(
            self._n, indptr, self._indices[keep], scaled[keep]
        )

    def add(self, other: "SparseMatrix") -> "SparseMatrix":
        """Return ``A + B`` (entries that cancel exactly are dropped)."""
        self._check_compatible(other)
        return SparseMatrix._from_csr(
            self._n,
            *kernels.csr_from_coo(
                self._n,
                np.concatenate([self._row_ids, other._row_ids]),
                np.concatenate([self._indices, other._indices]),
                np.concatenate([self._data, other._data]),
            ),
        )

    def subtract(self, other: "SparseMatrix") -> "SparseMatrix":
        """Return ``A - B``."""
        return self.add(other.scale(-1.0))

    __add__ = add
    __sub__ = subtract

    def delta_entries(self, other: "SparseMatrix", tolerance: float = _DEFAULT_TOLERANCE) -> Entries:
        """Return the entries of ``other - self`` whose magnitude exceeds ``tolerance``.

        This is the sparse "update matrix" ``ΔA`` that incremental decomposition
        algorithms consume when moving from one snapshot to the next.  The
        mapping iterates deterministically in row-major order.
        """
        self._check_compatible(other)
        rows, cols, vals = kernels.csr_delta(
            self._n, self.csr_arrays(), other.csr_arrays(), tolerance=tolerance
        )
        return {
            (i, j): value
            for i, j, value in zip(rows.tolist(), cols.tolist(), vals.tolist())
        }

    def _check_compatible(self, other: "SparseMatrix") -> None:
        if self._n != other._n:
            raise DimensionError(
                f"matrices have different dimensions: {self._n} vs {other._n}"
            )

    # ------------------------------------------------------------------ #
    # Reordering
    # ------------------------------------------------------------------ #
    def permuted(self, row_perm: Sequence[int], col_perm: Sequence[int]) -> "SparseMatrix":
        """Return the matrix reordered so that ``B[r, c] = A[row_perm[r], col_perm[c]]``.

        ``row_perm[r]`` is the original row placed at new position ``r`` and
        ``col_perm[c]`` the original column placed at new position ``c``.  This
        is exactly ``B = P A Q`` for the permutation matrices implied by the
        two sequences (see :mod:`repro.sparse.permutation`).
        """
        if len(row_perm) != self._n or len(col_perm) != self._n:
            raise DimensionError("permutation length does not match matrix dimension")
        for name, perm in (("row", row_perm), ("column", col_perm)):
            perm_arr = np.asarray(perm, dtype=np.int64)
            if perm_arr.size and (perm_arr.min() < 0 or perm_arr.max() >= self._n):
                raise DimensionError(f"{name} permutation is not a permutation of 0..n-1")
            counts = np.bincount(perm_arr, minlength=self._n)
            if counts.size != self._n or np.any(counts != 1):
                raise DimensionError(f"{name} permutation is not a permutation of 0..n-1")
        return SparseMatrix._from_csr(
            self._n,
            *kernels.csr_permute(
                self._n, self._indptr, self._indices, self._data, row_perm, col_perm
            ),
        )

    # ------------------------------------------------------------------ #
    # Comparisons / dunder helpers
    # ------------------------------------------------------------------ #
    def allclose(self, other: "SparseMatrix", tolerance: float = 1e-9) -> bool:
        """Return ``True`` when both matrices agree entry-wise within ``tolerance``."""
        self._check_compatible(other)
        _, _, own, theirs = kernels.csr_aligned_values(
            self._n, self.csr_arrays(), other.csr_arrays()
        )
        if own.size == 0:
            return True
        limit = np.maximum(
            tolerance * np.maximum(np.abs(own), np.abs(theirs)), tolerance
        )
        return bool(np.all(np.abs(own - theirs) <= limit))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrix):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._data, other._data)
        )

    def __hash__(self) -> int:  # pragma: no cover - matrices are rarely hashed
        return hash((self._n, frozenset(self.entries().items())))

    def __repr__(self) -> str:
        return f"SparseMatrix(n={self._n}, nnz={self.nnz})"


def column_normalized_adjacency(
    n: int, edges: Iterable[Tuple[int, int]]
) -> SparseMatrix:
    """Build the column-normalized adjacency matrix ``W`` used by PR/RWR/PPR.

    For an edge ``(i, j)`` (from node ``i`` to node ``j``) the matrix gets
    ``W[j, i] = 1 / out_degree(i)``, matching footnote 1 of the paper.
    Dangling nodes (out-degree zero) contribute an empty column.
    """
    edge_array = np.array([(int(i), int(j)) for i, j in edges], dtype=np.int64)
    if edge_array.size == 0:
        return SparseMatrix.zeros(n)
    sources = edge_array[:, 0]
    targets = edge_array[:, 1]
    _check_bounds(n, sources, targets)
    out_degree = np.bincount(sources, minlength=n)
    return SparseMatrix.from_coo(
        n, targets, sources, 1.0 / out_degree[sources].astype(np.float64)
    )
