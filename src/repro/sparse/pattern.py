"""Sparsity patterns and the matrix-edit-similarity measure.

A *sparsity pattern* (paper Definition 1) is the set of indices at which a
matrix holds non-zero values::

    sp(A) = {(i, j) | A(i, j) != 0}

Patterns support the set algebra the paper builds on: intersection and union
(used for the cluster bounding matrices ``A_cap`` / ``A_cup`` of Definition 7)
and the normalized *matrix edit similarity* ``mes`` of Definition 6.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Set, Tuple

from repro.errors import DimensionError
from repro.sparse.types import Index


class SparsityPattern:
    """An immutable set of non-zero positions of an ``n x n`` matrix.

    Parameters
    ----------
    n:
        Matrix dimension.
    indices:
        Iterable of ``(row, column)`` pairs with ``0 <= row, column < n``.
    """

    __slots__ = ("_n", "_indices")

    def __init__(self, n: int, indices: Iterable[Index] = ()) -> None:
        if n < 0:
            raise DimensionError(f"matrix dimension must be non-negative, got {n}")
        self._n = n
        frozen: FrozenSet[Index] = frozenset((int(i), int(j)) for i, j in indices)
        for i, j in frozen:
            if not (0 <= i < n and 0 <= j < n):
                raise DimensionError(
                    f"index ({i}, {j}) out of bounds for a {n}x{n} matrix"
                )
        self._indices = frozen

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self._n

    @property
    def indices(self) -> FrozenSet[Index]:
        """The underlying frozen set of ``(row, column)`` pairs."""
        return self._indices

    def __len__(self) -> int:
        return len(self._indices)

    def __iter__(self) -> Iterator[Index]:
        return iter(self._indices)

    def __contains__(self, index: Index) -> bool:
        return index in self._indices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparsityPattern):
            return NotImplemented
        return self._n == other._n and self._indices == other._indices

    def __hash__(self) -> int:
        return hash((self._n, self._indices))

    def __repr__(self) -> str:
        return f"SparsityPattern(n={self._n}, nnz={len(self._indices)})"

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: "SparsityPattern") -> None:
        if self._n != other._n:
            raise DimensionError(
                f"patterns have different dimensions: {self._n} vs {other._n}"
            )

    def union(self, other: "SparsityPattern") -> "SparsityPattern":
        """Return the pattern containing positions non-zero in either matrix."""
        self._check_compatible(other)
        return SparsityPattern(self._n, self._indices | other._indices)

    def intersection(self, other: "SparsityPattern") -> "SparsityPattern":
        """Return the pattern containing positions non-zero in both matrices."""
        self._check_compatible(other)
        return SparsityPattern(self._n, self._indices & other._indices)

    def difference(self, other: "SparsityPattern") -> "SparsityPattern":
        """Return positions present here but absent from ``other``."""
        self._check_compatible(other)
        return SparsityPattern(self._n, self._indices - other._indices)

    def symmetric_difference(self, other: "SparsityPattern") -> "SparsityPattern":
        """Return positions present in exactly one of the two patterns."""
        self._check_compatible(other)
        return SparsityPattern(self._n, self._indices ^ other._indices)

    def issubset(self, other: "SparsityPattern") -> bool:
        """Return ``True`` if every position here also appears in ``other``."""
        self._check_compatible(other)
        return self._indices <= other._indices

    def issuperset(self, other: "SparsityPattern") -> bool:
        """Return ``True`` if this pattern contains every position of ``other``."""
        self._check_compatible(other)
        return self._indices >= other._indices

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference
    __le__ = issubset
    __ge__ = issuperset

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def row(self, i: int) -> Set[int]:
        """Return the set of column indices with a non-zero in row ``i``."""
        return {c for r, c in self._indices if r == i}

    def column(self, j: int) -> Set[int]:
        """Return the set of row indices with a non-zero in column ``j``."""
        return {r for r, c in self._indices if c == j}

    def transpose(self) -> "SparsityPattern":
        """Return the pattern of the transposed matrix."""
        return SparsityPattern(self._n, ((j, i) for i, j in self._indices))

    def is_symmetric(self) -> bool:
        """Return ``True`` if the pattern equals its transpose."""
        return all((j, i) in self._indices for i, j in self._indices)

    def with_full_diagonal(self) -> "SparsityPattern":
        """Return the pattern augmented with every diagonal position."""
        diag = {(i, i) for i in range(self._n)}
        return SparsityPattern(self._n, self._indices | diag)

    def density(self) -> float:
        """Fraction of positions that are non-zero (0.0 for the empty matrix)."""
        if self._n == 0:
            return 0.0
        return len(self._indices) / float(self._n * self._n)


def matrix_edit_similarity(a: SparsityPattern, b: SparsityPattern) -> float:
    """Normalized matrix edit similarity (paper Definition 6).

    ``mes(A, B) = 2 |sp(A) ∩ sp(B)| / (|sp(A)| + |sp(B)|)``

    Two empty patterns are defined to be identical (similarity ``1.0``).
    """
    if a.n != b.n:
        raise DimensionError(f"patterns have different dimensions: {a.n} vs {b.n}")
    total = len(a) + len(b)
    if total == 0:
        return 1.0
    return 2.0 * len(a.indices & b.indices) / total


def pattern_from_entries(n: int, entries: Iterable[Tuple[int, int]]) -> SparsityPattern:
    """Build a :class:`SparsityPattern` from an iterable of index pairs."""
    return SparsityPattern(n, entries)
