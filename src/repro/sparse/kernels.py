"""Vectorized array kernels over the CSR substrate.

Every hot inner loop of the library funnels through this module: sparse
matrix-vector products, snapshot deltas, permutation gathers and the batched
multi-right-hand-side triangular solves.  The kernels operate on the raw
``indptr`` / ``indices`` / ``data`` arrays of a CSR matrix (plus the expanded
per-entry row ids where that saves a pass), so :class:`~repro.sparse.csr.
SparseMatrix` and the LU layer stay thin wrappers around NumPy calls instead
of pure-Python loops.

Determinism contract
--------------------
All reductions are performed with ``np.bincount`` (sequential per bin, input
order) or with per-column elementwise scatter updates.  In particular the
triangular-solve kernels use *only* elementwise operations, so solving a
block of ``k`` right-hand sides is bitwise identical, column for column, to
solving each column separately.  The scalar substitution routines in
:mod:`repro.lu.solve` are thin ``k = 1`` wrappers around the batched kernels,
which is what lets the test-suite assert bitwise equality between batched and
scalar measure series.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, SingularMatrixError

#: Pivots below this magnitude abort a triangular solve.
PIVOT_TOLERANCE = 1e-12

#: The canonical CSR triple: ``indptr`` (n+1), ``indices`` (nnz), ``data`` (nnz).
CSRArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


# ---------------------------------------------------------------------- #
# Construction
# ---------------------------------------------------------------------- #
def csr_from_coo(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    sum_duplicates: bool = True,
) -> CSRArrays:
    """Canonicalize COO triples into CSR arrays.

    The result is row-major with strictly increasing column indices inside
    each row; duplicate positions are summed (in input order, matching the
    sequential accumulation of the old dict-based builder) and exact zeros
    are dropped *after* summation, so values that cancel disappear.
    Indices are assumed to be in range.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    if rows.size == 0:
        return (
            np.zeros(n + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
    keys = rows * np.int64(n) + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    if sum_duplicates:
        boundaries = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
        keys = keys[boundaries]
        vals = np.add.reduceat(vals, boundaries)
    nonzero = vals != 0.0
    keys = keys[nonzero]
    vals = vals[nonzero]
    out_rows = keys // n
    indices = keys - out_rows * n
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_rows, minlength=n), out=indptr[1:])
    return indptr, indices, vals


def expand_row_ids(n: int, indptr: np.ndarray) -> np.ndarray:
    """Return the per-entry row id array (COO rows) of a CSR matrix."""
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))


# ---------------------------------------------------------------------- #
# Products
# ---------------------------------------------------------------------- #
def csr_matvec(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
    row_ids: np.ndarray = None,
) -> np.ndarray:
    """Return ``A @ x``.

    Per-row accumulation happens inside one ``np.bincount`` call, which sums
    sequentially in storage (ascending-column) order — deterministic across
    runs and platforms.
    """
    if row_ids is None:
        row_ids = expand_row_ids(n, indptr)
    products = data * x[indices]
    return np.bincount(row_ids, weights=products, minlength=n)[:n]


def csr_rmatvec(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Return ``A.T @ x``."""
    products = data * np.repeat(x, np.diff(indptr))
    return np.bincount(indices, weights=products, minlength=n)[:n]


def csr_matmat(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense: np.ndarray,
    row_ids: np.ndarray = None,
) -> np.ndarray:
    """Return ``A @ X`` for a dense ``(n, k)`` block of column vectors.

    Columns are processed independently with :func:`csr_matvec`, so every
    column is bitwise identical to a standalone matvec of that column.
    """
    if row_ids is None:
        row_ids = expand_row_ids(n, indptr)
    out = np.empty((n, dense.shape[1]), dtype=np.float64)
    for column in range(dense.shape[1]):
        out[:, column] = csr_matvec(
            n, indptr, indices, data, dense[:, column], row_ids=row_ids
        )
    return out


def csr_spgemm(
    n: int,
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_data: np.ndarray,
    b_indptr: np.ndarray,
    b_indices: np.ndarray,
    b_data: np.ndarray,
) -> CSRArrays:
    """Return the CSR arrays of the sparse-sparse product ``A @ B``.

    Every nonzero ``A[i, k]`` is expanded against the whole of row ``k`` of
    ``B`` with one gather, and the resulting COO triples are canonicalized by
    :func:`csr_from_coo`.  Contributions to one output entry are ordered as
    the historical dict-of-dicts product ordered them (row-major over ``A``
    with ``k`` increasing) and reduced with NumPy's pairwise summation, so
    the product is deterministic — identical operands give identical bits —
    and agrees with the sequential dict accumulation to within the rounding
    of the reduction tree.  Exact cancellations are dropped.
    """
    counts = b_indptr[a_indices + 1] - b_indptr[a_indices]
    total = int(counts.sum())
    if total == 0:
        return csr_from_coo(
            n, np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.float64)
        )
    a_rows = expand_row_ids(n, a_indptr)
    out_rows = np.repeat(a_rows, counts)
    # For A-nonzero t the expansion covers B slots b_indptr[k] … b_indptr[k+1);
    # build those ranges as a flat offset array without a Python loop.
    starts = np.repeat(b_indptr[a_indices], counts)
    local = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    slots = starts + local
    out_cols = b_indices[slots]
    out_vals = np.repeat(a_data, counts) * b_data[slots]
    return csr_from_coo(n, out_rows, out_cols, out_vals)


# ---------------------------------------------------------------------- #
# Structure transforms
# ---------------------------------------------------------------------- #
def csr_permute(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    row_perm: Sequence[int],
    col_perm: Sequence[int],
) -> CSRArrays:
    """Reorder so that ``B[r, c] = A[row_perm[r], col_perm[c]]``.

    Implemented as an index gather: entry ``A[i, j]`` lands at
    ``(inv_row[i], inv_col[j])`` where ``inv`` inverts the "new -> original"
    permutations.
    """
    row_perm = np.asarray(row_perm, dtype=np.int64)
    col_perm = np.asarray(col_perm, dtype=np.int64)
    inv_row = np.empty(n, dtype=np.int64)
    inv_col = np.empty(n, dtype=np.int64)
    inv_row[row_perm] = np.arange(n, dtype=np.int64)
    inv_col[col_perm] = np.arange(n, dtype=np.int64)
    rows = expand_row_ids(n, indptr)
    return csr_from_coo(n, inv_row[rows], inv_col[indices], data, sum_duplicates=False)


def csr_transpose(
    n: int, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray
) -> CSRArrays:
    """Return the CSR arrays of ``A.T``."""
    rows = expand_row_ids(n, indptr)
    return csr_from_coo(n, indices, rows, data, sum_duplicates=False)


# ---------------------------------------------------------------------- #
# Entry-wise combination
# ---------------------------------------------------------------------- #
def csr_delta(
    n: int,
    a: CSRArrays,
    b: CSRArrays,
    tolerance: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return COO triples of ``B - A`` whose magnitude exceeds ``tolerance``.

    This is the sparse update matrix ``ΔA`` consumed by the incremental
    decomposition algorithms.  Output is sorted row-major.
    """
    indptr_a, indices_a, data_a = a
    indptr_b, indices_b, data_b = b
    rows = np.concatenate([expand_row_ids(n, indptr_b), expand_row_ids(n, indptr_a)])
    cols = np.concatenate([indices_b, indices_a])
    vals = np.concatenate([data_b, -data_a])
    if rows.size == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        return empty_i, empty_i.copy(), np.zeros(0, dtype=np.float64)
    keys = rows * np.int64(n) + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    boundaries = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
    keys = keys[boundaries]
    sums = np.add.reduceat(vals, boundaries)
    keep = np.abs(sums) > tolerance
    keys = keys[keep]
    sums = sums[keep]
    out_rows = keys // n
    return out_rows, keys - out_rows * n, sums


def csr_aligned_values(
    n: int, a: CSRArrays, b: CSRArrays
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Align two matrices on the union of their patterns.

    Returns ``(rows, cols, values_a, values_b)`` over every position stored
    in either matrix (absent positions read as 0.0) — the raw material for
    vectorized entry-wise comparisons such as ``allclose`` and symmetry
    checks.
    """
    indptr_a, indices_a, data_a = a
    indptr_b, indices_b, data_b = b
    keys_a = expand_row_ids(n, indptr_a) * np.int64(max(n, 1)) + indices_a
    keys_b = expand_row_ids(n, indptr_b) * np.int64(max(n, 1)) + indices_b
    keys_union = np.union1d(keys_a, keys_b)
    values_a = np.zeros(keys_union.size, dtype=np.float64)
    values_b = np.zeros(keys_union.size, dtype=np.float64)
    values_a[np.searchsorted(keys_union, keys_a)] = data_a
    values_b[np.searchsorted(keys_union, keys_b)] = data_b
    rows = keys_union // max(n, 1)
    cols = keys_union - rows * max(n, 1)
    return rows, cols, values_a, values_b


# ---------------------------------------------------------------------- #
# Batched triangular solves (LU factor protocol)
# ---------------------------------------------------------------------- #
def _as_rhs_block(n: int, block) -> np.ndarray:
    """Copy a right-hand-side block into a float64 ``(n, k)`` array."""
    array = np.array(block, dtype=np.float64)
    if array.ndim != 2 or array.shape[0] != n:
        raise DimensionError(
            f"right-hand-side block of shape {array.shape} incompatible with n={n}"
        )
    return array


def _u_columns(factors) -> Tuple[List[List[int]], List[List[float]]]:
    """Assemble ``U``'s column structure from its row-major storage."""
    n = factors.n
    column_rows: List[List[int]] = [[] for _ in range(n)]
    column_vals: List[List[float]] = [[] for _ in range(n)]
    for i in range(n):
        for j, value in factors.u_row_entries(i):
            column_rows[j].append(i)
            column_vals[j].append(value)
    return column_rows, column_vals


def forward_substitution_many(factors, block) -> np.ndarray:
    """Solve ``L Y = B`` for a dense ``(n, k)`` block of right-hand sides.

    Column-oriented outer-product sweep matching the column-major storage of
    ``L``.  Only elementwise scatter updates are used, so each column of the
    result is bitwise identical to a ``k = 1`` solve of that column.
    """
    n = factors.n
    block = _as_rhs_block(n, block)
    for j in range(n):
        pivot = factors.l_diagonal(j)
        if abs(pivot) <= PIVOT_TOLERANCE:
            raise SingularMatrixError(j, pivot)
        block[j] /= pivot
        entries = factors.l_column_entries(j)
        if entries:
            rows = np.fromiter((i for i, _ in entries), dtype=np.intp, count=len(entries))
            vals = np.fromiter((v for _, v in entries), dtype=np.float64, count=len(entries))
            block[rows] -= vals[:, None] * block[j]
    return block


def backward_substitution_many(factors, block) -> np.ndarray:
    """Solve ``U X = Y`` (unit upper ``U``) for a dense ``(n, k)`` block.

    ``U`` is stored row-major, so its columns are assembled in one pass
    before the backward column sweep; the sweep itself uses the same
    elementwise scatter updates as the forward kernel.
    """
    n = factors.n
    block = _as_rhs_block(n, block)
    column_rows, column_vals = _u_columns(factors)
    for j in range(n - 1, 0, -1):
        rows = column_rows[j]
        if rows:
            vals = np.asarray(column_vals[j], dtype=np.float64)
            block[rows] -= vals[:, None] * block[j]
    return block


def solve_factored_many(factors, block) -> np.ndarray:
    """Solve ``(L U) X = B`` for a block of right-hand sides (no reordering)."""
    return backward_substitution_many(factors, forward_substitution_many(factors, block))


# ---------------------------------------------------------------------- #
# Scalar triangular solves
# ---------------------------------------------------------------------- #
# Dedicated single-right-hand-side sweeps: scalar Python arithmetic (no
# per-column array overhead), but EXACTLY the same operation sequence as the
# batched kernels above — column-oriented, no zero-skip shortcuts — so a
# scalar solve is bitwise identical to the matching column of a batched one.
def forward_substitution_single(factors, vector: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` for one right-hand side (``vector`` is consumed)."""
    n = factors.n
    for j in range(n):
        pivot = factors.l_diagonal(j)
        if abs(pivot) <= PIVOT_TOLERANCE:
            raise SingularMatrixError(j, pivot)
        yj = vector[j] / pivot
        vector[j] = yj
        for i, value in factors.l_column_entries(j):
            vector[i] -= value * yj
    return vector


def backward_substitution_single(factors, vector: np.ndarray) -> np.ndarray:
    """Solve ``U x = y`` for one right-hand side (``vector`` is consumed)."""
    n = factors.n
    column_rows, column_vals = _u_columns(factors)
    for j in range(n - 1, 0, -1):
        xj = vector[j]
        for i, value in zip(column_rows[j], column_vals[j]):
            vector[i] -= value * xj
    return vector
