"""Permutations and matrix orderings.

The paper (Definition 2) represents an *ordering* as a pair of permutation
matrices ``O = (P, Q)``; a matrix ``A`` is reordered as ``A^O = P A Q``.  Here
permutations are stored as integer sequences rather than explicit matrices:

* a :class:`Permutation` ``p`` maps *new* position ``k`` to *original* index
  ``p[k]``;
* an :class:`Ordering` stores a row permutation and a column permutation and
  knows how to reorder matrices and translate right-hand sides / solutions
  between the original and the reordered coordinate systems.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, OrderingError
from repro.sparse.csr import SparseMatrix


class Permutation:
    """A permutation of ``{0, …, n-1}`` stored as "new position -> original index"."""

    __slots__ = ("_order",)

    def __init__(self, order: Sequence[int]) -> None:
        order_list = [int(x) for x in order]
        n = len(order_list)
        if sorted(order_list) != list(range(n)):
            raise OrderingError(f"not a permutation of 0..{n - 1}: {order_list}")
        self._order = order_list

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """Return the identity permutation on ``n`` elements."""
        return cls(list(range(n)))

    @property
    def n(self) -> int:
        """Number of elements."""
        return len(self._order)

    @property
    def order(self) -> List[int]:
        """The "new -> original" index list (a copy)."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def __getitem__(self, new_position: int) -> int:
        return self._order[new_position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self._order == other._order

    def __hash__(self) -> int:
        return hash(tuple(self._order))

    def __repr__(self) -> str:
        preview = self._order if len(self._order) <= 8 else self._order[:8] + ["..."]
        return f"Permutation({preview})"

    def inverse(self) -> "Permutation":
        """Return the inverse permutation ("original -> new" becomes "new -> original")."""
        inverse_order = [0] * len(self._order)
        for new_position, original in enumerate(self._order):
            inverse_order[original] = new_position
        return Permutation(inverse_order)

    def compose(self, other: "Permutation") -> "Permutation":
        """Return the permutation that applies ``other`` first, then ``self``."""
        if len(self._order) != len(other._order):
            raise OrderingError("cannot compose permutations of different sizes")
        return Permutation([other._order[k] for k in self._order])

    def apply_to_vector(self, vector: Sequence[float]) -> np.ndarray:
        """Return the vector expressed in the permuted coordinate system.

        Output position ``k`` receives input position ``self[k]``.
        """
        array = np.asarray(vector, dtype=float)
        if array.shape != (len(self._order),):
            raise DimensionError(
                f"vector of shape {array.shape} incompatible with permutation size {len(self._order)}"
            )
        return array[self._order]

    def to_matrix(self) -> SparseMatrix:
        """Return the explicit permutation matrix ``P`` with ``P[k, self[k]] = 1``."""
        return SparseMatrix(
            len(self._order), {(k, original): 1.0 for k, original in enumerate(self._order)}
        )


class Ordering:
    """A matrix ordering ``O = (P, Q)`` (paper Definition 2).

    ``row`` plays the role of ``P`` and ``column`` the role of ``Q``:
    ``A^O[r, c] = A[row[r], column[c]]``.
    """

    __slots__ = ("_row", "_column")

    def __init__(self, row: Permutation, column: Permutation) -> None:
        if row.n != column.n:
            raise OrderingError("row and column permutations must have equal size")
        self._row = row
        self._column = column

    @classmethod
    def identity(cls, n: int) -> "Ordering":
        """Return the identity ordering on ``n`` elements."""
        return cls(Permutation.identity(n), Permutation.identity(n))

    @classmethod
    def symmetric(cls, order: Sequence[int]) -> "Ordering":
        """Return the symmetric ordering that applies ``order`` to rows and columns."""
        permutation = Permutation(order)
        return cls(permutation, permutation)

    @classmethod
    def from_sequences(cls, row: Sequence[int], column: Sequence[int]) -> "Ordering":
        """Build an ordering from two "new -> original" index sequences."""
        return cls(Permutation(row), Permutation(column))

    @property
    def n(self) -> int:
        """Matrix dimension the ordering applies to."""
        return self._row.n

    @property
    def row(self) -> Permutation:
        """The row permutation ``P``."""
        return self._row

    @property
    def column(self) -> Permutation:
        """The column permutation ``Q``."""
        return self._column

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ordering):
            return NotImplemented
        return self._row == other._row and self._column == other._column

    def __hash__(self) -> int:
        return hash((self._row, self._column))

    def __repr__(self) -> str:
        return f"Ordering(n={self.n})"

    def is_symmetric(self) -> bool:
        """Return ``True`` when the same permutation is applied to rows and columns."""
        return self._row == self._column

    # ------------------------------------------------------------------ #
    # Applying the ordering
    # ------------------------------------------------------------------ #
    def apply(self, matrix: SparseMatrix) -> SparseMatrix:
        """Return the reordered matrix ``A^O = P A Q``."""
        if matrix.n != self.n:
            raise DimensionError(
                f"matrix dimension {matrix.n} incompatible with ordering size {self.n}"
            )
        return matrix.permuted(self._row.order, self._column.order)

    def map_entries(self, entries) -> dict:
        """Map sparse entries given in original coordinates into reordered coordinates.

        ``entries`` is a ``{(row, column): value}`` mapping (e.g. a sparse
        update matrix ``ΔA``); the result indexes the same values at their
        positions in ``A^O``.  This avoids materializing whole reordered
        matrices when only a small delta is needed.
        """
        new_row_of = {original: new for new, original in enumerate(self._row.order)}
        new_col_of = {original: new for new, original in enumerate(self._column.order)}
        return {
            (new_row_of[i], new_col_of[j]): value for (i, j), value in entries.items()
        }

    def permute_rhs(self, b: Sequence[float]) -> np.ndarray:
        """Map a right-hand side ``b`` of ``A x = b`` into ``b' = P b``."""
        return self._row.apply_to_vector(b)

    def permute_rhs_many(self, block) -> np.ndarray:
        """Map an ``(n, k)`` block of right-hand sides into ``B' = P B``."""
        array = np.asarray(block, dtype=float)
        if array.ndim != 2 or array.shape[0] != self.n:
            raise DimensionError(
                f"block of shape {array.shape} incompatible with ordering size {self.n}"
            )
        return array[self._row.order, :]

    def unpermute_solution(self, x_prime: Sequence[float]) -> np.ndarray:
        """Map a solution of ``A^O x' = P b`` back to the original ``x = Q x'``.

        With ``Q`` stored as "new -> original" on columns, original index
        ``column[c]`` receives reordered position ``c``.
        """
        array = np.asarray(x_prime, dtype=float)
        if array.shape != (self.n,):
            raise DimensionError(
                f"vector of shape {array.shape} incompatible with ordering size {self.n}"
            )
        x = np.zeros(self.n, dtype=float)
        x[self._column.order] = array
        return x

    def unpermute_solution_many(self, block) -> np.ndarray:
        """Map an ``(n, k)`` block of reordered solutions back via ``X = Q X'``."""
        array = np.asarray(block, dtype=float)
        if array.ndim != 2 or array.shape[0] != self.n:
            raise DimensionError(
                f"block of shape {array.shape} incompatible with ordering size {self.n}"
            )
        x = np.empty_like(array)
        x[self._column.order, :] = array
        return x


def random_ordering(n: int, rng: np.random.Generator) -> Ordering:
    """Return a uniformly random symmetric ordering (useful for tests)."""
    order = list(rng.permutation(n))
    return Ordering.symmetric([int(x) for x in order])


def natural_ordering(n: int) -> Ordering:
    """Alias for the identity ordering, matching sparse-direct-solver jargon."""
    return Ordering.identity(n)
