"""Shared type aliases for the sparse-matrix subsystem."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

#: A matrix index (row, column).
Index = Tuple[int, int]

#: A mapping from matrix index to numeric value; the canonical "dictionary of
#: keys" representation used to exchange data between sparse containers.
Entries = Dict[Index, float]

#: Anything that yields ``(row, column, value)`` triples.
Triples = Iterable[Tuple[int, int, float]]
