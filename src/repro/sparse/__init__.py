"""Sparse-matrix substrate: patterns, matrices, adjacency lists, orderings and kernels."""

from repro.sparse import kernels
from repro.sparse.csr import SparseMatrix, column_normalized_adjacency
from repro.sparse.lil import AdjacencyListMatrix
from repro.sparse.pattern import SparsityPattern, matrix_edit_similarity
from repro.sparse.permutation import Ordering, Permutation, natural_ordering, random_ordering

__all__ = [
    "SparseMatrix",
    "AdjacencyListMatrix",
    "SparsityPattern",
    "matrix_edit_similarity",
    "Ordering",
    "Permutation",
    "natural_ordering",
    "random_ordering",
    "column_normalized_adjacency",
    "kernels",
]
