"""A mutable adjacency-list sparse matrix.

The paper (Section 2.3, Figure 4) stores matrices and their LU factors as
per-row adjacency lists of non-zero entries.  :class:`AdjacencyListMatrix`
reproduces that representation: each row keeps a sorted list of
``(column, value)`` pairs, and structural changes (inserting or deleting a
node in the list) are explicit, countable operations.  The *structural
operation counter* lets the benchmarks demonstrate the paper's profiling
observation that roughly 70% of a straightforward incremental update is
spent restructuring these lists — the cost CLUDE's static USSP structure
eliminates.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import DimensionError
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from repro.sparse.types import Entries


class AdjacencyListMatrix:
    """A mutable sparse matrix backed by per-row sorted adjacency lists.

    Parameters
    ----------
    n:
        Matrix dimension.
    entries:
        Optional initial entries.
    """

    __slots__ = ("_n", "_columns", "_values", "structural_ops")

    def __init__(self, n: int, entries: Optional[Entries] = None) -> None:
        if n < 0:
            raise DimensionError(f"matrix dimension must be non-negative, got {n}")
        self._n = n
        self._columns: List[List[int]] = [[] for _ in range(n)]
        self._values: List[List[float]] = [[] for _ in range(n)]
        #: Number of structural list modifications (node inserts/deletes)
        #: performed since construction or the last :meth:`reset_counters`.
        self.structural_ops = 0
        if entries:
            for (i, j), value in sorted(entries.items()):
                if value != 0.0:
                    self.set(i, j, float(value))
            # Initial population is not counted as incremental restructuring.
            self.structural_ops = 0

    # ------------------------------------------------------------------ #
    # Constructors / converters
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sparse(cls, matrix: SparseMatrix) -> "AdjacencyListMatrix":
        """Build an adjacency-list copy of a :class:`SparseMatrix`."""
        return cls(matrix.n, matrix.entries())

    def to_sparse(self) -> SparseMatrix:
        """Lower the builder to an immutable CSR :class:`SparseMatrix`.

        The per-row adjacency lists are kept sorted, duplicate-free and
        zero-free by :meth:`set`, so the concatenated arrays are already
        canonical CSR and can be adopted directly — no re-sort.
        """
        lengths = [len(row) for row in self._columns]
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.fromiter(
            (j for row in self._columns for j in row), dtype=np.int64, count=total
        )
        data = np.fromiter(
            (v for row in self._values for v in row), dtype=np.float64, count=total
        )
        return SparseMatrix._from_csr(self._n, indptr, indices, data)

    def copy(self) -> "AdjacencyListMatrix":
        """Return a deep copy (structural counter reset to zero)."""
        clone = AdjacencyListMatrix(self._n)
        clone._columns = [list(row) for row in self._columns]
        clone._values = [list(row) for row in self._values]
        return clone

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self._n

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return sum(len(row) for row in self._columns)

    def get(self, i: int, j: int) -> float:
        """Return the value at ``(i, j)``; absent entries read as 0.0."""
        self._check_index(i, j)
        columns = self._columns[i]
        position = bisect.bisect_left(columns, j)
        if position < len(columns) and columns[position] == j:
            return self._values[i][position]
        return 0.0

    def __getitem__(self, index: Tuple[int, int]) -> float:
        i, j = index
        return self.get(i, j)

    def row_items(self, i: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(column, value)`` pairs of row ``i`` in column order."""
        return zip(self._columns[i], self._values[i])

    def row_columns(self, i: int) -> List[int]:
        """Return the sorted column indices with stored entries in row ``i``."""
        return list(self._columns[i])

    def items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over all entries as ``(row, column, value)`` triples."""
        for i in range(self._n):
            for j, value in zip(self._columns[i], self._values[i]):
                yield i, j, value

    def entries(self) -> Entries:
        """Return all entries as a ``{(row, column): value}`` dict."""
        return {(i, j): v for i, j, v in self.items()}

    def pattern(self) -> SparsityPattern:
        """Return the sparsity pattern of the currently stored entries."""
        return SparsityPattern(self._n, ((i, j) for i, j, _ in self.items()))

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def set(self, i: int, j: int, value: float) -> None:
        """Set entry ``(i, j)`` to ``value``.

        Setting an absent entry inserts a list node (one structural op);
        setting an existing entry to zero removes the node (one structural
        op); updating an existing entry in place is purely numerical.
        """
        self._check_index(i, j)
        columns = self._columns[i]
        values = self._values[i]
        position = bisect.bisect_left(columns, j)
        present = position < len(columns) and columns[position] == j
        if value == 0.0:
            if present:
                del columns[position]
                del values[position]
                self.structural_ops += 1
            return
        if present:
            values[position] = value
        else:
            columns.insert(position, j)
            values.insert(position, value)
            self.structural_ops += 1

    def add_to(self, i: int, j: int, delta: float) -> None:
        """Add ``delta`` to entry ``(i, j)`` (creating or deleting nodes as needed)."""
        self.set(i, j, self.get(i, j) + delta)

    def clear_row(self, i: int) -> None:
        """Remove every stored entry of row ``i``."""
        self._check_index(i, 0 if self._n else 0)
        self.structural_ops += len(self._columns[i])
        self._columns[i] = []
        self._values[i] = []

    def reset_counters(self) -> None:
        """Reset the structural operation counter to zero."""
        self.structural_ops = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise DimensionError(
                f"index ({i}, {j}) out of bounds for a {self._n}x{self._n} matrix"
            )

    def __repr__(self) -> str:
        return f"AdjacencyListMatrix(n={self._n}, nnz={self.nnz})"
