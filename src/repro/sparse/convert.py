"""Conversions between :class:`~repro.sparse.csr.SparseMatrix` and third-party formats.

These helpers are convenience glue for users who already have data in
``scipy.sparse`` or ``networkx`` form; the library itself never depends on
them for its core algorithms.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.errors import DimensionError
from repro.sparse.csr import SparseMatrix


def to_scipy(matrix: SparseMatrix) -> Any:
    """Return a ``scipy.sparse.csr_matrix`` copy of ``matrix``.

    Raises
    ------
    ImportError
        If SciPy is not installed.
    """
    from scipy.sparse import csr_matrix

    rows = []
    cols = []
    vals = []
    for i, j, value in matrix.items():
        rows.append(i)
        cols.append(j)
        vals.append(value)
    return csr_matrix((vals, (rows, cols)), shape=matrix.shape)


def from_scipy(sparse_matrix: Any) -> SparseMatrix:
    """Build a :class:`SparseMatrix` from any square ``scipy.sparse`` matrix."""
    coo = sparse_matrix.tocoo()
    if coo.shape[0] != coo.shape[1]:
        raise DimensionError(f"expected a square matrix, got shape {coo.shape}")
    triples = zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist())
    return SparseMatrix.from_triples(coo.shape[0], triples)


def from_networkx(graph: Any, nodelist: Iterable[Any] | None = None) -> SparseMatrix:
    """Build the (unnormalized) adjacency matrix of a networkx graph.

    Parameters
    ----------
    graph:
        A ``networkx`` graph or digraph.
    nodelist:
        Optional explicit node order; defaults to ``sorted(graph.nodes)``.
    """
    nodes = list(nodelist) if nodelist is not None else sorted(graph.nodes)
    index_of = {node: position for position, node in enumerate(nodes)}
    n = len(nodes)

    def triples() -> Iterable[Tuple[int, int, float]]:
        for u, v, data in graph.edges(data=True):
            weight = float(data.get("weight", 1.0))
            yield index_of[u], index_of[v], weight
            if not graph.is_directed():
                yield index_of[v], index_of[u], weight

    return SparseMatrix.from_triples(n, triples())


def to_networkx(matrix: SparseMatrix, directed: bool = True) -> Any:
    """Return a networkx graph whose weighted edges mirror the matrix entries."""
    import networkx as nx

    graph = nx.DiGraph() if directed else nx.Graph()
    graph.add_nodes_from(range(matrix.n))
    for i, j, value in matrix.items():
        graph.add_edge(i, j, weight=value)
    return graph
