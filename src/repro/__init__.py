"""repro — a reproduction of CLUDE (EDBT 2014).

CLUDE decomposes every matrix of an *evolving matrix sequence* into LU
factors quickly and with few fill-ins, by clustering similar snapshots,
ordering each cluster by its union matrix, and reusing one static data
structure (built from the cluster's universal symbolic sparsity pattern) for
Bennett-style incremental updates.

Typical usage::

    from repro import EMSSolver, EvolvingMatrixSequence
    from repro.datasets import load_wiki

    egs = load_wiki("tiny")
    ems = EvolvingMatrixSequence.from_graphs(egs)
    solver = EMSSolver(ems, algorithm="CLUDE", alpha=0.95)
    series = solver.solve_series(b)          # one solve per snapshot
"""

from repro.core.solver import EMSSolver, available_algorithms
from repro.exec import ParallelExecutor, SerialExecutor
from repro.graphs.delta import GraphDelta
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import (
    MatrixKind,
    delta_provider,
    register_delta_provider,
    registered_delta_kinds,
    system_delta,
)
from repro.graphs.snapshot import GraphSnapshot
from repro.policy import CorrectedPolicy, ExactPolicy, QCPolicy, ReusePolicy
from repro.query import (
    ApproximationRecord,
    FactorCache,
    MeasureSpec,
    Query,
    QueryBatch,
    QueryPlanner,
    ResolutionLadder,
    ResolutionTier,
    ResultCache,
    registered_measures,
)
from repro.serve import MeasureServer, ServerStats
from repro.shard import SharedMemoryArena, ShardedPlanner
from repro.store import FactorStore
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from repro.sparse.permutation import Ordering, Permutation
from repro.version import __version__

__all__ = [
    "__version__",
    "SparseMatrix",
    "SparsityPattern",
    "Ordering",
    "Permutation",
    "GraphSnapshot",
    "GraphDelta",
    "EvolvingGraphSequence",
    "EvolvingMatrixSequence",
    "MatrixKind",
    "system_delta",
    "delta_provider",
    "register_delta_provider",
    "registered_delta_kinds",
    "FactorCache",
    "FactorStore",
    "ResultCache",
    "ApproximationRecord",
    "ReusePolicy",
    "ExactPolicy",
    "QCPolicy",
    "CorrectedPolicy",
    "EMSSolver",
    "available_algorithms",
    "SerialExecutor",
    "ParallelExecutor",
    "MeasureSpec",
    "Query",
    "QueryBatch",
    "QueryPlanner",
    "ResolutionLadder",
    "ResolutionTier",
    "registered_measures",
    "MeasureServer",
    "ServerStats",
    "SharedMemoryArena",
    "ShardedPlanner",
]
