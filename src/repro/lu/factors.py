"""Containers for LU factors.

The paper stores the decomposed matrix ``Â = L + U`` in adjacency lists
(Figure 4).  The library uses Crout's convention throughout: ``L`` is lower
triangular and carries the pivots on its diagonal, ``U`` is *unit* upper
triangular (its unit diagonal is implicit and never stored).

Two interchangeable containers implement the same informal protocol:

* :class:`LUFactors` (this module) — the *dynamic* representation used by
  BF, INC and CINC.  ``L`` is held column-by-column and ``U`` row-by-row in
  :class:`~repro.sparse.lil.AdjacencyListMatrix` adjacency lists whose
  structure grows and shrinks as values appear and vanish.  Structural list
  operations are counted, which is how the benchmarks surface the paper's
  observation that restructuring dominates a naive incremental update.
* :class:`~repro.lu.static_structure.StaticLUFactors` — the CLUDE
  representation: one pre-allocated structure derived from a cluster's
  universal symbolic sparsity pattern, reused by every member matrix, with
  no structural operations at all.

The shared protocol (used by Crout, Bennett and the triangular solvers):

``l_get(i, j)``, ``l_set(i, j, v)``, ``u_get(i, j)``, ``u_set(i, j, v)``,
``l_column_entries(j)`` (strictly-below-diagonal entries of column ``j``),
``u_row_entries(i)`` (strictly-right-of-diagonal entries of row ``i``),
``l_diagonal(k)`` / ``set_l_diagonal(k, v)``, ``fill_size``,
``structural_ops``, ``decomposed_pattern()``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import DimensionError
from repro.sparse.csr import SparseMatrix
from repro.sparse.kernels import solve_factored_many
from repro.sparse.lil import AdjacencyListMatrix
from repro.sparse.pattern import SparsityPattern


class LUFactors:
    """LU factors stored in dynamic adjacency lists.

    ``L`` is stored column-major (the internal matrix ``_lower_t`` holds
    ``L[i, j]`` at position ``(j, i)``), because both Bennett's algorithm and
    the outer-product forward substitution sweep down columns of ``L``.
    ``U`` is stored row-major.
    """

    __slots__ = ("_n", "_lower_t", "_upper")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise DimensionError(f"matrix dimension must be non-negative, got {n}")
        self._n = n
        self._lower_t = AdjacencyListMatrix(n)
        self._upper = AdjacencyListMatrix(n)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self._n

    # ------------------------------------------------------------------ #
    # Element access
    # ------------------------------------------------------------------ #
    def l_get(self, i: int, j: int) -> float:
        """Return ``L[i, j]`` (zero above the diagonal)."""
        if j > i:
            return 0.0
        return self._lower_t.get(j, i)

    def l_set(self, i: int, j: int, value: float) -> None:
        """Set ``L[i, j]`` (requires ``j <= i``)."""
        if j > i:
            raise DimensionError(f"L is lower triangular; cannot set ({i}, {j})")
        self._lower_t.set(j, i, value)

    def u_get(self, i: int, j: int) -> float:
        """Return ``U[i, j]`` including the implicit unit diagonal."""
        if i == j:
            return 1.0
        if i > j:
            return 0.0
        return self._upper.get(i, j)

    def u_set(self, i: int, j: int, value: float) -> None:
        """Set ``U[i, j]`` for ``j > i`` (the unit diagonal is implicit)."""
        if j <= i:
            raise DimensionError(
                f"U stores strictly upper entries only; cannot set ({i}, {j})"
            )
        self._upper.set(i, j, value)

    def l_diagonal(self, k: int) -> float:
        """Return the pivot ``L[k, k]``."""
        return self._lower_t.get(k, k)

    def set_l_diagonal(self, k: int, value: float) -> None:
        """Set the pivot ``L[k, k]``."""
        self._lower_t.set(k, k, value)

    # ------------------------------------------------------------------ #
    # Structured iteration
    # ------------------------------------------------------------------ #
    def l_column_entries(self, j: int) -> List[Tuple[int, float]]:
        """Return ``[(i, L[i, j])]`` for stored entries strictly below the diagonal."""
        return [(i, value) for i, value in self._lower_t.row_items(j) if i > j]

    def u_row_entries(self, i: int) -> List[Tuple[int, float]]:
        """Return ``[(j, U[i, j])]`` for stored entries strictly right of the diagonal."""
        return [(j, value) for j, value in self._upper.row_items(i) if j > i]

    def l_items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over stored entries of ``L`` as ``(row, column, value)``."""
        for j, i, value in self._lower_t.items():
            yield i, j, value

    def u_items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over stored entries of ``U`` (excluding the unit diagonal)."""
        yield from self._upper.items()

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve_many(self, block) -> np.ndarray:
        """Solve ``(L U) X = B`` for a dense ``(n, k)`` block of right-hand sides.

        One forward and one backward sweep answer all ``k`` columns at once;
        each column is bitwise identical to a scalar
        :func:`repro.lu.solve.solve_factored` of that column.
        """
        return solve_factored_many(self, block)

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #
    @property
    def fill_size(self) -> int:
        """Number of stored entries of ``L`` plus ``U`` (size of ``sp(Â)``)."""
        return self._lower_t.nnz + self._upper.nnz

    @property
    def structural_ops(self) -> int:
        """Structural list operations performed on either factor since the last reset."""
        return self._lower_t.structural_ops + self._upper.structural_ops

    def reset_counters(self) -> None:
        """Reset structural operation counters on both factors."""
        self._lower_t.reset_counters()
        self._upper.reset_counters()

    def decomposed_pattern(self) -> SparsityPattern:
        """Return ``sp(Â)``: positions of stored entries of ``L`` and ``U``."""
        indices = {(i, j) for i, j, _ in self.l_items()}
        indices.update((i, j) for i, j, _ in self.u_items())
        return SparsityPattern(self._n, indices)

    # ------------------------------------------------------------------ #
    # Dense export / reconstruction (testing and validation helpers)
    # ------------------------------------------------------------------ #
    def l_dense(self) -> np.ndarray:
        """Return ``L`` as a dense array."""
        dense = np.zeros((self._n, self._n), dtype=float)
        for i, j, value in self.l_items():
            dense[i, j] = value
        return dense

    def u_dense(self) -> np.ndarray:
        """Return ``U`` (with its unit diagonal) as a dense array."""
        dense = np.eye(self._n, dtype=float)
        for i, j, value in self.u_items():
            dense[i, j] = value
        return dense

    def reconstruct(self) -> SparseMatrix:
        """Return ``L @ U`` as a :class:`SparseMatrix`."""
        return SparseMatrix.from_dense(self.l_dense() @ self.u_dense())

    def copy(self) -> "LUFactors":
        """Return a deep copy (structural counters reset)."""
        clone = LUFactors(self._n)
        clone._lower_t = self._lower_t.copy()
        clone._upper = self._upper.copy()
        return clone

    def __repr__(self) -> str:
        return f"LUFactors(n={self._n}, fill_size={self.fill_size})"
