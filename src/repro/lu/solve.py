"""Triangular solves and the full reordered-system solve path.

Once a matrix is decomposed, any right-hand side is handled with one forward
and one backward substitution (paper Section 2.1/2.2):

    A x = b   ⇔   A^O (Q^{-1} x) = P b   ⇔   L (U x') = b'

so ``x' = backward(U, forward(L, P b))`` and ``x = Q x'``.

A whole block of right-hand sides (e.g. the 64 query vectors of a proximity
sweep) is handled by the ``*_many`` variants, which run the same sweeps once
with column-vectorized updates instead of once per right-hand side.  The
scalar routines are thin ``k = 1`` wrappers around the batched kernels in
:mod:`repro.sparse.kernels`, so scalar and batched answers are bitwise
identical column for column.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DimensionError
from repro.sparse.kernels import (
    PIVOT_TOLERANCE,
    backward_substitution_many,
    backward_substitution_single,
    forward_substitution_many,
    forward_substitution_single,
    solve_factored_many,
)
from repro.sparse.permutation import Ordering

__all__ = [
    "PIVOT_TOLERANCE",
    "forward_substitution",
    "backward_substitution",
    "forward_substitution_many",
    "backward_substitution_many",
    "solve_factored",
    "solve_factored_many",
    "solve_reordered_system",
    "solve_reordered_system_many",
]


def _as_vector(factors, b: Sequence[float]) -> np.ndarray:
    """Validate a scalar right-hand side and return a float64 working copy."""
    n = factors.n
    vector = np.array(b, dtype=float)
    if vector.shape != (n,):
        raise DimensionError(
            f"right-hand side of shape {vector.shape} incompatible with n={n}"
        )
    return vector


def forward_substitution(factors, b: Sequence[float]) -> np.ndarray:
    """Solve ``L y = b`` where ``L`` is the lower factor of ``factors``.

    Uses the column-oriented (outer-product) sweep, which matches the
    column-major storage of ``L`` in both factor containers.  The operation
    sequence is identical to :func:`forward_substitution_many`, so the result
    is bitwise equal to the matching column of a batched solve.
    """
    return forward_substitution_single(factors, _as_vector(factors, b))


def backward_substitution(factors, y: Sequence[float]) -> np.ndarray:
    """Solve ``U x = y`` where ``U`` is the unit upper factor of ``factors``."""
    return backward_substitution_single(factors, _as_vector(factors, y))


def solve_factored(factors, b: Sequence[float]) -> np.ndarray:
    """Solve ``(L U) x = b`` given already-computed factors (no reordering)."""
    return backward_substitution(factors, forward_substitution(factors, b))


def solve_reordered_system(
    factors,
    ordering: Optional[Ordering],
    b: Sequence[float],
) -> np.ndarray:
    """Solve the original system ``A x = b`` given factors of ``A^O``.

    Parameters
    ----------
    factors:
        LU factors of the reordered matrix ``A^O``.
    ordering:
        The ordering ``O = (P, Q)`` that was applied before decomposition;
        ``None`` means the identity ordering.
    b:
        Right-hand side in original coordinates.

    Returns
    -------
    numpy.ndarray
        The solution ``x`` in original coordinates.
    """
    if ordering is None:
        return solve_factored(factors, b)
    b_prime = ordering.permute_rhs(b)
    x_prime = solve_factored(factors, b_prime)
    return ordering.unpermute_solution(x_prime)


def solve_reordered_system_many(
    factors,
    ordering: Optional[Ordering],
    block: Sequence[Sequence[float]],
) -> np.ndarray:
    """Solve ``A X = B`` for a dense ``(n, k)`` block of right-hand sides.

    The batched analogue of :func:`solve_reordered_system`: one forward and
    one backward sweep answer all ``k`` columns, and each column of the
    result is bitwise identical to a scalar solve of that column.
    """
    if ordering is None:
        return solve_factored_many(factors, block)
    b_prime = ordering.permute_rhs_many(block)
    x_prime = solve_factored_many(factors, b_prime)
    return ordering.unpermute_solution_many(x_prime)
