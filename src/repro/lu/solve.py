"""Triangular solves and the full reordered-system solve path.

Once a matrix is decomposed, any right-hand side is handled with one forward
and one backward substitution (paper Section 2.1/2.2):

    A x = b   ⇔   A^O (Q^{-1} x) = P b   ⇔   L (U x') = b'

so ``x' = backward(U, forward(L, P b))`` and ``x = Q x'``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DimensionError, SingularMatrixError
from repro.sparse.permutation import Ordering

#: Pivots below this magnitude abort a triangular solve.
PIVOT_TOLERANCE = 1e-12


def forward_substitution(factors, b: Sequence[float]) -> np.ndarray:
    """Solve ``L y = b`` where ``L`` is the lower factor of ``factors``.

    Uses the column-oriented (outer-product) sweep, which matches the
    column-major storage of ``L`` in both factor containers.
    """
    n = factors.n
    y = np.array(b, dtype=float)
    if y.shape != (n,):
        raise DimensionError(f"right-hand side of shape {y.shape} incompatible with n={n}")
    for j in range(n):
        pivot = factors.l_diagonal(j)
        if abs(pivot) <= PIVOT_TOLERANCE:
            raise SingularMatrixError(j, pivot)
        y[j] = y[j] / pivot
        yj = y[j]
        if yj != 0.0:
            for i, value in factors.l_column_entries(j):
                if value != 0.0:
                    y[i] -= value * yj
    return y


def backward_substitution(factors, y: Sequence[float]) -> np.ndarray:
    """Solve ``U x = y`` where ``U`` is the unit upper factor of ``factors``."""
    n = factors.n
    x = np.array(y, dtype=float)
    if x.shape != (n,):
        raise DimensionError(f"right-hand side of shape {x.shape} incompatible with n={n}")
    for i in range(n - 1, -1, -1):
        total = x[i]
        for j, value in factors.u_row_entries(i):
            if value != 0.0:
                total -= value * x[j]
        x[i] = total
    return x


def solve_factored(factors, b: Sequence[float]) -> np.ndarray:
    """Solve ``(L U) x = b`` given already-computed factors (no reordering)."""
    return backward_substitution(factors, forward_substitution(factors, b))


def solve_reordered_system(
    factors,
    ordering: Optional[Ordering],
    b: Sequence[float],
) -> np.ndarray:
    """Solve the original system ``A x = b`` given factors of ``A^O``.

    Parameters
    ----------
    factors:
        LU factors of the reordered matrix ``A^O``.
    ordering:
        The ordering ``O = (P, Q)`` that was applied before decomposition;
        ``None`` means the identity ordering.
    b:
        Right-hand side in original coordinates.

    Returns
    -------
    numpy.ndarray
        The solution ``x`` in original coordinates.
    """
    if ordering is None:
        return solve_factored(factors, b)
    b_prime = ordering.permute_rhs(b)
    x_prime = solve_factored(factors, b_prime)
    return ordering.unpermute_solution(x_prime)
