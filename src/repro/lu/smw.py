"""Sherman–Morrison–Woodbury correction over already-computed LU factors.

The serving-side middle ground between answering *verbatim* from a similar
cached system (zero numerical work, loss bounded by the full ``‖ΔA‖₁``) and
Bennett-refreshing or re-factorizing (near-exact, but O(n·nnz) work): solve
against the *corrected* system ``A + U Vᵀ`` — the cached system plus the
dominant rank-``k`` part of the delta — using only the cached factors of
``A``.  By the Woodbury identity::

    (A + U Vᵀ)⁻¹ b  =  A⁻¹ b  -  A⁻¹ U (I_k + Vᵀ A⁻¹ U)⁻¹ Vᵀ A⁻¹ b

so after a one-time setup of ``Y = A⁻¹ U`` (one batched triangular sweep of
``k`` columns through the cached factors — dynamic :class:`~repro.lu.factors.
LUFactors` and static :class:`~repro.lu.static_structure.StaticLUFactors`
alike) and the tiny ``k×k`` *capacitance* matrix ``C = I_k + Vᵀ Y``, every
subsequent right-hand-side block costs exactly one extra rank-``k`` GEMM and
one ``k×k`` dense solve on top of the ordinary substitution sweep.

The corrector is deliberately dumb about *where* ``U Vᵀ`` comes from: the
reuse-policy layer (:class:`~repro.policy.corrected.CorrectedPolicy`) selects
whole columns of a system delta ``ΔA`` (``V``'s columns are then unit
vectors, so ``Vᵀ x`` is a row gather), which is what keeps the corrected
system certifiable — a column-wise mix of two column-substochastic walk
matrices is still column-substochastic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DimensionError, SingularMatrixError
from repro.lu.solve import solve_reordered_system_many
from repro.sparse.permutation import Ordering

#: Capacitance matrices whose condition number exceeds this are rejected at
#: construction time (a nearly singular ``C`` means the corrected system is
#: nearly singular and the correction numerically untrustworthy).
CONDITION_LIMIT = 1e12


class WoodburyCorrector:
    """Answer ``(A + U Vᵀ) x = b`` through the cached factors of ``A``.

    ``V`` is restricted to columns of the identity (``V[:, t] = e_{j_t}``),
    i.e. the update replaces whole columns ``j_t`` of ``A`` by adding the
    dense column ``U[:, t]`` — the shape produced by selecting columns of a
    sparse system delta.  ``Vᵀ z`` is then just ``z[columns]``.

    Parameters
    ----------
    factors:
        LU factor container of the (possibly reordered) base matrix ``A``.
    ordering:
        The ordering applied before decomposition (``None`` = identity);
        right-hand sides and solutions stay in original coordinates, exactly
        like :func:`~repro.lu.solve.solve_reordered_system_many`.
    update_columns:
        Dense ``(n, k)`` block whose column ``t`` is the delta applied to
        column ``columns[t]`` of ``A``.
    columns:
        The ``k`` column indices being corrected (distinct, in ``[0, n)``).
    condition_limit:
        Reject correctors whose capacitance condition number exceeds this
        (raises :class:`~repro.errors.SingularMatrixError`, so callers fall
        back to refresh / cold factorization instead of serving garbage).

    Raises
    ------
    SingularMatrixError
        When the ``k×k`` capacitance matrix is singular or worse conditioned
        than ``condition_limit``.
    """

    __slots__ = ("_factors", "_ordering", "_columns", "_y", "_capacitance", "_rank")

    def __init__(
        self,
        factors,
        ordering: Optional[Ordering],
        update_columns,
        columns: Sequence[int],
        condition_limit: float = CONDITION_LIMIT,
    ) -> None:
        n = factors.n
        block = np.asarray(update_columns, dtype=float)
        cols = np.asarray(list(columns), dtype=np.int64)
        if block.ndim != 2 or block.shape != (n, cols.size):
            raise DimensionError(
                f"update block of shape {block.shape} incompatible with "
                f"n={n}, k={cols.size}"
            )
        if cols.size and (cols.min() < 0 or cols.max() >= n):
            raise DimensionError(
                f"corrected column index out of bounds for n={n}"
            )
        if len(set(cols.tolist())) != cols.size:
            raise DimensionError("corrected column indices must be distinct")
        self._factors = factors
        self._ordering = ordering
        self._columns = cols
        self._rank = int(cols.size)
        if self._rank == 0:
            # Rank-0 corrector: a pure pass-through to the base factors.
            self._y = None
            self._capacitance = None
            return
        # One-time setup: k extra triangular sweeps (one batched call) plus
        # the k×k capacitance.  In exact arithmetic C is nonsingular whenever
        # the corrected system is (det(A + UVᵀ) = det(A)·det(C)).
        y = solve_reordered_system_many(factors, ordering, block)
        capacitance = np.eye(self._rank, dtype=float) + y[cols, :]
        if not np.all(np.isfinite(capacitance)):
            raise SingularMatrixError(0, float("nan"))
        condition = float(np.linalg.cond(capacitance))
        if not np.isfinite(condition) or condition > condition_limit:
            raise SingularMatrixError(0, 1.0 / max(condition, 1.0))
        self._y = y
        self._capacitance = capacitance

    @property
    def rank(self) -> int:
        """The rank ``k`` of the applied correction (0 = pass-through)."""
        return self._rank

    @property
    def columns(self) -> Sequence[int]:
        """The corrected column indices (a copy)."""
        return tuple(self._columns.tolist())

    def solve_many(self, block) -> np.ndarray:
        """Solve ``(A + U Vᵀ) X = B`` for a dense ``(n, k_rhs)`` block.

        One ordinary batched substitution sweep through the cached factors,
        one ``k×k`` dense solve, one rank-``k`` GEMM.  A rank-0 corrector
        returns the base solve unchanged — bitwise identical to answering
        from the cached factors directly (verbatim reuse).
        """
        base = solve_reordered_system_many(self._factors, self._ordering, block)
        if self._rank == 0:
            return base
        gathered = base[self._columns, :]
        return base - self._y @ np.linalg.solve(self._capacitance, gathered)

    def solve(self, b) -> np.ndarray:
        """Solve ``(A + U Vᵀ) x = b`` for one right-hand side."""
        vector = np.asarray(b, dtype=float)
        if vector.shape != (self._factors.n,):
            raise DimensionError(
                f"right-hand side of shape {vector.shape} incompatible with "
                f"n={self._factors.n}"
            )
        return self.solve_many(vector.reshape(-1, 1))[:, 0]
