"""Bennett's algorithm: incremental update of LU factors.

Bennett (1965) showed how to update the triangular factors of a matrix after
a low-rank modification ``A' = A + X Y^T`` at a cost proportional to the rank
of the update times the number of non-zeros in the factors, instead of
re-decomposing from scratch.  The incremental algorithms of the paper (INC,
CINC and CLUDE) all rely on this routine to move from one snapshot's factors
to the next.

The implementation works on the Crout convention used throughout the library
(``L`` lower triangular with explicit pivots, ``U`` unit upper triangular).
Rank-k updates are applied as a sequence of rank-1 sweeps; the sparse update
matrix ``ΔA`` is converted to rank-1 terms by grouping its entries by column
or by row, whichever yields fewer terms.

Per elimination step ``k`` the rank-1 sweep applies (with ``d = L[k, k]``)::

    d'        = d + u[k] v[k]
    L[i, k]'  = L[i, k] + v[k] u[i]                    (i > k)
    U[k, j]'  = (d U[k, j] + u[k] v[j]) / d'           (j > k)
    u[i]'     = (d u[i] - u[k] L[i, k]) / d'           (i > k)
    v[j]'     = v[j] - v[k] U[k, j]                    (j > k)

Two execution paths share these formulas:

* the *generic* path drives any factor container through its protocol
  methods — used for the dynamic adjacency-list factors of INC and CINC,
  where every newly created non-zero costs a structural list operation;
* the *static* fast path addresses the pre-allocated slot arrays of
  :class:`~repro.lu.static_structure.StaticLUFactors` directly — the payoff
  of CLUDE's universal static structure is exactly that updates become pure
  in-place numeric writes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import PatternError, SingularMatrixError
from repro.lu.static_structure import StaticLUFactors
from repro.sparse.types import Entries

#: Pivots whose updated magnitude falls below this threshold abort the update.
PIVOT_TOLERANCE = 1e-12

#: Updated values whose magnitude falls below this threshold are stored as
#: exact zeros, preventing the dynamic structures from accumulating noise.
DROP_TOLERANCE = 1e-14

#: A value that "wants" to land outside a static structure's admissible
#: pattern is tolerated (skipped) when smaller than this — such values are
#: floating-point residue of positions that are exactly zero in exact
#: arithmetic.  Anything larger indicates a genuine pattern violation.
OUTSIDE_PATTERN_TOLERANCE = 1e-9

#: A sparse vector represented as an ``{index: value}`` mapping.
SparseVector = Dict[int, float]


def delta_to_rank_one_terms(delta: Entries) -> List[Tuple[SparseVector, SparseVector]]:
    """Convert a sparse update matrix ``ΔA`` into rank-1 terms ``u v^T``.

    Entries are grouped by column when the update touches fewer columns than
    rows, and by row otherwise, so the number of rank-1 sweeps equals the
    smaller of the two counts (an upper bound on the true rank of ``ΔA``).
    """
    if not delta:
        return []
    columns = {j for (_, j) in delta}
    rows = {i for (i, _) in delta}
    terms: List[Tuple[SparseVector, SparseVector]] = []
    if len(columns) <= len(rows):
        by_column: Dict[int, SparseVector] = {}
        for (i, j), value in delta.items():
            by_column.setdefault(j, {})[i] = value
        for j in sorted(by_column):
            terms.append((by_column[j], {j: 1.0}))
    else:
        by_row: Dict[int, SparseVector] = {}
        for (i, j), value in delta.items():
            by_row.setdefault(i, {})[j] = value
        for i in sorted(by_row):
            terms.append(({i: 1.0}, by_row[i]))
    return terms


def _clean_vector(vector: SparseVector, n: int) -> SparseVector:
    """Validate indices and drop explicit zeros from an update vector."""
    cleaned: SparseVector = {}
    for index, value in vector.items():
        index = int(index)
        if not 0 <= index < n:
            raise PatternError(f"update index {index} out of bounds for n={n}")
        value = float(value)
        if value != 0.0:
            cleaned[index] = value
    return cleaned


def bennett_rank_one_update(
    factors,
    u: SparseVector,
    v: SparseVector,
    pivot_tolerance: float = PIVOT_TOLERANCE,
    drop_tolerance: float = DROP_TOLERANCE,
) -> int:
    """Update ``factors`` in place so they factor ``L U + u v^T``.

    Parameters
    ----------
    factors:
        A factor container (dynamic or static) currently holding ``A = L U``.
    u, v:
        The rank-1 update vectors as sparse ``{index: value}`` mappings.
    pivot_tolerance:
        Updated pivots smaller than this raise
        :class:`~repro.errors.SingularMatrixError`.
    drop_tolerance:
        Values below this magnitude are treated as exact zeros.

    Returns
    -------
    int
        The number of elimination steps that performed numerical work (a
        proxy for the cost of the sweep, useful in benchmarks).
    """
    if isinstance(factors, StaticLUFactors):
        return _rank_one_update_static(factors, u, v, pivot_tolerance, drop_tolerance)
    return _rank_one_update_generic(factors, u, v, pivot_tolerance, drop_tolerance)


def _rank_one_update_generic(
    factors,
    u: SparseVector,
    v: SparseVector,
    pivot_tolerance: float,
    drop_tolerance: float,
) -> int:
    """Rank-1 sweep through the factor-container protocol (dynamic structures)."""
    n = factors.n
    u_work = _clean_vector(u, n)
    v_work = _clean_vector(v, n)

    active_steps = 0
    for k in range(n):
        uk = u_work.pop(k, 0.0)
        vk = v_work.pop(k, 0.0)
        if uk == 0.0 and vk == 0.0:
            continue
        active_steps += 1
        d_old = factors.l_diagonal(k)
        d_new = d_old + uk * vk
        if abs(d_new) <= pivot_tolerance:
            raise SingularMatrixError(k, d_new)
        factors.set_l_diagonal(k, d_new)

        # ----- column k of L, and propagation of u ---------------------- #
        column = factors.l_column_entries(k)
        stored_rows = set()
        for i, l_old in column:
            stored_rows.add(i)
            ui_old = u_work.get(i, 0.0)
            if l_old == 0.0 and ui_old == 0.0:
                continue
            if vk != 0.0 and ui_old != 0.0:
                l_new = l_old + vk * ui_old
                if abs(l_new) < drop_tolerance:
                    l_new = 0.0
                factors.l_set(i, k, l_new)
            if uk != 0.0:
                ui_new = (d_old * ui_old - uk * l_old) / d_new
                if abs(ui_new) < drop_tolerance:
                    u_work.pop(i, None)
                else:
                    u_work[i] = ui_new
        for i in [index for index in u_work if index > k and index not in stored_rows]:
            ui_old = u_work[i]
            if vk != 0.0:
                fill_value = vk * ui_old
                if abs(fill_value) >= drop_tolerance:
                    factors.l_set(i, k, fill_value)
            if uk != 0.0 and d_new != d_old:
                ui_new = d_old * ui_old / d_new
                if abs(ui_new) < drop_tolerance:
                    del u_work[i]
                else:
                    u_work[i] = ui_new

        # ----- row k of U, and propagation of v -------------------------- #
        row = factors.u_row_entries(k)
        stored_columns = set()
        for j, u_kj_old in row:
            stored_columns.add(j)
            vj_old = v_work.get(j, 0.0)
            if u_kj_old == 0.0 and vj_old == 0.0:
                continue
            if uk != 0.0:
                u_kj_new = (d_old * u_kj_old + uk * vj_old) / d_new
                if abs(u_kj_new) < drop_tolerance:
                    u_kj_new = 0.0
                factors.u_set(k, j, u_kj_new)
            elif d_new != d_old and u_kj_old != 0.0:
                factors.u_set(k, j, d_old * u_kj_old / d_new)
            if vk != 0.0 and u_kj_old != 0.0:
                vj_new = vj_old - vk * u_kj_old
                if abs(vj_new) < drop_tolerance:
                    v_work.pop(j, None)
                else:
                    v_work[j] = vj_new
        if uk != 0.0:
            for j in [index for index in v_work if index > k and index not in stored_columns]:
                fill_value = uk * v_work[j] / d_new
                if abs(fill_value) >= drop_tolerance:
                    factors.u_set(k, j, fill_value)
    return active_steps


def _rank_one_update_static(
    factors: StaticLUFactors,
    u: SparseVector,
    v: SparseVector,
    pivot_tolerance: float,
    drop_tolerance: float,
) -> int:
    """Rank-1 sweep specialised for the pre-allocated CLUDE structure.

    Every write lands in an existing slot, addressed directly — no list
    scanning, no node insertion, no per-write position lookup beyond a slot
    dictionary probe for the (rare) values arriving at a previously-zero
    position.
    """
    n = factors.n
    l_col_rows = factors._l_col_rows
    l_col_values = factors._l_col_values
    l_col_slot = factors._l_col_slot
    u_row_cols = factors._u_row_cols
    u_row_values = factors._u_row_values
    u_row_slot = factors._u_row_slot
    diagonal = factors._diagonal

    u_work = _clean_vector(u, n)
    v_work = _clean_vector(v, n)

    active_steps = 0
    for k in range(n):
        uk = u_work.pop(k, 0.0)
        vk = v_work.pop(k, 0.0)
        if uk == 0.0 and vk == 0.0:
            continue
        active_steps += 1
        d_old = float(diagonal[k])
        d_new = d_old + uk * vk
        if abs(d_new) <= pivot_tolerance:
            raise SingularMatrixError(k, d_new)
        diagonal[k] = d_new

        # ----- column k of L, and propagation of u ---------------------- #
        rows = l_col_rows[k]
        values = l_col_values[k]
        slot_of = l_col_slot[k]
        for slot in range(len(rows)):
            i = rows[slot]
            l_old = values[slot]
            ui_old = u_work.get(i, 0.0)
            if l_old == 0.0 and ui_old == 0.0:
                continue
            if vk != 0.0 and ui_old != 0.0:
                values[slot] = l_old + vk * ui_old
            if uk != 0.0:
                ui_new = (d_old * ui_old - uk * l_old) / d_new
                if abs(ui_new) < drop_tolerance:
                    u_work.pop(i, None)
                else:
                    u_work[i] = ui_new
        for i in [index for index in u_work if index > k and index not in slot_of]:
            ui_old = u_work[i]
            if vk != 0.0 and abs(vk * ui_old) > OUTSIDE_PATTERN_TOLERANCE:
                raise PatternError(
                    f"fill-in at ({i}, {k}) falls outside the universal pattern"
                )
            if uk != 0.0 and d_new != d_old:
                ui_new = d_old * ui_old / d_new
                if abs(ui_new) < drop_tolerance:
                    del u_work[i]
                else:
                    u_work[i] = ui_new

        # ----- row k of U, and propagation of v -------------------------- #
        cols = u_row_cols[k]
        row_values = u_row_values[k]
        slot_of_u = u_row_slot[k]
        for slot in range(len(cols)):
            j = cols[slot]
            u_kj_old = row_values[slot]
            vj_old = v_work.get(j, 0.0)
            if u_kj_old == 0.0 and vj_old == 0.0:
                continue
            if uk != 0.0:
                row_values[slot] = (d_old * u_kj_old + uk * vj_old) / d_new
            elif d_new != d_old and u_kj_old != 0.0:
                row_values[slot] = d_old * u_kj_old / d_new
            if vk != 0.0 and u_kj_old != 0.0:
                vj_new = vj_old - vk * u_kj_old
                if abs(vj_new) < drop_tolerance:
                    v_work.pop(j, None)
                else:
                    v_work[j] = vj_new
        if uk != 0.0:
            for j in [index for index in v_work if index > k and index not in slot_of_u]:
                if abs(uk * v_work[j] / d_new) > OUTSIDE_PATTERN_TOLERANCE:
                    raise PatternError(
                        f"fill-in at ({k}, {j}) falls outside the universal pattern"
                    )
    return active_steps


def bennett_update(
    factors,
    delta: Entries,
    pivot_tolerance: float = PIVOT_TOLERANCE,
    drop_tolerance: float = DROP_TOLERANCE,
) -> int:
    """Apply a sparse update ``ΔA`` to existing factors via rank-1 sweeps.

    Returns the total number of active elimination steps across all sweeps.
    """
    total_steps = 0
    for u, v in delta_to_rank_one_terms(delta):
        total_steps += bennett_rank_one_update(
            factors, u, v, pivot_tolerance=pivot_tolerance, drop_tolerance=drop_tolerance
        )
    return total_steps


def apply_rank_one_dense(dense, u: Sequence[float], v: Sequence[float]):
    """Return ``dense + outer(u, v)`` (tiny helper for tests)."""
    import numpy as np

    array = np.array(dense, dtype=float)
    return array + np.outer(np.asarray(u, dtype=float), np.asarray(v, dtype=float))
