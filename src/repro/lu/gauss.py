"""Plain Gaussian elimination.

Used only as the comparison baseline for the paper's in-text claim that,
after LU decomposition, answering a query by forward/backward substitution is
orders of magnitude faster than running one Gaussian elimination per
right-hand side (Section 1: about 5000x on the authors' Wikipedia dataset).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DimensionError, SingularMatrixError
from repro.sparse.csr import SparseMatrix

#: Pivots below this magnitude are treated as zero.
PIVOT_TOLERANCE = 1e-12


def gaussian_elimination_solve(matrix: SparseMatrix, b: Sequence[float]) -> np.ndarray:
    """Solve ``A x = b`` by dense Gaussian elimination with partial pivoting.

    This intentionally re-does the elimination for every call — that is the
    cost model the paper's claim compares against.
    """
    n = matrix.n
    rhs = np.array(b, dtype=float)
    if rhs.shape != (n,):
        raise DimensionError(f"right-hand side of shape {rhs.shape} incompatible with n={n}")
    augmented = matrix.to_dense()
    x = rhs.copy()

    for k in range(n):
        pivot_row = k + int(np.argmax(np.abs(augmented[k:, k])))
        pivot = augmented[pivot_row, k]
        if abs(pivot) <= PIVOT_TOLERANCE:
            raise SingularMatrixError(k, pivot)
        if pivot_row != k:
            augmented[[k, pivot_row], :] = augmented[[pivot_row, k], :]
            x[[k, pivot_row]] = x[[pivot_row, k]]
        for i in range(k + 1, n):
            factor = augmented[i, k] / pivot
            if factor != 0.0:
                augmented[i, k:] -= factor * augmented[k, k:]
                x[i] -= factor * x[k]

    solution = np.zeros(n, dtype=float)
    for i in range(n - 1, -1, -1):
        total = x[i] - augmented[i, i + 1:] @ solution[i + 1:]
        solution[i] = total / augmented[i, i]
    return solution
