"""LU decomposition engine: symbolic analysis, orderings, Crout, Bennett, solves."""

from repro.lu.bennett import bennett_rank_one_update, bennett_update, delta_to_rank_one_terms
from repro.lu.crout import crout_decompose, crout_decompose_dense, crout_decompose_into
from repro.lu.factors import LUFactors
from repro.lu.gauss import gaussian_elimination_solve
from repro.lu.markowitz import markowitz_ordering
from repro.lu.mindegree import (
    minimum_degree_ordering,
    symmetric_markowitz_reference,
    symmetric_symbolic_size,
)
from repro.lu.smw import CONDITION_LIMIT, WoodburyCorrector
from repro.lu.solve import (
    backward_substitution,
    backward_substitution_many,
    forward_substitution,
    forward_substitution_many,
    solve_factored,
    solve_factored_many,
    solve_reordered_system,
    solve_reordered_system_many,
)
from repro.lu.static_structure import StaticLUFactors
from repro.lu.symbolic import (
    fill_in_count,
    fill_in_pattern,
    symbolic_decomposition,
    symbolic_pattern_size,
)
from repro.lu.validate import factors_are_valid, reconstruction_error, solve_residual

__all__ = [
    "LUFactors",
    "StaticLUFactors",
    "crout_decompose",
    "crout_decompose_into",
    "crout_decompose_dense",
    "bennett_update",
    "bennett_rank_one_update",
    "delta_to_rank_one_terms",
    "markowitz_ordering",
    "minimum_degree_ordering",
    "symmetric_symbolic_size",
    "symmetric_markowitz_reference",
    "symbolic_decomposition",
    "fill_in_pattern",
    "fill_in_count",
    "symbolic_pattern_size",
    "forward_substitution",
    "forward_substitution_many",
    "backward_substitution",
    "backward_substitution_many",
    "solve_factored",
    "solve_factored_many",
    "solve_reordered_system",
    "solve_reordered_system_many",
    "gaussian_elimination_solve",
    "WoodburyCorrector",
    "CONDITION_LIMIT",
    "factors_are_valid",
    "reconstruction_error",
    "solve_residual",
]
