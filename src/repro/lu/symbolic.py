"""Symbolic decomposition: fill-in patterns and symbolic sparsity patterns.

This module implements the SD-phase of Section 2.3 of the paper.  Given a
matrix pattern ``sp(A)`` it computes the *fill-in pattern* ``fp(A)``
(Equation 2) — every position ``(u, v)`` that is zero in ``A`` but reachable
through a path whose intermediate vertices all carry indices smaller than
``min(u, v)`` — and the *symbolic sparsity pattern*
``s̃p(A) = sp(A) ∪ fp(A)`` (Equation 3), which is a superset of the pattern
of the decomposed matrix ``sp(Â)``.

The computation is the classical symbolic Gaussian elimination: process the
pivots in order; at pivot ``k`` every row ``i > k`` holding a non-zero in
column ``k`` inherits the structure of row ``k`` to the right of ``k``.
This produces exactly the fill positions characterized by the fill-path
theorem used in Equation 2.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.errors import DimensionError
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern


def symbolic_decomposition(pattern: SparsityPattern) -> SparsityPattern:
    """Return ``s̃p(A)`` — the symbolic sparsity pattern of ``A``.

    The diagonal is always included because every pivot position is stored in
    the factors regardless of whether the input matrix holds an explicit
    non-zero there.

    Parameters
    ----------
    pattern:
        The sparsity pattern of the (already reordered, if applicable) matrix.
    """
    n = pattern.n
    # Row-wise structure, as sorted lists for cache-friendly merging.
    row_structure: List[Set[int]] = [set() for _ in range(n)]
    column_structure: List[Set[int]] = [set() for _ in range(n)]
    for i, j in pattern:
        row_structure[i].add(j)
        column_structure[j].add(i)
    for k in range(n):
        row_structure[k].add(k)
        column_structure[k].add(k)

    # Symbolic elimination.  After processing pivot k, row_structure[k] is the
    # final structure of row k of the factors (columns >= k live in U's row,
    # columns < k in L's row).
    for k in range(n):
        upper_part = [j for j in row_structure[k] if j > k]
        if not upper_part:
            continue
        lower_rows = [i for i in column_structure[k] if i > k]
        if not lower_rows:
            continue
        for i in lower_rows:
            target = row_structure[i]
            before = len(target)
            target.update(upper_part)
            if len(target) != before:
                for j in upper_part:
                    column_structure[j].add(i)

    indices = {(i, j) for i in range(n) for j in row_structure[i]}
    return SparsityPattern(n, indices)


def fill_in_pattern(pattern: SparsityPattern) -> SparsityPattern:
    """Return ``fp(A)`` — positions that become non-zero only through elimination.

    ``fp(A) = s̃p(A) \\ sp(A)`` excluding diagonal positions that were simply
    missing from ``sp(A)`` (the diagonal is part of the factor structure but
    is not a "fill-in" in the paper's sense of extra off-diagonal storage).
    """
    full = symbolic_decomposition(pattern)
    extra = full.indices - pattern.indices
    extra = {(i, j) for i, j in extra if i != j}
    return SparsityPattern(pattern.n, extra)


def symbolic_pattern_size(pattern: SparsityPattern) -> int:
    """Return ``|s̃p(A)|`` for a matrix pattern (diagonal included)."""
    return len(symbolic_decomposition(pattern))


def fill_in_count(pattern: SparsityPattern) -> int:
    """Return the number of off-diagonal fill-in positions ``|fp(A)|``."""
    return len(fill_in_pattern(pattern))


def reorder_pattern(pattern: SparsityPattern, row_order: Sequence[int], column_order: Sequence[int]) -> SparsityPattern:
    """Return the pattern of ``P A Q`` given "new -> original" index sequences."""
    n = pattern.n
    if len(row_order) != n or len(column_order) != n:
        raise DimensionError("permutation length does not match pattern dimension")
    new_row_of = {original: new for new, original in enumerate(row_order)}
    new_col_of = {original: new for new, original in enumerate(column_order)}
    return SparsityPattern(n, ((new_row_of[i], new_col_of[j]) for i, j in pattern))


def symbolic_pattern_of_matrix(matrix: SparseMatrix) -> SparsityPattern:
    """Convenience wrapper: ``s̃p(A)`` computed directly from a matrix."""
    return symbolic_decomposition(matrix.pattern())


def fill_path_exists(pattern: SparsityPattern, u: int, v: int) -> bool:
    """Check Equation 2 directly: is there a fill path from ``u`` to ``v``?

    A fill path is a path ``u -> u_1 -> … -> u_k -> v`` of length at least two
    whose intermediate vertices all have indices smaller than ``min(u, v)``.
    This reference implementation is exponential-free but slow (BFS over the
    restricted vertex set); it exists so that tests can cross-validate the
    elimination-based :func:`fill_in_pattern`.
    """
    n = pattern.n
    if not (0 <= u < n and 0 <= v < n):
        raise DimensionError(f"vertices ({u}, {v}) out of bounds for n={n}")
    limit = min(u, v)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for i, j in pattern:
        adjacency[i].add(j)
    # BFS from u through vertices with index < limit, looking for v, with at
    # least one intermediate vertex.
    frontier = [w for w in adjacency[u] if w < limit]
    visited = set(frontier)
    while frontier:
        next_frontier: List[int] = []
        for w in frontier:
            if v in adjacency[w]:
                return True
            for x in adjacency[w]:
                if x < limit and x not in visited:
                    visited.add(x)
                    next_frontier.append(x)
        frontier = next_frontier
    return False


def fill_in_pattern_reference(pattern: SparsityPattern) -> SparsityPattern:
    """Reference (slow) implementation of Equation 2, for cross-validation in tests."""
    n = pattern.n
    present = pattern.indices
    fills = set()
    for u in range(n):
        for v in range(n):
            if u == v or (u, v) in present:
                continue
            if fill_path_exists(pattern, u, v):
                fills.add((u, v))
    return SparsityPattern(n, fills)


def union_pattern(patterns: Iterable[SparsityPattern]) -> SparsityPattern:
    """Return the union of several sparsity patterns (all must share ``n``)."""
    patterns = list(patterns)
    if not patterns:
        raise DimensionError("cannot take the union of zero patterns")
    n = patterns[0].n
    indices: Set[Tuple[int, int]] = set()
    for pattern in patterns:
        if pattern.n != n:
            raise DimensionError("patterns have different dimensions")
        indices |= pattern.indices
    return SparsityPattern(n, indices)


def intersection_pattern(patterns: Iterable[SparsityPattern]) -> SparsityPattern:
    """Return the intersection of several sparsity patterns (all must share ``n``)."""
    patterns = list(patterns)
    if not patterns:
        raise DimensionError("cannot take the intersection of zero patterns")
    n = patterns[0].n
    indices = set(patterns[0].indices)
    for pattern in patterns[1:]:
        if pattern.n != n:
            raise DimensionError("patterns have different dimensions")
        indices &= pattern.indices
    return SparsityPattern(n, indices)
