"""The CLUDE static LU structure built from a universal symbolic sparsity pattern.

CLUDE (paper Section 4, Algorithm 3) performs one symbolic decomposition on
the cluster's union matrix ``A_∪`` to obtain a *universal symbolic sparsity
pattern* (USSP) that covers ``s̃p(A)`` of every member matrix (Theorem 1).
The USSP is turned into one pre-allocated data structure —
:class:`StaticLUFactors` — that is reused for the LU factors of every matrix
in the cluster.  Because its structure never changes, incremental updates are
purely numerical: no adjacency-list nodes are ever inserted or deleted, which
is exactly the cost the paper found to dominate a straightforward
implementation of Bennett's algorithm.

:class:`StaticLUFactors` implements the same informal protocol as
:class:`~repro.lu.factors.LUFactors`, so the Crout and Bennett routines work
on either container unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import DimensionError, PatternError
from repro.sparse.csr import SparseMatrix
from repro.sparse.kernels import solve_factored_many
from repro.sparse.pattern import SparsityPattern


class StaticLUFactors:
    """LU factors over a fixed admissible pattern (the cluster USSP).

    Parameters
    ----------
    pattern:
        The universal symbolic sparsity pattern.  Diagonal positions are
        always admitted even if absent from ``pattern``.

    Notes
    -----
    Values may be written only at admissible positions; writing elsewhere
    raises :class:`~repro.errors.PatternError`.  Reading any position is
    allowed (absent or zeroed positions read as 0.0, and ``U``'s diagonal
    reads as 1.0).
    """

    __slots__ = (
        "_n",
        "_pattern",
        "_l_col_rows",
        "_l_col_values",
        "_l_col_slot",
        "_u_row_cols",
        "_u_row_values",
        "_u_row_slot",
        "_diagonal",
    )

    def __init__(self, pattern: SparsityPattern) -> None:
        n = pattern.n
        self._n = n
        self._pattern = pattern.with_full_diagonal()

        # L stored column-major: for column j, rows strictly below the diagonal.
        self._l_col_rows: List[List[int]] = [[] for _ in range(n)]
        self._l_col_values: List[List[float]] = [[] for _ in range(n)]
        self._l_col_slot: List[Dict[int, int]] = [dict() for _ in range(n)]
        # U stored row-major: for row i, columns strictly right of the diagonal.
        self._u_row_cols: List[List[int]] = [[] for _ in range(n)]
        self._u_row_values: List[List[float]] = [[] for _ in range(n)]
        self._u_row_slot: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._diagonal = np.zeros(n, dtype=float)

        lower_positions: List[List[int]] = [[] for _ in range(n)]
        upper_positions: List[List[int]] = [[] for _ in range(n)]
        for i, j in self._pattern:
            if i > j:
                lower_positions[j].append(i)
            elif j > i:
                upper_positions[i].append(j)
        for j in range(n):
            rows = sorted(lower_positions[j])
            self._l_col_rows[j] = rows
            self._l_col_values[j] = [0.0] * len(rows)
            self._l_col_slot[j] = {row: slot for slot, row in enumerate(rows)}
        for i in range(n):
            cols = sorted(upper_positions[i])
            self._u_row_cols[i] = cols
            self._u_row_values[i] = [0.0] * len(cols)
            self._u_row_slot[i] = {col: slot for slot, col in enumerate(cols)}

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self._n

    @property
    def pattern(self) -> SparsityPattern:
        """The admissible (universal) pattern, diagonal included."""
        return self._pattern

    @property
    def capacity(self) -> int:
        """Number of allocated value slots (diagonal + strictly triangular)."""
        allocated = sum(len(rows) for rows in self._l_col_rows)
        allocated += sum(len(cols) for cols in self._u_row_cols)
        return allocated + self._n

    # ------------------------------------------------------------------ #
    # Element access (LUFactors protocol)
    # ------------------------------------------------------------------ #
    def l_get(self, i: int, j: int) -> float:
        """Return ``L[i, j]`` (zero above the diagonal or outside the pattern)."""
        if j > i:
            return 0.0
        if i == j:
            return float(self._diagonal[i])
        slot = self._l_col_slot[j].get(i)
        if slot is None:
            return 0.0
        return self._l_col_values[j][slot]

    def l_set(self, i: int, j: int, value: float) -> None:
        """Set ``L[i, j]``; the position must belong to the universal pattern."""
        if j > i:
            raise DimensionError(f"L is lower triangular; cannot set ({i}, {j})")
        if i == j:
            self._diagonal[i] = value
            return
        slot = self._l_col_slot[j].get(i)
        if slot is None:
            raise PatternError(
                f"position ({i}, {j}) is outside the universal symbolic sparsity pattern"
            )
        self._l_col_values[j][slot] = value

    def u_get(self, i: int, j: int) -> float:
        """Return ``U[i, j]`` including the implicit unit diagonal."""
        if i == j:
            return 1.0
        if i > j:
            return 0.0
        slot = self._u_row_slot[i].get(j)
        if slot is None:
            return 0.0
        return self._u_row_values[i][slot]

    def u_set(self, i: int, j: int, value: float) -> None:
        """Set ``U[i, j]`` for ``j > i``; the position must belong to the pattern."""
        if j <= i:
            raise DimensionError(
                f"U stores strictly upper entries only; cannot set ({i}, {j})"
            )
        slot = self._u_row_slot[i].get(j)
        if slot is None:
            raise PatternError(
                f"position ({i}, {j}) is outside the universal symbolic sparsity pattern"
            )
        self._u_row_values[i][slot] = value

    def l_diagonal(self, k: int) -> float:
        """Return the pivot ``L[k, k]``."""
        return float(self._diagonal[k])

    def set_l_diagonal(self, k: int, value: float) -> None:
        """Set the pivot ``L[k, k]``."""
        self._diagonal[k] = value

    # ------------------------------------------------------------------ #
    # Structured iteration (LUFactors protocol)
    # ------------------------------------------------------------------ #
    def l_column_entries(self, j: int) -> List[Tuple[int, float]]:
        """Return ``[(i, L[i, j])]`` over allocated slots strictly below the diagonal."""
        return list(zip(self._l_col_rows[j], self._l_col_values[j]))

    def u_row_entries(self, i: int) -> List[Tuple[int, float]]:
        """Return ``[(j, U[i, j])]`` over allocated slots strictly right of the diagonal."""
        return list(zip(self._u_row_cols[i], self._u_row_values[i]))

    def l_items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over non-zero entries of ``L`` (diagonal included)."""
        for k in range(self._n):
            if self._diagonal[k] != 0.0:
                yield k, k, float(self._diagonal[k])
        for j in range(self._n):
            for i, value in zip(self._l_col_rows[j], self._l_col_values[j]):
                if value != 0.0:
                    yield i, j, value

    def u_items(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over non-zero entries of ``U`` (unit diagonal excluded)."""
        for i in range(self._n):
            for j, value in zip(self._u_row_cols[i], self._u_row_values[i]):
                if value != 0.0:
                    yield i, j, value

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve_many(self, block) -> np.ndarray:
        """Solve ``(L U) X = B`` for a dense ``(n, k)`` block of right-hand sides.

        Same batched sweeps as :meth:`repro.lu.factors.LUFactors.solve_many`;
        the static structure only changes how the factor entries are stored.
        """
        return solve_factored_many(self, block)

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #
    @property
    def fill_size(self) -> int:
        """Number of currently non-zero stored entries of ``L`` plus ``U``."""
        count = int(np.count_nonzero(self._diagonal))
        count += sum(
            1 for values in self._l_col_values for value in values if value != 0.0
        )
        count += sum(
            1 for values in self._u_row_values for value in values if value != 0.0
        )
        return count

    @property
    def structural_ops(self) -> int:
        """Always zero: the static structure never changes shape."""
        return 0

    def reset_counters(self) -> None:
        """No-op, provided for protocol compatibility."""

    def reset_values(self) -> None:
        """Zero every stored value, keeping the allocated structure."""
        self._diagonal[:] = 0.0
        for values in self._l_col_values:
            for slot in range(len(values)):
                values[slot] = 0.0
        for values in self._u_row_values:
            for slot in range(len(values)):
                values[slot] = 0.0

    def decomposed_pattern(self) -> SparsityPattern:
        """Return the pattern of currently non-zero stored entries."""
        indices = {(i, j) for i, j, _ in self.l_items()}
        indices.update((i, j) for i, j, _ in self.u_items())
        return SparsityPattern(self._n, indices)

    def copy(self) -> "StaticLUFactors":
        """Return a value copy sharing the (immutable-after-init) structure.

        The slot index lists and slot dictionaries never change after
        construction — the whole point of the static structure — so they are
        shared between copies; only the value storage is duplicated.
        """
        clone = StaticLUFactors.__new__(StaticLUFactors)
        clone._n = self._n
        clone._pattern = self._pattern
        clone._l_col_rows = self._l_col_rows
        clone._l_col_values = [list(values) for values in self._l_col_values]
        clone._l_col_slot = self._l_col_slot
        clone._u_row_cols = self._u_row_cols
        clone._u_row_values = [list(values) for values in self._u_row_values]
        clone._u_row_slot = self._u_row_slot
        clone._diagonal = self._diagonal.copy()
        return clone

    # ------------------------------------------------------------------ #
    # Dense export / reconstruction
    # ------------------------------------------------------------------ #
    def l_dense(self) -> np.ndarray:
        """Return ``L`` as a dense array."""
        dense = np.zeros((self._n, self._n), dtype=float)
        for i, j, value in self.l_items():
            dense[i, j] = value
        return dense

    def u_dense(self) -> np.ndarray:
        """Return ``U`` (with its unit diagonal) as a dense array."""
        dense = np.eye(self._n, dtype=float)
        for i, j, value in self.u_items():
            dense[i, j] = value
        return dense

    def reconstruct(self) -> SparseMatrix:
        """Return ``L @ U`` as a :class:`SparseMatrix`."""
        return SparseMatrix.from_dense(self.l_dense() @ self.u_dense())

    def __repr__(self) -> str:
        return (
            f"StaticLUFactors(n={self._n}, capacity={self.capacity}, "
            f"fill_size={self.fill_size})"
        )
