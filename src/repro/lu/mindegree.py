"""Minimum-degree ordering for symmetric sparsity patterns.

The paper (Section 3) notes that for *symmetric* matrices the Markowitz
ordering and the size of the symbolic sparsity pattern ``|s̃p(A*)|`` can be
determined efficiently without actually decomposing the matrix — this is what
makes the quality-constrained LUDEM-QC problem tractable.  The classical tool
for this is the minimum-degree family of orderings (AMD being the best-known
member).  This module provides a straightforward minimum-degree ordering on
the undirected elimination graph together with a fill counter that returns
``|s̃p|`` for a symmetric pattern under a given elimination order.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Set, Union

from repro.errors import NotSymmetricError, OrderingError
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from repro.sparse.permutation import Ordering


def _symmetric_adjacency(pattern: SparsityPattern) -> List[Set[int]]:
    """Return the undirected adjacency lists of a symmetric pattern."""
    if not pattern.is_symmetric():
        raise NotSymmetricError("minimum-degree ordering requires a symmetric pattern")
    n = pattern.n
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for i, j in pattern:
        if i != j:
            adjacency[i].add(j)
            adjacency[j].add(i)
    return adjacency


def minimum_degree_ordering(
    matrix_or_pattern: Union[SparseMatrix, SparsityPattern],
) -> Ordering:
    """Return a minimum-degree (symmetric Markowitz) ordering of a symmetric matrix.

    At each step the vertex with the fewest remaining neighbours is
    eliminated; its neighbours are connected into a clique (the symbolic fill)
    before the next selection.  Ties are broken by the smallest vertex index
    so the ordering is deterministic.
    """
    pattern = (
        matrix_or_pattern.pattern()
        if isinstance(matrix_or_pattern, SparseMatrix)
        else matrix_or_pattern
    )
    n = pattern.n
    if n == 0:
        return Ordering.identity(0)
    adjacency = _symmetric_adjacency(pattern)
    eliminated = [False] * n
    order: List[int] = []

    heap = [(len(adjacency[v]), v) for v in range(n)]
    heapq.heapify(heap)

    for _ in range(n):
        while True:
            degree, vertex = heapq.heappop(heap)
            if eliminated[vertex]:
                continue
            live_degree = sum(1 for w in adjacency[vertex] if not eliminated[w])
            if degree != live_degree:
                heapq.heappush(heap, (live_degree, vertex))
                continue
            break
        order.append(vertex)
        eliminated[vertex] = True
        neighbours = [w for w in adjacency[vertex] if not eliminated[w]]
        for position, u in enumerate(neighbours):
            adjacency[u].discard(vertex)
            for w in neighbours[position + 1:]:
                if w not in adjacency[u]:
                    adjacency[u].add(w)
                    adjacency[w].add(u)
        for u in neighbours:
            heapq.heappush(
                heap, (sum(1 for w in adjacency[u] if not eliminated[w]), u)
            )

    return Ordering.symmetric(order)


def symmetric_symbolic_size(
    pattern: SparsityPattern, order: Sequence[int]
) -> int:
    """Return ``|s̃p(A^O)|`` for a symmetric pattern under a symmetric ordering.

    The computation runs the elimination-graph simulation directly (never
    materializing the reordered matrix), which is the "efficient" evaluation
    path the paper relies on for LUDEM-QC.  Diagonal positions are included
    in the count, matching :func:`repro.lu.symbolic.symbolic_decomposition`.
    """
    n = pattern.n
    if sorted(order) != list(range(n)):
        raise OrderingError("order must be a permutation of 0..n-1")
    adjacency = _symmetric_adjacency(pattern)
    eliminated = [False] * n
    # Each eliminated vertex contributes: its diagonal, plus one L entry and
    # one U entry for every live neighbour at elimination time.
    total = 0
    for vertex in order:
        neighbours = [w for w in adjacency[vertex] if not eliminated[w]]
        total += 1 + 2 * len(neighbours)
        eliminated[vertex] = True
        for position, u in enumerate(neighbours):
            adjacency[u].discard(vertex)
            for w in neighbours[position + 1:]:
                if w not in adjacency[u]:
                    adjacency[u].add(w)
                    adjacency[w].add(u)
    return total


def symmetric_markowitz_reference(pattern: SparsityPattern) -> int:
    """Return ``|s̃p(A*)|`` where ``A*`` is minimum-degree ordered.

    Convenience wrapper combining :func:`minimum_degree_ordering` and
    :func:`symmetric_symbolic_size`; this is the denominator of the
    quality-loss measure (Definition 4) in the symmetric/LUDEM-QC setting.
    """
    ordering = minimum_degree_ordering(pattern)
    return symmetric_symbolic_size(pattern, ordering.row.order)
