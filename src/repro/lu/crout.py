"""Sparse Crout LU decomposition (no pivoting).

``A = L U`` with ``L`` lower triangular (explicit diagonal pivots) and ``U``
unit upper triangular, matching the factor layout of the paper's Figure 4.
No numerical pivoting is performed: the matrices arising from the paper's
measures (``A = I - dW`` with ``d < 1`` and ``W`` a normalized adjacency
matrix) are strictly diagonally dominant, so the pivot order is chosen purely
for sparsity by the ordering strategies in :mod:`repro.lu.markowitz` and
:mod:`repro.lu.mindegree`.

The decomposition follows the two-phase split of Section 2.3 of the paper:

* SD-phase — a symbolic decomposition determines ``s̃p(A)``, which bounds all
  positions the factors can occupy;
* ND-phase — numeric values are computed row by row and written into a factor
  container (either the dynamic :class:`~repro.lu.factors.LUFactors` or the
  static CLUDE structure).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PatternError, SingularMatrixError
from repro.lu.factors import LUFactors
from repro.lu.symbolic import symbolic_decomposition
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern

#: Pivots with magnitude below this threshold are treated as (numerically) zero.
PIVOT_TOLERANCE = 1e-12


def crout_decompose(
    matrix: SparseMatrix,
    pattern: Optional[SparsityPattern] = None,
    pivot_tolerance: float = PIVOT_TOLERANCE,
) -> LUFactors:
    """Decompose ``matrix`` into fresh dynamic LU factors.

    Parameters
    ----------
    matrix:
        The (already reordered, if applicable) matrix to decompose.
    pattern:
        Optional precomputed symbolic sparsity pattern ``s̃p(A)``; computed
        here when absent.
    pivot_tolerance:
        Pivots smaller in magnitude than this raise
        :class:`~repro.errors.SingularMatrixError`.
    """
    factors = LUFactors(matrix.n)
    crout_decompose_into(matrix, factors, pattern=pattern, pivot_tolerance=pivot_tolerance)
    factors.reset_counters()
    return factors


def crout_decompose_into(
    matrix: SparseMatrix,
    factors,
    pattern: Optional[SparsityPattern] = None,
    pivot_tolerance: float = PIVOT_TOLERANCE,
) -> None:
    """Decompose ``matrix`` writing the factors into an existing container.

    The container may be a dynamic :class:`~repro.lu.factors.LUFactors` or a
    :class:`~repro.lu.static_structure.StaticLUFactors` whose admissible
    pattern covers ``s̃p(matrix)`` (this is what CLUDE does for the first
    matrix of each cluster).

    Parameters
    ----------
    matrix:
        The matrix to decompose.
    factors:
        Destination container implementing the LU-factor protocol.
    pattern:
        Optional symbolic sparsity pattern to use for the working rows; when
        absent it is computed from ``matrix``.  A larger pattern (e.g. a
        cluster USSP) is allowed — extra positions simply hold zeros.
    pivot_tolerance:
        Threshold below which a pivot is considered numerically zero.
    """
    n = matrix.n
    if factors.n != n:
        raise PatternError(
            f"factor container dimension {factors.n} does not match matrix dimension {n}"
        )
    if pattern is None:
        pattern = symbolic_decomposition(matrix.pattern())

    row_column_sets: List[set] = [set() for _ in range(n)]
    for i, j in pattern:
        row_column_sets[i].add(j)
    row_columns: List[List[int]] = []
    for i in range(n):
        row_column_sets[i].add(i)
        row_columns.append(sorted(row_column_sets[i]))

    # factor_rows[k] caches row k's strictly-upper U values for elimination.
    upper_rows: List[dict] = [dict() for _ in range(n)]

    for i in range(n):
        # One vectorized row extraction replaces a per-entry binary search.
        stored = matrix.row(i)
        work = {j: stored.get(j, 0.0) for j in row_columns[i]}
        if i not in work:
            work[i] = stored.get(i, 0.0)
        for k in sorted(j for j in work if j < i):
            l_ik = work[k]
            if l_ik == 0.0:
                continue
            for j, u_kj in upper_rows[k].items():
                if j in work:
                    work[j] -= l_ik * u_kj
                else:
                    raise PatternError(
                        f"fill-in at ({i}, {j}) falls outside the symbolic pattern"
                    )
        pivot = work.get(i, 0.0)
        if abs(pivot) <= pivot_tolerance:
            raise SingularMatrixError(i, pivot)
        row_upper: dict = {}
        for j, value in work.items():
            if j < i:
                factors.l_set(i, j, value)
            elif j == i:
                factors.set_l_diagonal(i, pivot)
            else:
                scaled = value / pivot
                row_upper[j] = scaled
                factors.u_set(i, j, scaled)
        upper_rows[i] = row_upper


def crout_decompose_dense(
    dense: np.ndarray, pivot_tolerance: float = PIVOT_TOLERANCE
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense reference Crout decomposition, returning ``(L, U)`` arrays.

    ``L`` carries the pivots on its diagonal and ``U`` has a unit diagonal.
    Used by the test-suite to validate the sparse implementation.
    """
    array = np.array(dense, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise PatternError(f"expected a square 2-D array, got shape {array.shape}")
    n = array.shape[0]
    lower = np.zeros((n, n), dtype=float)
    upper = np.eye(n, dtype=float)
    for j in range(n):
        for i in range(j, n):
            lower[i, j] = array[i, j] - lower[i, :j] @ upper[:j, j]
        pivot = lower[j, j]
        if abs(pivot) <= pivot_tolerance:
            raise SingularMatrixError(j, pivot)
        for k in range(j + 1, n):
            upper[j, k] = (array[j, k] - lower[j, :j] @ upper[:j, k]) / pivot
    return lower, upper
