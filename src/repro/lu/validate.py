"""Validation helpers for LU factors.

These functions are used by the test-suite and by callers who want to check
that a set of factors really does reproduce the matrix it claims to factor —
for example after a long chain of incremental Bennett updates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import SparseMatrix
from repro.sparse.permutation import Ordering


def reconstruction_error(factors, matrix: SparseMatrix, ordering: Optional[Ordering] = None) -> float:
    """Return ``max |L U - A^O|`` over all positions.

    Parameters
    ----------
    factors:
        LU factors (dynamic or static container).
    matrix:
        The *original* matrix ``A``.
    ordering:
        The ordering applied before decomposition (``None`` for identity).
    """
    target = ordering.apply(matrix) if ordering is not None else matrix
    product = factors.l_dense() @ factors.u_dense()
    return float(np.max(np.abs(product - target.to_dense()))) if matrix.n else 0.0


def factors_are_valid(
    factors,
    matrix: SparseMatrix,
    ordering: Optional[Ordering] = None,
    tolerance: float = 1e-8,
) -> bool:
    """Return ``True`` when the factors reproduce ``A^O`` within ``tolerance``."""
    return reconstruction_error(factors, matrix, ordering) <= tolerance


def solve_residual(matrix: SparseMatrix, x, b) -> float:
    """Return the infinity norm of ``A x - b`` in original coordinates."""
    ax = matrix.matvec(np.asarray(x, dtype=float))
    rhs = np.asarray(b, dtype=float)
    if ax.size == 0:
        return 0.0
    return float(np.max(np.abs(ax - rhs)))
