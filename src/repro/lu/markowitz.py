"""Markowitz fill-reducing ordering.

The Markowitz strategy (referenced throughout the paper as the quality
baseline ``O*(A)``) selects, at each elimination step, the pivot whose
Markowitz cost ``(r_i - 1)(c_j - 1)`` is smallest, where ``r_i`` and ``c_j``
are the numbers of remaining non-zeros in the pivot's row and column of the
active submatrix.  Eliminating the chosen pivot then adds the symbolic fill
of the outer product of its row and column to the active pattern.

This implementation restricts pivot choices to diagonal positions of the
active submatrix.  For the matrices this library targets (``A = I - dW``,
strictly diagonally dominant, and symmetric co-authorship matrices) every
diagonal position is structurally present and numerically the safest pivot,
so the restriction preserves both quality and stability while producing a
*symmetric* ordering ``O = (P, P)`` — which is also what makes the ordering
reusable across the matrices of a cluster.  On symmetric patterns the
criterion degenerates to classical minimum degree.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Union

from repro.errors import DimensionError
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern
from repro.sparse.permutation import Ordering


def markowitz_ordering(
    matrix_or_pattern: Union[SparseMatrix, SparsityPattern],
    tie_break: str = "index",
) -> Ordering:
    """Return the Markowitz ordering ``O*(A)`` of a matrix or pattern.

    Parameters
    ----------
    matrix_or_pattern:
        The matrix (or just its sparsity pattern) to order.
    tie_break:
        ``"index"`` (default) resolves equal Markowitz costs by the smallest
        original index, which keeps the ordering deterministic.

    Returns
    -------
    Ordering
        A symmetric ordering: the same permutation applied to rows and columns.
    """
    if tie_break != "index":
        raise DimensionError(f"unsupported tie-break strategy: {tie_break!r}")
    pattern = (
        matrix_or_pattern.pattern()
        if isinstance(matrix_or_pattern, SparseMatrix)
        else matrix_or_pattern
    )
    n = pattern.n
    if n == 0:
        return Ordering.identity(0)

    # Active structure: row_sets[i] = columns with entries in row i (diagonal
    # excluded), column_sets[j] = rows with entries in column j.
    row_sets: List[Set[int]] = [set() for _ in range(n)]
    column_sets: List[Set[int]] = [set() for _ in range(n)]
    for i, j in pattern:
        if i != j:
            row_sets[i].add(j)
            column_sets[j].add(i)

    eliminated = [False] * n
    order: List[int] = []

    # Lazy-deletion heap of (markowitz_cost, index, stamp).  Stale entries are
    # skipped when their recorded cost no longer matches the live cost.
    def cost_of(v: int) -> int:
        return len(row_sets[v]) * len(column_sets[v])

    heap = [(cost_of(v), v) for v in range(n)]
    heapq.heapify(heap)

    for _ in range(n):
        while True:
            cost, pivot = heapq.heappop(heap)
            if eliminated[pivot]:
                continue
            if cost != cost_of(pivot):
                heapq.heappush(heap, (cost_of(pivot), pivot))
                continue
            break
        order.append(pivot)
        eliminated[pivot] = True

        # Symbolic elimination of the pivot: every remaining row with an entry
        # in the pivot column inherits the pivot row's remaining columns.
        pivot_row = {j for j in row_sets[pivot] if not eliminated[j]}
        pivot_column = {i for i in column_sets[pivot] if not eliminated[i]}
        for i in pivot_column:
            row_sets[i].discard(pivot)
            for j in pivot_row:
                if j != i and j not in row_sets[i]:
                    row_sets[i].add(j)
                    column_sets[j].add(i)
        for j in pivot_row:
            column_sets[j].discard(pivot)
        # Remove the pivot from structures it still appears in.
        for j in pivot_row:
            row_sets[pivot].discard(j)
        for i in pivot_column:
            column_sets[pivot].discard(i)
        # Push refreshed costs for the touched vertices.
        touched = pivot_row | pivot_column
        for v in touched:
            if not eliminated[v]:
                heapq.heappush(heap, (cost_of(v), v))

    return Ordering.symmetric(order)


def markowitz_cost_bound(pattern: SparsityPattern, order: Optional[List[int]] = None) -> int:
    """Return an upper bound on fill produced by eliminating in ``order``.

    The bound sums the Markowitz cost of each pivot at its elimination time.
    It is used only for diagnostics and tests; the authoritative fill count is
    obtained from :func:`repro.lu.symbolic.symbolic_decomposition`.
    """
    n = pattern.n
    if order is None:
        order = list(range(n))
    if sorted(order) != list(range(n)):
        raise DimensionError("order must be a permutation of 0..n-1")

    row_sets: List[Set[int]] = [set() for _ in range(n)]
    column_sets: List[Set[int]] = [set() for _ in range(n)]
    for i, j in pattern:
        if i != j:
            row_sets[i].add(j)
            column_sets[j].add(i)
    eliminated = [False] * n
    total = 0
    for pivot in order:
        pivot_row = {j for j in row_sets[pivot] if not eliminated[j]}
        pivot_column = {i for i in column_sets[pivot] if not eliminated[i]}
        total += len(pivot_row) * len(pivot_column)
        eliminated[pivot] = True
        for i in pivot_column:
            for j in pivot_row:
                if j != i and j not in row_sets[i]:
                    row_sets[i].add(j)
                    column_sets[j].add(i)
    return total
