"""Persistent shard worker process.

Each worker is spawned once, owns one shard of the factor/result cache
universe (a full :class:`~repro.query.planner.QueryPlanner` over the
keys routed to it), and serves tasks from its own queue until told to
stop.  Snapshots arrive as shared-memory handles (see
:mod:`repro.shard.arena`) and are reconstructed once per segment, then
cached — so per-task payloads carry only measure names, floats, small
param tuples and segment names, never CSR members.

Replies go to one shared result queue as
``(op, shard_id, task_id, payload, error)`` tuples; errors ship as
pickled exception objects and are re-raised by the front-end.
"""

from __future__ import annotations

import dataclasses
import gc
import pickle
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import MeasureError
from repro.graphs.snapshot import GraphSnapshot
from repro.query.planner import QueryPlanner
from repro.query.spec import Query
from repro.shard.arena import SnapshotHandle, attach_snapshot

#: One dispatched query: ``(measure, damping, params, handle, system_token)``.
QueryDescriptor = Tuple[str, float, tuple, SnapshotHandle, Optional[Hashable]]


@dataclasses.dataclass
class ShardConfig:
    """Picklable planner settings replicated into every shard worker."""

    auto_refresh: bool = False
    policy: Optional[object] = None
    result_cache: Optional[object] = None
    store_root: Optional[str] = None


def describe_query(query: Query, handle: SnapshotHandle) -> QueryDescriptor:
    """The lightweight wire form of ``query`` (no snapshot payload)."""
    return (query.measure, query.damping, query.params, handle, query.system_token)


def _encode_error(error: BaseException) -> bytes:
    try:
        return pickle.dumps(error)
    except Exception:
        fallback = MeasureError(f"{type(error).__name__}: {error}")
        return pickle.dumps(fallback)


def _build_planner(config: ShardConfig) -> QueryPlanner:
    store = None
    if config.store_root is not None:
        from repro.store.factorstore import FactorStore

        store = FactorStore(config.store_root)
    return QueryPlanner(
        auto_refresh=config.auto_refresh,
        policy=config.policy,
        result_cache=config.result_cache,
        store=store,
    )


def _run_batch(
    planner: QueryPlanner,
    resolve: Callable[[SnapshotHandle], GraphSnapshot],
    descriptors: List[QueryDescriptor],
) -> Dict[str, object]:
    queries = [
        Query(
            measure=measure,
            snapshot=resolve(handle),
            damping=damping,
            params=params,
            system_token=token,
        )
        for measure, damping, params, handle, token in descriptors
    ]
    result = planner.run(queries)
    stats = result.stats
    return {
        "results": result.results,
        "groups": stats.groups,
        "result_hits": stats.result_hits,
        "resolutions": dict(stats.resolutions),
        "records": result.approximations,
    }


def shard_worker_main(shard_id: int, task_queue, result_queue, config: ShardConfig) -> None:
    """Worker entry point (module-level so ``spawn`` can import it)."""
    planner = _build_planner(config)
    segments: Dict[str, Tuple[GraphSnapshot, object]] = {}

    def resolve(handle: SnapshotHandle) -> GraphSnapshot:
        entry = segments.get(handle.segment)
        if entry is None:
            entry = attach_snapshot(handle)
            segments[handle.segment] = entry
        return entry[0]

    result_queue.put(("ready", shard_id, None, None, None))
    while True:
        message = task_queue.get()
        op, task_id = message[0], message[1]
        payload: object = None
        error: Optional[bytes] = None
        try:
            if op == "batch":
                payload = _run_batch(planner, resolve, message[2])
            elif op == "evolve":
                _, _, old_handle, new_handle, old_system, new_system = message
                planner.register_evolution(
                    resolve(old_handle),
                    resolve(new_handle),
                    old_system=old_system,
                    new_system=new_system,
                )
            elif op == "bind":
                _, _, system, handle = message
                planner.bind_snapshot(system, resolve(handle))
            elif op == "checkpoint":
                payload = planner.checkpoint()
            elif op == "cache_info":
                payload = planner.cache_info()
            elif op == "stop":
                pass
            else:
                raise MeasureError(f"unknown shard op: {op!r}")
        except BaseException as exc:  # ship it; the front-end re-raises
            error = _encode_error(exc)
        result_queue.put((op, shard_id, task_id, payload, error))
        if op == "stop":
            break
    # Drop every reference into the shared segments (cached factors hold
    # matrix views only for arena-attached *matrices*; snapshots are
    # copies — but be uniformly careful) before closing the mappings, or
    # close() raises BufferError on exported pointers.
    del planner
    entries = list(segments.values())
    segments.clear()
    gc.collect()
    for _, shm in entries:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view leaked; kernel reclaims
            pass
