"""Sharded multi-process serving.

Layering::

    arena.py    shared-memory segments for immutable CSR payloads
    router.py   content-stable SystemKey -> shard assignment
    worker.py   persistent ShardWorker process (owns one cache shard)
    planner.py  ShardedPlanner front-end (plan, route, merge)

`ShardedPlanner` is a drop-in for `QueryPlanner` on the serving surface
(`run` / `register_evolution` / `bind_snapshot` / `checkpoint` /
`cache_info`) and is proven bitwise identical to it across all six
resolution tiers.
"""

from repro.shard.arena import (
    MatrixHandle,
    SharedMemoryArena,
    SnapshotHandle,
    attach_matrix,
    attach_snapshot,
)
from repro.shard.planner import ShardedPlanner
from repro.shard.router import ShardRouter, routing_digest
from repro.shard.worker import ShardConfig

__all__ = [
    "MatrixHandle",
    "SharedMemoryArena",
    "ShardConfig",
    "ShardRouter",
    "ShardedPlanner",
    "SnapshotHandle",
    "attach_matrix",
    "attach_snapshot",
    "routing_digest",
]
