"""Sharded planner front-end.

``ShardedPlanner`` plans exactly like :class:`~repro.query.planner.
QueryPlanner` (it calls the same :func:`~repro.query.planner.plan_batch`),
routes each planned group to the shard that owns its factor family
(:mod:`repro.shard.router`), ships only lightweight query descriptors
plus shared-memory snapshot handles to persistent workers
(:mod:`repro.shard.worker`), and merges the per-shard answers back into
one :class:`~repro.query.planner.BatchResult` that is bitwise identical
to what the serial planner would have produced:

- answers scatter back to their global batch positions;
- per-tier ``resolutions`` counts sum in canonical tier order
  (shape-stable: every tier name present, zeros included);
- approximation records merge stage-major (verbatim tier before
  corrected tier, group order within each) exactly as the serial audit
  trail accumulates them;
- updates (``register_evolution`` / ``bind_snapshot`` / ``checkpoint``)
  broadcast to every shard in stream order, so each shard sees the same
  FIFO update sequence the serial planner would.

Dispatch is counted: ``tasks_dispatched`` / ``task_bytes_shipped`` /
``member_bytes_shipped`` make "no CSR members cross the process
boundary" a measurable invariant (the benchmark gates it at zero).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue as queue_module
import time
import weakref
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import MeasureError
from repro.graphs.snapshot import GraphSnapshot
from repro.query.planner import (
    BatchResult,
    PlannerStats,
    QueryPlan,
    plan_batch,
)
from repro.query.batch import QueryBatch
from repro.query.resolution import ApproximationRecord, ResolutionLadder
from repro.query.spec import Query
from repro.shard.arena import SharedMemoryArena, SnapshotHandle
from repro.shard.router import ShardRouter
from repro.shard.worker import ShardConfig, describe_query, shard_worker_main

_PICKLE = pickle.HIGHEST_PROTOCOL
_POLL_SECONDS = 0.25


def _store_root(store) -> Optional[str]:
    if store is None:
        return None
    root = getattr(store, "root", None)
    if root is not None:
        return os.fspath(root)
    return os.fspath(store)


def _finalize(workers, arena) -> None:
    for worker in workers:
        if worker.is_alive():
            worker.terminate()
    arena.close()


class ShardedPlanner:
    """A drop-in serving planner that shards factor ownership by digest.

    Parameters mirror :class:`~repro.query.planner.QueryPlanner` where
    they make sense for replicated workers: ``policy`` / ``auto_refresh``
    / ``result_cache`` configure every shard's planner identically;
    ``store`` may be a :class:`~repro.store.factorstore.FactorStore` or a
    directory path — shards share the one directory safely because
    routing makes their key sets disjoint and files are digest-named and
    atomically replaced.

    ``result_cache`` accepts ``None`` / ``bool`` / ``int`` (an instance
    cannot be replicated across processes).

    Workers are spawned (not forked), so like any spawn-based pool a
    *script* must construct the planner from under
    ``if __name__ == "__main__":`` — module top level re-executes in
    every child and trips Python's bootstrapping guard.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        auto_refresh: bool = False,
        policy=None,
        result_cache=None,
        store=None,
        start_timeout: float = 120.0,
    ) -> None:
        if shards < 1:
            raise MeasureError(f"shard count must be positive, got {shards}")
        if result_cache is not None and not isinstance(result_cache, (bool, int)):
            raise TypeError(
                "ShardedPlanner(result_cache=...) takes None, a bool or an int "
                "bound — per-process caches cannot share one instance"
            )
        policy_exact = policy is None or bool(getattr(policy, "is_exact", False))
        self._shards = int(shards)
        self._router = ShardRouter(self._shards, policy_exact=policy_exact)
        self._arena = SharedMemoryArena()
        self._handles: Dict[GraphSnapshot, SnapshotHandle] = {}
        self._tier_names: Tuple[str, ...] = ResolutionLadder().tier_names()
        self._closed = False
        self._next_task = 0
        self.tasks_dispatched = 0
        self.task_bytes_shipped = 0
        #: Serialized snapshot/factor member bytes crossing the process
        #: boundary per task.  The design makes this identically zero —
        #: members travel once through the shared-memory arena — and the
        #: benchmark gates on it staying zero.
        self.member_bytes_shipped = 0

        config = ShardConfig(
            auto_refresh=auto_refresh,
            policy=policy,
            result_cache=result_cache,
            store_root=_store_root(store),
        )
        ctx = multiprocessing.get_context("spawn")
        self._tasks = [ctx.SimpleQueue() for _ in range(self._shards)]
        self._results = ctx.Queue()
        self._workers = [
            ctx.Process(
                target=shard_worker_main,
                args=(shard, self._tasks[shard], self._results, config),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            for shard in range(self._shards)
        ]
        for worker in self._workers:
            worker.start()
        self._finalizer = weakref.finalize(
            self, _finalize, list(self._workers), self._arena
        )
        self._await_ready(start_timeout)

    # ------------------------------------------------------------------ #
    # Worker plumbing
    # ------------------------------------------------------------------ #
    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        ready = 0
        while ready < self._shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise MeasureError(
                    f"shard workers failed to start within {timeout:.0f}s"
                )
            try:
                op = self._results.get(timeout=min(_POLL_SECONDS, remaining))[0]
            except queue_module.Empty:
                self._check_workers()
                continue
            if op == "ready":
                ready += 1

    def _check_workers(self) -> None:
        for worker in self._workers:
            if not worker.is_alive():
                self.close()
                raise MeasureError(
                    f"shard worker {worker.name} died (exit code "
                    f"{worker.exitcode}); sharded planner closed"
                )

    def _dispatch(self, shard: int, message: tuple) -> int:
        self._check_open()
        task_id = message[1]
        blob = pickle.dumps(message, protocol=_PICKLE)
        self.tasks_dispatched += 1
        self.task_bytes_shipped += len(blob)
        self._tasks[shard].put(message)
        return task_id

    def _new_task(self) -> int:
        self._next_task += 1
        return self._next_task

    def _collect(self, expected: Dict[int, int]) -> Dict[int, object]:
        """Gather one reply per expected task id; re-raise worker errors."""
        payloads: Dict[int, object] = {}
        errors: List[bytes] = []
        pending = dict(expected)
        while pending:
            try:
                reply = self._results.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                self._check_workers()
                continue
            op, _shard_id, task_id, payload, error = reply
            if op == "ready" or task_id not in pending:
                continue
            del pending[task_id]
            if error is not None:
                errors.append(error)
            else:
                payloads[task_id] = payload
        if errors:
            raise pickle.loads(errors[0])
        return payloads

    def _broadcast(self, build_message) -> Dict[int, object]:
        """Send one message per shard (FIFO per queue) and collect acks."""
        expected: Dict[int, int] = {}
        for shard in range(self._shards):
            task_id = self._new_task()
            self._dispatch(shard, build_message(task_id))
            expected[task_id] = shard
        return self._collect(expected)

    def _handle_for(self, snapshot: GraphSnapshot) -> SnapshotHandle:
        handle = self._handles.get(snapshot)
        if handle is None:
            handle = self._arena.put_snapshot(snapshot)
            self._handles[snapshot] = handle
        return handle

    def _check_open(self) -> None:
        if self._closed:
            raise MeasureError("sharded planner is closed")

    # ------------------------------------------------------------------ #
    # Planner surface
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> int:
        return self._shards

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def arena(self) -> SharedMemoryArena:
        return self._arena

    def plan(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
        """Plan exactly like the serial planner (same function)."""
        return plan_batch(batch)

    def execute(self, plan: QueryPlan) -> BatchResult:
        """Route groups to owning shards, collect, and merge canonically."""
        self._check_open()
        shard_order: List[int] = []
        shard_groups: Dict[int, list] = {}
        for group in plan.groups:
            shard = self._router.shard_of(group.key)
            if shard not in shard_groups:
                shard_groups[shard] = []
                shard_order.append(shard)
            shard_groups[shard].append(group)

        expected: Dict[int, int] = {}
        position_maps: Dict[int, List[int]] = {}
        for shard in shard_order:
            groups = shard_groups[shard]
            positions = [p for g in groups for p in g.positions]
            descriptors = [
                describe_query(query, self._handle_for(query.snapshot))
                for g in groups
                for query in g.queries
            ]
            task_id = self._new_task()
            self._dispatch(shard, ("batch", task_id, descriptors))
            expected[task_id] = shard
            position_maps[task_id] = positions

        payloads = self._collect(expected)

        results: List[Optional[np.ndarray]] = [None] * len(plan.batch)
        resolutions: Dict[str, int] = {name: 0 for name in self._tier_names}
        result_hits = 0
        records: List[ApproximationRecord] = []
        for task_id in expected:
            payload = payloads[task_id]
            positions = position_maps[task_id]
            for local, answer in enumerate(payload["results"]):
                results[positions[local]] = answer
            for name, count in payload["resolutions"].items():
                resolutions[name] = resolutions.get(name, 0) + count
            result_hits += payload["result_hits"]
            for record in payload["records"]:
                records.append(dataclasses.replace(
                    record,
                    positions=tuple(positions[p] for p in record.positions),
                ))
        for direct in plan.direct:
            results[direct.position] = direct.answer.copy()

        # Serial audit order is stage-major: every verbatim-tier record
        # (group order) precedes every corrected-tier record.  Group order
        # is recovered from the first (minimum) global position.
        verbatim = [r for r in records if r.mode == "verbatim"]
        corrected = [r for r in records if r.mode != "verbatim"]
        verbatim.sort(key=lambda r: r.positions[0])
        corrected.sort(key=lambda r: r.positions[0])

        stats = PlannerStats(
            queries=len(plan.batch),
            groups=len(plan.groups),
            direct_answers=len(plan.direct),
            result_hits=result_hits,
            resolutions=resolutions,
        )
        return BatchResult(
            results=results,
            stats=stats,
            approximations=tuple(verbatim + corrected),
        )

    def run(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchResult:
        """Plan and execute a batch in one call."""
        return self.execute(self.plan(batch))

    # ------------------------------------------------------------------ #
    # Updates (broadcast in stream order)
    # ------------------------------------------------------------------ #
    def register_evolution(
        self,
        old: GraphSnapshot,
        new: GraphSnapshot,
        *,
        old_system: Optional[Hashable] = None,
        new_system: Optional[Hashable] = None,
    ) -> None:
        """Register lineage on every shard (same validation as serial)."""
        if not isinstance(old, GraphSnapshot) or not isinstance(new, GraphSnapshot):
            raise MeasureError(
                "register_evolution takes two GraphSnapshots (the delta is "
                "computed from their edge sets)"
            )
        if old.n != new.n:
            raise MeasureError(
                f"evolution must preserve the node count: {old.n} vs {new.n}"
            )
        old_handle = self._handle_for(old)
        new_handle = self._handle_for(new)
        self._broadcast(
            lambda task_id: (
                "evolve", task_id, old_handle, new_handle, old_system, new_system
            )
        )

    def bind_snapshot(self, system: Hashable, snapshot: GraphSnapshot) -> None:
        """Bind a token identity to its snapshot on every shard."""
        handle = self._handle_for(snapshot)
        self._broadcast(lambda task_id: ("bind", task_id, system, handle))

    def checkpoint(self) -> int:
        """Flush every shard's cache to its store; total systems flushed."""
        payloads = self._broadcast(lambda task_id: ("checkpoint", task_id))
        return sum(payloads.values())

    def cache_info(self) -> Dict[str, int]:
        """Aggregate counters, key order preserved from shard 0."""
        payloads = self._broadcast(lambda task_id: ("cache_info", task_id))
        merged: Dict[str, int] = {}
        for task_id in sorted(payloads):
            for name, value in payloads[task_id].items():
                merged[name] = merged.get(name, 0) + value
        return merged

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 10.0) -> None:
        """Stop workers, join, and unlink every arena segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard, worker in enumerate(self._workers):
            if worker.is_alive():
                try:
                    self._tasks[shard].put(("stop", self._new_task()))
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in self._workers:
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=1.0)
        self._results.close()
        self._results.cancel_join_thread()
        self._arena.close()
        self._handles.clear()
        self._finalizer.detach()

    def __enter__(self) -> "ShardedPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def dispatch_info(self) -> Dict[str, int]:
        """Shipping counters for benchmarks and tests."""
        return {
            "tasks_dispatched": self.tasks_dispatched,
            "task_bytes_shipped": self.task_bytes_shipped,
            "member_bytes_shipped": self.member_bytes_shipped,
            "segments_live": len(self._arena),
        }
