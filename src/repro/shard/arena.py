"""Shared-memory arena for immutable CSR payloads.

The parent process *puts* snapshots and sparse matrices into named
``multiprocessing.shared_memory`` segments and ships only the small
picklable handles across process boundaries; workers *attach* to the
named segment and build zero-copy views.  The contract:

- **Ownership.**  Only the arena (parent side) ever ``unlink``s a
  segment.  Workers attach and close; a killed worker therefore leaks
  nothing — the kernel reclaims its mapping and the parent's
  ``close()`` unlinks the name.
- **Refcounts.**  ``put_*`` increments, ``release`` decrements, the
  segment is unlinked when the count reaches zero.  ``close()`` unlinks
  everything still live and is idempotent (double-close is a no-op).
- **Determinism.**  Snapshot segments store the *sorted* edge list, so
  the bytes shipped are a pure function of graph content, never of
  Python set iteration order.  Matrix composition downstream is
  edge-order independent, so reconstructed snapshots produce bitwise
  identical system matrices.
- **Crash safety net.**  Segments created here are registered with the
  CPython ``resource_tracker``, so even if the parent dies without
  calling ``close()`` the tracker unlinks them at interpreter shutdown.
  Attach-side handles are *unregistered* from the tracker (the attacher
  is not the owner).
"""

from __future__ import annotations

import dataclasses
import os
from multiprocessing import shared_memory
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix

_INT = np.int64
_FLOAT = np.float64
_ITEM = 8  # both dtypes are 8-byte; offsets below stay 8-aligned


@dataclasses.dataclass(frozen=True)
class SnapshotHandle:
    """Picklable pointer to a snapshot's edge list in shared memory."""

    segment: str
    n: int
    directed: bool
    edge_count: int


@dataclasses.dataclass(frozen=True)
class MatrixHandle:
    """Picklable pointer to a CSR matrix laid out in one segment.

    Layout: ``indptr`` (``n + 1`` int64) then ``indices`` (``nnz`` int64)
    then ``data`` (``nnz`` float64), back to back.
    """

    segment: str
    n: int
    nnz: int


class SharedMemoryArena:
    """Parent-side owner of shared-memory segments.

    Snapshots are deduplicated by content (``GraphSnapshot`` equality is
    content-based), so putting the same graph twice returns the same
    handle with a bumped refcount.  Matrices are not deduplicated —
    each ``put_matrix`` creates a fresh segment.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._refcounts: Dict[str, int] = {}
        self._snapshot_handles: Dict[GraphSnapshot, SnapshotHandle] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Producing
    # ------------------------------------------------------------------ #
    def put_snapshot(self, snapshot: GraphSnapshot) -> SnapshotHandle:
        """Place ``snapshot``'s sorted edge list in shared memory."""
        self._check_open()
        if not isinstance(snapshot, GraphSnapshot):
            raise TypeError(f"expected GraphSnapshot, got {type(snapshot).__name__}")
        handle = self._snapshot_handles.get(snapshot)
        if handle is not None:
            self._refcounts[handle.segment] += 1
            return handle
        edges = np.array(sorted(snapshot.edges), dtype=_INT).reshape(-1, 2)
        shm = shared_memory.SharedMemory(create=True, size=max(1, edges.nbytes))
        if edges.size:
            self._copy_into(shm, 0, edges.reshape(-1))
        handle = SnapshotHandle(
            segment=shm.name,
            n=snapshot.n,
            directed=snapshot.directed,
            edge_count=edges.shape[0],
        )
        self._segments[shm.name] = shm
        self._refcounts[shm.name] = 1
        self._snapshot_handles[snapshot] = handle
        return handle

    def put_matrix(self, matrix: SparseMatrix) -> MatrixHandle:
        """Place a matrix's CSR arrays in one shared segment."""
        self._check_open()
        indptr, indices, data = matrix.csr_arrays()
        n = matrix.n
        nnz = int(indices.shape[0])
        size = (n + 1) * _ITEM + 2 * nnz * _ITEM
        shm = shared_memory.SharedMemory(create=True, size=max(1, size))
        self._copy_into(shm, 0, np.ascontiguousarray(indptr, dtype=_INT))
        if nnz:
            self._copy_into(
                shm, (n + 1) * _ITEM, np.ascontiguousarray(indices, dtype=_INT)
            )
            self._copy_into(
                shm, (n + 1 + nnz) * _ITEM, np.ascontiguousarray(data, dtype=_FLOAT)
            )
        handle = MatrixHandle(segment=shm.name, n=n, nnz=nnz)
        self._segments[shm.name] = shm
        self._refcounts[shm.name] = 1
        return handle

    @staticmethod
    def _copy_into(shm: shared_memory.SharedMemory, offset: int, array: np.ndarray) -> None:
        # The temporary view exports a pointer into the segment buffer;
        # it must be dropped before close() or close() raises BufferError.
        view = np.frombuffer(shm.buf, dtype=array.dtype, count=array.size, offset=offset)
        view[:] = array
        del view

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def refcount(self, handle) -> int:
        """Live reference count of ``handle``'s segment (0 once unlinked)."""
        return self._refcounts.get(handle.segment, 0)

    def segment_names(self) -> Tuple[str, ...]:
        """Names of all live segments (for leak assertions in tests)."""
        return tuple(self._segments)

    def release(self, handle) -> None:
        """Drop one reference; unlink the segment at refcount zero."""
        name = handle.segment
        count = self._refcounts.get(name)
        if count is None:
            return
        if count > 1:
            self._refcounts[name] = count - 1
            return
        self._unlink(name)

    def _unlink(self, name: str) -> None:
        shm = self._segments.pop(name, None)
        self._refcounts.pop(name, None)
        for snapshot, handle in list(self._snapshot_handles.items()):
            if handle.segment == name:
                del self._snapshot_handles[snapshot]
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Unlink every live segment.  Idempotent."""
        if self._closed:
            return
        for name in list(self._segments):
            self._unlink(name)
        self._snapshot_handles.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("arena is closed")

    def __enter__(self) -> "SharedMemoryArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[str]:
        return iter(self._segments)


# ---------------------------------------------------------------------- #
# Attaching (worker side)
# ---------------------------------------------------------------------- #
def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # CPython (< 3.13) registers shared memory with the resource tracker on
    # attach as well as on create.  Spawned workers inherit the *parent's*
    # tracker, whose cache is a set — the attach-side registration is a
    # dedup no-op there, and the owner's unlink balances it.  Do NOT
    # unregister here: that would delete the owner's registration and drop
    # the crash safety net.
    return shared_memory.SharedMemory(name=name)


def attach_snapshot(
    handle: SnapshotHandle,
) -> Tuple[GraphSnapshot, shared_memory.SharedMemory]:
    """Rebuild the snapshot from its shared segment.

    Returns the snapshot plus the attached segment; the caller owns
    closing the segment (the snapshot itself copies the edges into
    Python objects, so it outlives the mapping).
    """
    shm = _attach_segment(handle.segment)
    if handle.edge_count:
        edges_view = np.frombuffer(
            shm.buf, dtype=_INT, count=handle.edge_count * 2
        ).reshape(handle.edge_count, 2)
        edges = [(int(u), int(v)) for u, v in edges_view.tolist()]
        del edges_view
    else:
        edges = []
    snapshot = GraphSnapshot(handle.n, edges, directed=handle.directed)
    return snapshot, shm


def attach_matrix(
    handle: MatrixHandle,
) -> Tuple[SparseMatrix, shared_memory.SharedMemory]:
    """Zero-copy ``SparseMatrix`` view over the shared segment.

    The returned matrix's CSR arrays alias the segment buffer (read-only
    — writes raise).  The caller must keep the returned segment open for
    the matrix's lifetime and drop every array view before closing it.
    """
    shm = _attach_segment(handle.segment)
    n, nnz = handle.n, handle.nnz
    indptr = np.frombuffer(shm.buf, dtype=_INT, count=n + 1)
    indices = np.frombuffer(shm.buf, dtype=_INT, count=nnz, offset=(n + 1) * _ITEM)
    data = np.frombuffer(
        shm.buf, dtype=_FLOAT, count=nnz, offset=(n + 1 + nnz) * _ITEM
    )
    matrix = SparseMatrix._from_csr(n, indptr, indices, data)
    return matrix, shm


def leaked_segments(names) -> Tuple[str, ...]:
    """Which of ``names`` still exist system-wide?

    Probes ``/dev/shm`` directly (POSIX shared memory is file-backed
    there) so the check itself never touches the resource tracker's
    registrations.
    """
    leaked = []
    for name in names:
        if os.path.exists(os.path.join("/dev/shm", name.lstrip("/"))):
            leaked.append(name)
    return tuple(leaked)
