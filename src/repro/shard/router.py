"""Content-stable routing of system keys to owning shards.

Routing must satisfy two properties:

1. **Determinism across processes.**  Assignment derives from
   ``blake2b`` digests of canonical byte encodings (the
   :meth:`SystemKey.digest` discipline shared with the factor store),
   never from salted ``hash()`` — the same key routes to the same shard
   in every interpreter, under every ``PYTHONHASHSEED``.

2. **Family colocation.**  The resolution ladder lets some tiers answer
   one key from another key's cached factors.  Every pair of keys that
   can *interact* through the ladder must live on the same shard, or a
   shard would miss factors the serial planner would have found.  The
   interaction closure depends on the key and the planner's policy:

   - Keys with a custom ``matrix_builder`` or ``matrix_params``
     (hitting-time families): only the refresh tier crosses systems,
     and lineage replaces *only* ``key.system`` — so the family is
     ``(kind, damping, params, builder)``.
   - Exact policies: likewise only refresh crosses systems, preserving
     kind and damping — family ``(kind, damping)``.
   - Approximate policies (QC / corrected): verbatim reuse crosses
     systems at fixed ``(kind, damping)`` and corrected reuse adds
     same-system *cross-damping* sharing; transitively every damping of
     a kind is connected — family ``(kind,)``.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Optional

from repro.query.spec import SystemKey, _builder_name

_MEMO_LIMIT = 8192


def routing_digest(key: SystemKey, *, policy_exact: bool = True) -> str:
    """The 32-hex-digit digest of ``key``'s interaction family."""
    kind = getattr(key.kind, "name", repr(key.kind))
    if key.matrix_builder is not None or key.matrix_params:
        family: object = (
            "lineage",
            kind,
            _damping_hex(key.damping),
            repr(tuple(key.matrix_params)),
            _builder_name(key.matrix_builder),
        )
    elif not policy_exact:
        family = ("kind", kind)
    else:
        family = ("kind-damping", kind, _damping_hex(key.damping))
    return hashlib.blake2b(repr(family).encode("utf-8"), digest_size=16).hexdigest()


def _damping_hex(damping: float) -> str:
    return struct.pack("<d", damping).hex()


class ShardRouter:
    """Memoized ``SystemKey`` -> shard assignment for a fixed shard count."""

    def __init__(self, shards: int, *, policy_exact: bool = True) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be positive, got {shards}")
        self._shards = int(shards)
        self._policy_exact = bool(policy_exact)
        self._memo: Dict[SystemKey, int] = {}

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def policy_exact(self) -> bool:
        return self._policy_exact

    def family_digest(self, key: SystemKey) -> str:
        """The routing digest this router uses for ``key``."""
        return routing_digest(key, policy_exact=self._policy_exact)

    def shard_of(self, key: SystemKey) -> int:
        """The shard that owns ``key``'s factor family."""
        shard: Optional[int] = self._memo.get(key)
        if shard is None:
            digest = self.family_digest(key)
            shard = int(digest[:16], 16) % self._shards
            if len(self._memo) >= _MEMO_LIMIT:
                self._memo.clear()
            self._memo[key] = shard
        return shard
