"""Plain-text reporting of benchmark results.

Every benchmark prints the data series behind the corresponding paper figure
as an aligned text table, so that "regenerating a figure" means reading the
same rows the plot would show.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.runner import AlgorithmReport


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no data)"
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_format_value(row.get(column)) for column in columns])
    widths = [
        max(len(column), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(rendered[i].ljust(widths[i]) for i in range(len(columns)))
        for rendered in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.001 or abs(value) >= 10000):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") if "." in f"{value:.4f}" else f"{value:.4f}"
    return str(value)


def reports_to_table(
    reports: Iterable[AlgorithmReport], columns: Sequence[str] | None = None
) -> str:
    """Render algorithm reports as a table with a sensible default column set."""
    default_columns = [
        "workload",
        "algorithm",
        "parameter",
        "average_quality_loss",
        "speedup",
        "cluster_count",
        "bennett_time",
        "total_time",
    ]
    rows = [report.as_row() for report in reports]
    return format_table(rows, columns or default_columns)


def series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
) -> str:
    """Render several named series sharing an x axis (one figure's line plot)."""
    columns = [x_label, *series.keys()]
    rows = []
    for index, x_value in enumerate(x_values):
        row: Dict[str, object] = {x_label: x_value}
        for name, values in series.items():
            row[name] = float(values[index])
        rows.append(row)
    return format_table(rows, columns)


def print_header(title: str) -> None:
    """Print a section header for benchmark output."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}")
