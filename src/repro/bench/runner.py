"""Benchmark runner: execute the LUDEM algorithms and collect the paper's metrics.

The runner evaluates an algorithm on a workload and reports the two
quantities every experiment in the paper is phrased in:

* **speedup** — BF's total decomposition time divided by the algorithm's,
* **average quality-loss** — the mean of ``ql(O_i, A_i)`` over the sequence.

BF and the Markowitz references are computed once per workload and cached so
that sweeping a parameter (α, β, ΔE, workers) does not redo the baseline;
:attr:`WorkloadRunner.bf_baseline_runs` and
:meth:`~repro.core.quality.MarkowitzReference.cache_info` expose counters the
regression tests pin this behaviour with.

Since this PR every evaluation also takes a ``workers`` axis: ``0`` runs the
algorithm with the in-process :class:`~repro.exec.executors.SerialExecutor`,
``n >= 1`` fans the work units out across ``n`` worker processes via
:class:`~repro.exec.executors.ParallelExecutor`.  The decompositions are
bitwise-identical either way; what changes is the measured wall-clock, which
the report carries alongside the serial-summed component times.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.bench.workloads import Workload
from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.inc import decompose_sequence_inc
from repro.core.problem import LUDEMQCProblem
from repro.core.qc import solve_qc_cinc, solve_qc_clude
from repro.core.quality import MarkowitzReference
from repro.core.result import SequenceResult
from repro.errors import MeasureError
from repro.exec.executors import Executor, resolve_executor
from repro.graphs.ems import EvolvingMatrixSequence


@dataclasses.dataclass
class AlgorithmReport:
    """Metrics of one algorithm run on one workload."""

    workload: str
    algorithm: str
    parameter: float
    total_time: float
    speedup: float
    average_quality_loss: float
    cluster_count: int
    bennett_time: float
    ordering_time: float
    decomposition_time: float
    clustering_time: float
    symbolic_time: float
    mean_fill: float
    structural_ops: int
    workers: int = 0
    wall_time: float = 0.0

    def as_row(self) -> Dict[str, object]:
        """Return the report as a flat dict (one table row)."""
        return dataclasses.asdict(self)


class WorkloadRunner:
    """Runs BF once and evaluates the other algorithms against it."""

    def __init__(self, workload: Workload) -> None:
        self._workload = workload
        self._reference = MarkowitzReference(symmetric=workload.symmetric)
        self._bf_result: Optional[SequenceResult] = None
        self._bf_baseline_runs = 0

    @property
    def workload(self) -> Workload:
        """The workload under evaluation."""
        return self._workload

    @property
    def reference(self) -> MarkowitzReference:
        """The Markowitz reference cache shared by all evaluations."""
        return self._reference

    @property
    def bf_baseline_runs(self) -> int:
        """How many times the BF baseline was actually computed (should stay 1)."""
        return self._bf_baseline_runs

    def bf_result(self) -> SequenceResult:
        """Return (running it on first use) the BF baseline result."""
        if self._bf_result is None:
            self._bf_baseline_runs += 1
            self._bf_result = decompose_sequence_bf(self._workload.matrices)
        return self._bf_result

    # ------------------------------------------------------------------ #
    # Evaluation entry points
    # ------------------------------------------------------------------ #
    def evaluate(
        self, algorithm: str, alpha: float = 0.95, workers: int = 0
    ) -> AlgorithmReport:
        """Run one LUDEM algorithm and report its metrics.

        ``parameter`` in the report is α for the cluster-based algorithms and
        0.0 for BF / INC (which take no parameter).  ``workers`` selects the
        executor: 0 for serial, ``n >= 1`` for a process pool of ``n``
        workers.  ``BF`` with ``workers=0`` returns the cached baseline.
        """
        name = algorithm.upper()
        matrices = self._workload.matrices
        executor = self._executor_for(workers)
        if name == "BF":
            if workers <= 0:
                result = self.bf_result()
            else:
                result = decompose_sequence_bf(matrices, executor=executor)
            parameter = 0.0
        elif name == "INC":
            result = decompose_sequence_inc(matrices, executor=executor)
            parameter = 0.0
        elif name == "CINC":
            result = decompose_sequence_cinc(matrices, alpha=alpha, executor=executor)
            parameter = alpha
        elif name == "CLUDE":
            result = decompose_sequence_clude(matrices, alpha=alpha, executor=executor)
            parameter = alpha
        else:
            raise MeasureError(f"unknown algorithm {algorithm!r}")
        return self._report(result, parameter, workers)

    def evaluate_qc(
        self, algorithm: str, beta: float, workers: int = 0
    ) -> AlgorithmReport:
        """Run one LUDEM-QC algorithm (CINC or CLUDE) and report its metrics."""
        if not self._workload.symmetric:
            raise MeasureError("LUDEM-QC evaluation requires a symmetric workload")
        problem = LUDEMQCProblem(
            ems=EvolvingMatrixSequence(self._workload.matrices),
            quality_requirement=beta,
        )
        executor = self._executor_for(workers)
        name = algorithm.upper()
        if name in ("CINC", "CINC-QC"):
            result = solve_qc_cinc(problem, reference=self._reference, executor=executor)
        elif name in ("CLUDE", "CLUDE-QC"):
            result = solve_qc_clude(problem, reference=self._reference, executor=executor)
        else:
            raise MeasureError(f"unknown LUDEM-QC algorithm {algorithm!r}")
        return self._report(result, beta, workers)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _executor_for(workers: int) -> Executor:
        if workers < 0:
            raise MeasureError(f"workers must be non-negative, got {workers}")
        return resolve_executor(workers)

    def _report(
        self, result: SequenceResult, parameter: float, workers: int = 0
    ) -> AlgorithmReport:
        matrices = self._workload.matrices
        bf_time = self.bf_result().total_time
        total_time = result.total_time
        speedup = bf_time / total_time if total_time > 0 else float("inf")
        summary = result.summary()
        return AlgorithmReport(
            workload=self._workload.name,
            algorithm=result.algorithm,
            parameter=parameter,
            total_time=total_time,
            speedup=speedup,
            average_quality_loss=result.average_quality_loss(matrices, self._reference),
            cluster_count=result.cluster_count,
            bennett_time=result.timing.bennett_time,
            ordering_time=result.timing.ordering_time,
            decomposition_time=result.timing.decomposition_time,
            clustering_time=result.timing.clustering_time,
            symbolic_time=result.timing.symbolic_time,
            mean_fill=summary["mean_fill_size"],
            structural_ops=int(summary["structural_ops"]),
            workers=max(0, workers),
            wall_time=result.wall_time,
        )


def sweep_alpha(
    runner: WorkloadRunner, algorithms: Sequence[str], alphas: Sequence[float]
) -> List[AlgorithmReport]:
    """Evaluate several algorithms across an α sweep (Figures 6-8)."""
    reports: List[AlgorithmReport] = []
    for alpha in alphas:
        for algorithm in algorithms:
            reports.append(runner.evaluate(algorithm, alpha=alpha))
    return reports


def sweep_beta(
    runner: WorkloadRunner, algorithms: Sequence[str], betas: Sequence[float]
) -> List[AlgorithmReport]:
    """Evaluate the QC algorithms across a β sweep (Figure 10)."""
    reports: List[AlgorithmReport] = []
    for beta in betas:
        for algorithm in algorithms:
            reports.append(runner.evaluate_qc(algorithm, beta=beta))
    return reports


def sweep_workers(
    runner: WorkloadRunner,
    algorithms: Sequence[str],
    workers_list: Sequence[int],
    alpha: float = 0.95,
) -> List[AlgorithmReport]:
    """Evaluate algorithms across a workers sweep (speedup-vs-cores scenario).

    ``workers_list`` follows the executor convention: 0 is the in-process
    serial executor, ``n >= 1`` a pool of ``n`` worker processes.  The BF
    baseline and Markowitz references are still computed only once for the
    whole sweep.
    """
    reports: List[AlgorithmReport] = []
    for workers in workers_list:
        for algorithm in algorithms:
            reports.append(runner.evaluate(algorithm, alpha=alpha, workers=workers))
    return reports
