"""Benchmark harness: workloads, runners and plain-text reporting."""

from repro.bench.reporting import format_table, print_header, reports_to_table, series_table
from repro.bench.runner import (
    AlgorithmReport,
    WorkloadRunner,
    sweep_alpha,
    sweep_beta,
    sweep_workers,
)
from repro.bench.workloads import (
    ALPHA_SWEEP,
    BETA_SWEEP,
    DELTA_E_SWEEP,
    WORKER_SWEEP,
    Workload,
    dblp_workload,
    parallel_speedup_workload,
    synthetic_workload,
    synthetic_workload_with_delta,
    wiki_workload,
)

__all__ = [
    "Workload",
    "WorkloadRunner",
    "AlgorithmReport",
    "sweep_alpha",
    "sweep_beta",
    "sweep_workers",
    "parallel_speedup_workload",
    "WORKER_SWEEP",
    "wiki_workload",
    "dblp_workload",
    "synthetic_workload",
    "synthetic_workload_with_delta",
    "ALPHA_SWEEP",
    "BETA_SWEEP",
    "DELTA_E_SWEEP",
    "format_table",
    "series_table",
    "reports_to_table",
    "print_header",
]
