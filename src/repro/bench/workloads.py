"""Shared benchmark workloads.

The benchmark scripts in ``benchmarks/`` regenerate the paper's figures on
the simulated datasets.  This module centralizes workload construction (which
dataset, which matrix kind, how many snapshots) so that every figure uses the
same inputs and the scales can be tuned in one place.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.datasets.registry import load_dblp, load_synthetic, load_wiki
from repro.errors import DatasetError
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs
from repro.graphs.matrixkind import MatrixKind
from repro.sparse.csr import SparseMatrix

#: The α values swept by the quality/speedup experiments (paper Figures 6-8).
ALPHA_SWEEP: List[float] = [0.90, 0.92, 0.94, 0.96, 0.98, 1.00]

#: The β values swept by the LUDEM-QC experiment (paper Figure 10).
BETA_SWEEP: List[float] = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3]

#: The ΔE values swept by the synthetic-sensitivity experiment (paper Figure 9).
DELTA_E_SWEEP: List[int] = [12, 20, 28, 36, 44]

#: The worker counts swept by the speedup-vs-cores scenario (0 = serial
#: in-process executor, n >= 1 = a pool of n worker processes).
WORKER_SWEEP: List[int] = [0, 1, 2, 4]


@dataclasses.dataclass(frozen=True)
class Workload:
    """A named matrix-sequence workload used by one or more benchmarks."""

    name: str
    matrices: List[SparseMatrix]
    symmetric: bool

    @property
    def length(self) -> int:
        """Number of matrices in the workload."""
        return len(self.matrices)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.matrices[0].n if self.matrices else 0


def wiki_workload(scale: str = "small", damping: float = 0.85) -> Workload:
    """The simulated Wikipedia workload (directed, RWR-style matrices)."""
    egs = load_wiki(scale)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK, damping=damping)
    return Workload(name=f"wiki-{scale}", matrices=list(ems), symmetric=False)


def dblp_workload(scale: str = "small", damping: float = 0.85) -> Workload:
    """The simulated DBLP workload (undirected, symmetric matrices)."""
    egs = load_dblp(scale)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK, damping=damping)
    return Workload(name=f"dblp-{scale}", matrices=list(ems), symmetric=True)


def synthetic_workload(scale: str = "small", damping: float = 0.85) -> Workload:
    """The synthetic workload with the default generator parameters."""
    egs = load_synthetic(scale)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK, damping=damping)
    return Workload(name=f"synthetic-{scale}", matrices=list(ems), symmetric=False)


def synthetic_workload_with_delta(
    delta_edges: int,
    nodes: int = 220,
    snapshots: int = 16,
    damping: float = 0.85,
    seed: int = 7,
) -> Workload:
    """A synthetic workload with a specific per-step edge-change budget ΔE.

    Used by the Figure 9 sensitivity sweep; all other generator parameters are
    held fixed so the only independent variable is ΔE.
    """
    if delta_edges < 0:
        raise DatasetError("delta_edges must be non-negative")
    config = SyntheticEGSConfig(
        nodes=nodes,
        edge_pool_size=nodes * 9,
        average_degree=5,
        delta_edges=delta_edges,
        snapshots=snapshots,
        seed=seed,
    )
    egs = generate_synthetic_egs(config)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK, damping=damping)
    return Workload(name=f"synthetic-dE{delta_edges}", matrices=list(ems), symmetric=False)


def parallel_speedup_workload(
    snapshots: int = 64,
    nodes: int = 150,
    delta_edges: int = 24,
    damping: float = 0.85,
    seed: int = 21,
) -> Workload:
    """The workload of the speedup-vs-cores scenario (``workers`` sweep).

    A longer sequence (default T = 64) of moderate matrices: long enough that
    the per-snapshot / per-cluster work units dominate process-pool overhead,
    small enough per matrix that a full sweep stays laptop-friendly.
    """
    if snapshots < 1:
        raise DatasetError("need at least one snapshot")
    config = SyntheticEGSConfig(
        nodes=nodes,
        edge_pool_size=nodes * 9,
        average_degree=4,
        delta_edges=delta_edges,
        snapshots=snapshots,
        seed=seed,
    )
    egs = generate_synthetic_egs(config)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK, damping=damping)
    return Workload(name=f"parallel-T{snapshots}", matrices=list(ems), symmetric=False)
