"""Reuse policies: the approximation contract as a first-class object.

The layering::

    core.qc (LUDEM-QC drivers)      query.planner (serving)
            └──────────────┬──────────────┘
                      repro.policy
            ReusePolicy · ExactPolicy · QCPolicy
                           │
        core.similarity (mes scoring) · core.quality (loss estimates)
        graphs.delta (fast Δ-based scoring) · graphs.matrixkind (system Δ)

Both consumers of the paper's bounded-quality-loss trade — the offline
β-clustering decompositions and the online query planner — take the same
policy object, so "how approximate may this system be" is stated once,
inspected in one place, and extended by subclassing
:class:`~repro.policy.base.ReusePolicy`.
"""

from repro.policy.base import (
    DECOMPOSITION_FLAVORS,
    CorrectionDecision,
    ReuseDecision,
    ReusePolicy,
)
from repro.policy.corrected import CorrectedPolicy
from repro.policy.exact import ExactPolicy
from repro.policy.qc import QCPolicy

__all__ = [
    "DECOMPOSITION_FLAVORS",
    "CorrectionDecision",
    "ReuseDecision",
    "ReusePolicy",
    "ExactPolicy",
    "QCPolicy",
    "CorrectedPolicy",
]
