"""Corrected reuse: rank-k SMW-corrected answers under a certified bound.

:class:`~repro.policy.qc.QCPolicy` trades all-or-nothing — a miss group
either answers *verbatim* from a similar cached system (loss bounded by the
full ``‖ΔA‖₁``) or pays a cold factorization.  :class:`CorrectedPolicy` adds
the missing middle: apply the ``k`` **dominant columns** of ``ΔA`` exactly,
via a rank-``k`` Sherman–Morrison–Woodbury solve over the parent's cached
factors (:class:`~repro.lu.smw.WoodburyCorrector` — ``k`` extra triangular
sweeps plus a ``k×k`` dense solve, instead of an O(n·nnz) factorization),
and certify the *residual* delta with the same
:func:`~repro.core.quality.reuse_loss_bound` machinery.

Columns, not arbitrary rank-1 terms.  The certification argument needs the
corrected system ``A_corr = I - d·M'`` to keep a bounded inverse, and that
holds when every column of ``M'`` comes *wholesale* from either the old or
the new walk matrix — a column-wise mix of two column-substochastic matrices
is column-substochastic (and a column-wise mix of two Laplacian systems
stays a column-diagonally-dominant M-matrix with unit column sums).  Partial
*row* mixing, by contrast, can push a column sum up to 2 and voids the
bound.  So the policy groups ``ΔA`` by column — the column-grouping branch
of the :func:`~repro.lu.bennett.delta_to_rank_one_terms` idiom, forced —
ranks columns by L1 mass ``‖ΔA e_j‖₁`` (the ``|u|·|v|`` mass of the rank-1
term ``(ΔA e_j) e_jᵀ``), and picks the smallest ``k`` whose residual bound
clears ``loss_bound``.  With columns sorted by descending mass, the residual
bound after ``k`` columns is the ``(k+1)``-th largest mass over ``(1 - d)``
— monotonically non-increasing in ``k`` by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.policy.base import CorrectionDecision
from repro.policy.qc import QCPolicy


def ranked_update_columns(
    entries: Dict[Tuple[int, int], float],
) -> List[Tuple[int, float]]:
    """Rank the columns of a sparse delta by descending L1 mass.

    Returns ``[(column, mass), ...]`` with ``mass = Σ_i |ΔA[i, column]|``,
    sorted by descending mass (ties broken by ascending column index, so the
    ranking — and therefore every planner decision built on it — is
    deterministic).  The per-column accumulation order matches
    :func:`~repro.core.quality.reuse_loss_bound`, so the masses here and the
    bounds there are float-identical, not merely close.
    """
    masses: Dict[int, float] = {}
    for (_, column), value in entries.items():
        masses[column] = masses.get(column, 0.0) + abs(value)
    return sorted(masses.items(), key=lambda item: (-item[1], item[0]))


class CorrectedPolicy(QCPolicy):
    """QC reuse plus rank-``k`` SMW correction and cross-damping sharing.

    A strict extension of :class:`~repro.policy.qc.QCPolicy`: the verbatim
    gates (``alpha`` similarity floor, ``loss_bound`` ceiling,
    :meth:`~repro.policy.qc.QCPolicy.certifies_kind`) are inherited
    unchanged, so wherever plain QC reuse succeeds this policy behaves
    identically.  Where verbatim reuse *fails* the bound, :meth:`correct`
    looks for the smallest rank ``k <= max_rank`` whose residual bound
    clears it.

    Parameters
    ----------
    alpha:
        Snapshot-similarity floor, as for :class:`~repro.policy.qc.QCPolicy`.
    loss_bound:
        Quality-loss ceiling (β) applied to the **residual** bound of a
        corrected answer, exactly as it is applied to the full bound of a
        verbatim one.
    max_rank:
        Correction-rank ceiling (``>= 1``).  Each unit of rank costs one
        extra triangular sweep at corrector-build time and one row of the
        ``k×k`` capacitance solve per batch — keep it small (the default 8
        covers a handful of dominant churned columns; past ~32 the setup
        sweeps start rivalling a Bennett refresh).
    """

    def __init__(
        self, alpha: float = 0.95, loss_bound: float = 0.1, max_rank: int = 8
    ) -> None:
        from repro.errors import ClusteringError

        super().__init__(alpha=alpha, loss_bound=loss_bound)
        if not isinstance(max_rank, int) or max_rank < 1:
            raise ClusteringError(
                f"max_rank must be a positive integer, got {max_rank!r}"
            )
        self._max_rank = max_rank

    @property
    def name(self) -> str:
        return "corrected"

    @property
    def max_rank(self) -> int:
        """The correction-rank ceiling."""
        return self._max_rank

    @property
    def supports_correction(self) -> bool:
        return True

    def correct(
        self,
        entries: Dict[Tuple[int, int], float],
        *,
        amplifier_damping: float,
        similarity: float,
    ) -> Optional[CorrectionDecision]:
        """Pick the smallest rank whose residual bound clears ``loss_bound``.

        ``entries`` is the system delta ``ΔA`` and ``amplifier_damping`` the
        value the caller certifies for the kind (``0.0`` for Laplacian).  The
        residual bound after applying the ``k`` heaviest columns is the
        ``(k+1)``-th largest column mass over ``(1 - d)`` (``0.0`` once every
        column is applied), so the search is a single pass over the ranked
        masses.  Returns ``None`` when the pair misses the similarity floor
        or no rank ``<= max_rank`` suffices — the planner then falls through
        to refresh / cold factorization.
        """
        from repro.core.quality import reuse_loss_bound
        from repro.errors import MeasureError

        if not 0.0 <= amplifier_damping < 1.0:
            raise MeasureError(
                "damping factor must lie in [0, 1) for the residual bound, "
                f"got {amplifier_damping}"
            )
        if similarity < self.alpha:
            return None
        uncorrected = reuse_loss_bound(entries, amplifier_damping)
        ranked = ranked_update_columns(entries)
        limit = min(self._max_rank, len(ranked))
        for rank in range(limit + 1):
            # Residual after applying the `rank` heaviest columns; dividing
            # (not multiplying by a precomputed reciprocal) keeps the value
            # float-identical to residual_loss_bound on the same delta.
            residual = (
                ranked[rank][1] / (1.0 - amplifier_damping)
                if rank < len(ranked)
                else 0.0
            )
            if residual <= self.loss_bound:
                return CorrectionDecision(
                    similarity=similarity,
                    loss_estimate=residual,
                    uncorrected_estimate=uncorrected,
                    rank=rank,
                    columns=tuple(column for column, _ in ranked[:rank]),
                )
        return None

    def __repr__(self) -> str:
        return (
            f"CorrectedPolicy(alpha={self.alpha}, "
            f"loss_bound={self.loss_bound}, max_rank={self._max_rank})"
        )
