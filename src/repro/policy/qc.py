"""The quality-controlled reuse policy: the paper's α/β gates, unified.

:class:`QCPolicy` carries the two thresholds the paper trades with:

* ``alpha`` — the similarity floor (Definition 8's α-boundedness, applied
  serving-side to snapshot pairs): a cached system is only considered for
  reuse when ``mes(parent, child) >= alpha``.
* ``loss_bound`` — the quality-loss ceiling (Definition 5's β, applied to
  whichever loss measure the consumer trades in): offline it bounds the
  ordering quality loss of a shared cluster ordering; online it bounds the
  certified relative deviation of answering from stale factors
  (:func:`~repro.core.quality.reuse_loss_bound`).

The two gates are deliberately evaluated in that order: similarity costs
O(|Δ|) given the graph delta, while the loss estimate needs the system-level
entry delta (:func:`~repro.graphs.matrixkind.system_delta`) — still cheap,
but not free, so dissimilar candidates are discarded before it is built.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.policy.base import ReuseDecision, ReusePolicy, _beta_clusters

if TYPE_CHECKING:
    from repro.core.clustering import MatrixCluster
    from repro.core.quality import MarkowitzReference
    from repro.graphs.delta import GraphDelta
    from repro.graphs.matrixkind import MatrixKind
    from repro.graphs.snapshot import GraphSnapshot
    from repro.sparse.csr import SparseMatrix


class QCPolicy(ReusePolicy):
    """Accept a bounded quality loss in exchange for factorization reuse.

    Parameters
    ----------
    alpha:
        Snapshot-similarity floor in ``[0, 1]``: candidates below it are
        rejected before any loss estimation.  ``0.0`` admits every candidate
        to the loss gate; ``1.0`` only content-identical snapshots.
    loss_bound:
        Non-negative quality-loss ceiling (the paper's β).  Serving-side it
        caps the reported :attr:`~repro.policy.base.ReuseDecision.
        loss_estimate`, so every approximate answer a planner emits under
        this policy carries an estimate ``<= loss_bound`` by construction.
    """

    def __init__(self, alpha: float = 0.95, loss_bound: float = 0.1) -> None:
        from repro.errors import ClusteringError

        if not 0.0 <= alpha <= 1.0:
            raise ClusteringError(f"alpha must lie in [0, 1], got {alpha}")
        if loss_bound < 0.0:
            raise ClusteringError(
                f"quality-loss bound must be non-negative, got {loss_bound}"
            )
        self._alpha = float(alpha)
        self._loss_bound = float(loss_bound)

    @property
    def name(self) -> str:
        return "qc"

    @property
    def is_exact(self) -> bool:
        return False

    @property
    def alpha(self) -> float:
        """The similarity floor."""
        return self._alpha

    @property
    def loss_bound(self) -> float:
        """The quality-loss ceiling (β)."""
        return self._loss_bound

    # ------------------------------------------------------------------ #
    # The two scoring ingredients (inspectable on their own)
    # ------------------------------------------------------------------ #
    def similarity(
        self,
        parent: "GraphSnapshot",
        child: "GraphSnapshot",
        delta: Optional["GraphDelta"] = None,
    ) -> float:
        """Snapshot similarity score (``mes``; O(|Δ|) when ``delta`` given)."""
        from repro.core.similarity import snapshot_similarity

        return snapshot_similarity(parent, child, delta=delta)

    @staticmethod
    def certifies_kind(kind: "MatrixKind") -> bool:
        """Whether a finite deviation amplification is certified for ``kind``.

        The :func:`~repro.core.quality.reuse_loss_bound` derivation needs
        ``‖A⁻¹‖₁`` bounded: true for the column-substochastic kinds
        (``RANDOM_WALK``, both SALSA products; amplification ``1/(1-d)``)
        and the Laplacian system (amplification 1), **not** for
        ``SYMMETRIC_WALK``, whose normalized matrix has column sums up to
        ``sqrt(deg)``.  Uncertified kinds are never reused — an unbounded
        "estimate" would not be a quality guarantee.
        """
        from repro.graphs.matrixkind import MatrixKind

        return kind in (
            MatrixKind.RANDOM_WALK,
            MatrixKind.SALSA_AUTHORITY,
            MatrixKind.SALSA_HUB,
            MatrixKind.LAPLACIAN,
        )

    def loss_estimate(
        self,
        parent: "GraphSnapshot",
        child: "GraphSnapshot",
        *,
        kind: "MatrixKind",
        damping: float,
        delta: Optional["GraphDelta"] = None,
    ) -> float:
        """Certified relative-deviation bound of answering child from parent.

        Builds the sparse system-matrix delta for ``kind`` and feeds it to
        :func:`~repro.core.quality.reuse_loss_bound`.  The Laplacian kind is
        undamped (``A = I + L`` has a unit-norm inverse), so its
        amplification factor is 1.  Raises
        :class:`~repro.errors.MeasureError` for kinds without a certified
        amplification (see :meth:`certifies_kind`).
        """
        from repro.core.quality import reuse_loss_bound
        from repro.errors import MeasureError
        from repro.graphs.matrixkind import MatrixKind, system_delta

        if not self.certifies_kind(kind):
            raise MeasureError(
                f"no certified reuse-loss bound for matrix kind {kind!r}; "
                "QCPolicy only trades quality where the loss estimate is a "
                "proven deviation bound"
            )
        entries = system_delta(parent, child, kind=kind, damping=damping, delta=delta)
        amplifier_damping = 0.0 if kind is MatrixKind.LAPLACIAN else damping
        return reuse_loss_bound(entries, amplifier_damping)

    # ------------------------------------------------------------------ #
    # The serving gate
    # ------------------------------------------------------------------ #
    def prefilter(self, parent: "GraphSnapshot", child: "GraphSnapshot") -> bool:
        """Edge-count upper bound on similarity: reject below α without a delta.

        ``mes <= 2·min(|E_p|, |E_c|) / (|E_p| + |E_c|)`` (the intersection
        can never exceed the smaller edge set), so a candidate whose bound
        already misses ``alpha`` is rejected in O(1).
        """
        total = parent.edge_count + child.edge_count
        if total == 0:
            return True  # two edgeless snapshots: similarity is defined as 1
        bound = 2.0 * min(parent.edge_count, child.edge_count) / total
        return bound >= self._alpha

    def evaluate_reuse(
        self,
        parent: "GraphSnapshot",
        child: "GraphSnapshot",
        *,
        kind: "MatrixKind",
        damping: float,
        delta: Optional["GraphDelta"] = None,
    ) -> Optional[ReuseDecision]:
        from repro.graphs.delta import GraphDelta

        if parent.n != child.n or not self.certifies_kind(kind):
            return None
        if delta is None:
            delta = GraphDelta.between(parent, child)
        similarity = self.similarity(parent, child, delta=delta)
        if similarity < self._alpha:
            return None
        loss = self.loss_estimate(
            parent, child, kind=kind, damping=damping, delta=delta
        )
        if loss > self._loss_bound:
            return None
        return ReuseDecision(similarity=similarity, loss_estimate=loss)

    # ------------------------------------------------------------------ #
    # The offline gate (LUDEM-QC β-clustering)
    # ------------------------------------------------------------------ #
    def decomposition_clusters(
        self,
        flavor: str,
        matrices: Sequence["SparseMatrix"],
        reference: Optional["MarkowitzReference"] = None,
    ) -> List["MatrixCluster"]:
        return _beta_clusters(flavor, matrices, self._loss_bound, reference)

    def __repr__(self) -> str:
        return f"QCPolicy(alpha={self._alpha}, loss_bound={self._loss_bound})"
