"""The exact policy: never trade correctness for reuse."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.policy.base import ReuseDecision, ReusePolicy, _beta_clusters

if TYPE_CHECKING:
    from repro.core.clustering import MatrixCluster
    from repro.core.quality import MarkowitzReference
    from repro.graphs.delta import GraphDelta
    from repro.graphs.matrixkind import MatrixKind
    from repro.graphs.snapshot import GraphSnapshot
    from repro.sparse.csr import SparseMatrix


class ExactPolicy(ReusePolicy):
    """Zero tolerated quality loss — the planner's default contract.

    Serving: :meth:`evaluate_reuse` rejects every candidate, so a query is
    only ever answered from factors of its *own* system matrix (cache hit,
    delta refresh where explicitly opted into, or cold factorization) and the
    planner's output stays bitwise-identical to the policy-less planner.

    Decomposition: clustering with the quality bound pinned to ``β = 0`` —
    an ordering is shared across snapshots only while it is provably as good
    as each member's own Markowitz ordering (Definition 4 loss of exactly
    zero), which still merges structurally identical snapshots.
    """

    @property
    def name(self) -> str:
        return "exact"

    @property
    def is_exact(self) -> bool:
        return True

    def evaluate_reuse(
        self,
        parent: "GraphSnapshot",
        child: "GraphSnapshot",
        *,
        kind: "MatrixKind",
        damping: float,
        delta: Optional["GraphDelta"] = None,
    ) -> Optional[ReuseDecision]:
        return None

    def decomposition_clusters(
        self,
        flavor: str,
        matrices: Sequence["SparseMatrix"],
        reference: Optional["MarkowitzReference"] = None,
    ) -> List["MatrixCluster"]:
        return _beta_clusters(flavor, matrices, 0.0, reference)
