"""The reuse-policy protocol: approximation as a first-class object.

The paper's central trade — accept a *bounded* quality loss to reuse an
existing factorization instead of computing a fresh one — appears twice in
this library:

* **Offline** (LUDEM-QC, Section 5): the β-clustering algorithms grow a
  cluster only while the shared ordering provably keeps every member's
  quality loss (Definition 4) within the bound.
* **Online** (serving): a query planner facing a cache miss for a snapshot
  that is *similar enough* to a cached one may answer from the cached
  system's factors outright — no refresh, no factorization — as long as the
  estimated answer deviation stays within the bound.

A :class:`ReusePolicy` makes that trade inspectable and swappable instead of
a flag buried inside one algorithm.  It owns the three ingredients:
snapshot-similarity scoring (:func:`repro.core.similarity.
snapshot_similarity`), the quality-loss estimate
(:func:`repro.core.quality.reuse_loss_bound` online, Definition 4 via
:class:`~repro.core.quality.MarkowitzReference` offline) and the
accept/reject decision combining them.  :class:`~repro.policy.exact.
ExactPolicy` never approximates; :class:`~repro.policy.qc.QCPolicy` applies
the paper's α/β gates; new policies subclass :class:`ReusePolicy`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # imported lazily at runtime to keep the package cycle-free
    from repro.core.clustering import MatrixCluster
    from repro.core.quality import MarkowitzReference
    from repro.graphs.delta import GraphDelta
    from repro.graphs.matrixkind import MatrixKind
    from repro.graphs.snapshot import GraphSnapshot
    from repro.sparse.csr import SparseMatrix

#: The decomposition flavors a policy can cluster for (Algorithms 4 and 5).
DECOMPOSITION_FLAVORS = ("CINC", "CLUDE")


@dataclasses.dataclass(frozen=True)
class ReuseDecision:
    """A policy's verdict that one cached system may answer for another.

    Attributes
    ----------
    similarity:
        The snapshot similarity score the candidate passed (``mes``-style,
        in ``[0, 1]``; ``1.0`` means content-identical snapshots).
    loss_estimate:
        The policy's estimate of the quality loss the caller accepts by
        reusing — for :class:`~repro.policy.qc.QCPolicy` the certified bound
        on the relative L1 deviation of the raw answer
        (:func:`~repro.core.quality.reuse_loss_bound`).  Always within the
        policy's declared bound, by construction of the gate.
    """

    similarity: float
    loss_estimate: float

    def preferable_to(self, other: "ReuseDecision") -> bool:
        """Deterministic candidate ranking: higher similarity, then lower loss."""
        return (self.similarity, -self.loss_estimate) > (
            other.similarity,
            -other.loss_estimate,
        )


@dataclasses.dataclass(frozen=True)
class CorrectionDecision:
    """A policy's verdict that a rank-``k`` corrected answer is admissible.

    Produced by :meth:`ReusePolicy.correct` for a concrete system delta
    ``ΔA`` between a cached parent system and the miss's system.  The planner
    then applies the ``columns`` of ``ΔA`` exactly via Sherman–Morrison–
    Woodbury over the parent's cached factors and records ``loss_estimate``
    — the certified bound on the *residual* deviation — in the batch result.

    Attributes
    ----------
    similarity:
        Snapshot similarity of the (parent, child) pair (``1.0`` for
        cross-damping corrections, whose snapshots are content-identical).
    loss_estimate:
        Certified residual bound after applying ``columns``
        (:func:`~repro.core.quality.residual_loss_bound`); within the
        policy's declared bound by construction.
    uncorrected_estimate:
        The verbatim-reuse bound for the same pair — what
        :func:`~repro.core.quality.reuse_loss_bound` certifies with no
        correction at all.  Always ``>= loss_estimate``; the gap is the
        quality bought by the rank-``k`` work.
    rank:
        Number of delta columns applied exactly (``k``); ``0`` means the
        parent's answer already clears the bound verbatim.
    columns:
        The applied column indices, in application order (dominant first).
    """

    similarity: float
    loss_estimate: float
    uncorrected_estimate: float
    rank: int
    columns: Tuple[int, ...]

    def preferable_to(self, other: "CorrectionDecision") -> bool:
        """Deterministic ranking: cheapest rank, then tightest bound, then
        highest similarity."""
        return (-self.rank, -self.loss_estimate, self.similarity) > (
            -other.rank,
            -other.loss_estimate,
            other.similarity,
        )


class ReusePolicy(abc.ABC):
    """Decides when an existing factorization may stand in for a fresh one.

    Two consumer surfaces share one policy object:

    * :meth:`evaluate_reuse` — the **serving** gate.  The query planner calls
      it for every cached candidate system when a miss group's snapshot has
      no factors of its own; a non-``None`` :class:`ReuseDecision` licenses
      answering from the candidate's factors and carries the audit fields
      recorded in the batch result.
    * :meth:`decomposition_clusters` — the **offline** gate.  The LUDEM-QC
      drivers (:mod:`repro.core.qc`) delegate their β-clustering step here,
      so the same policy object states the quality contract for both paths.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable policy name (appears in audit records)."""

    @property
    @abc.abstractmethod
    def is_exact(self) -> bool:
        """``True`` when the policy never licenses an approximate answer.

        The planner skips the candidate scan entirely for exact policies, so
        an exact-policy planner is bitwise-identical to a policy-less one.
        """

    def prefilter(self, parent: "GraphSnapshot", child: "GraphSnapshot") -> bool:
        """Cheap O(1) pre-gate run before any delta is built for a candidate.

        Return ``False`` only when :meth:`evaluate_reuse` would *provably*
        reject the pair, using nothing more expensive than counts — the
        planner then skips the O(|E|) delta construction for that candidate.
        The default accepts everything (no information, no rejection).
        """
        return True

    @abc.abstractmethod
    def evaluate_reuse(
        self,
        parent: "GraphSnapshot",
        child: "GraphSnapshot",
        *,
        kind: "MatrixKind",
        damping: float,
        delta: Optional["GraphDelta"] = None,
    ) -> Optional[ReuseDecision]:
        """Gate answering ``child``'s queries from ``parent``'s cached factors.

        Returns a :class:`ReuseDecision` when the policy accepts the
        substitution, ``None`` when it rejects.  ``delta`` is the
        already-computed :class:`~repro.graphs.delta.GraphDelta` between the
        snapshots, when the caller has it (the planner computes one per
        candidate anyway for the fast similarity path).
        """

    @property
    def supports_correction(self) -> bool:
        """``True`` when :meth:`correct` can license rank-``k`` corrected
        answers.  The planner skips its corrected-reuse scan entirely when
        this is ``False`` (the default), so existing policies are unaffected.
        """
        return False

    def correct(
        self,
        entries: Dict[Tuple[int, int], float],
        *,
        amplifier_damping: float,
        similarity: float,
    ) -> Optional["CorrectionDecision"]:
        """Gate a rank-``k`` SMW-corrected answer for a concrete delta.

        ``entries`` is the sparse system delta ``ΔA = A_child - A_parent``
        (:func:`~repro.graphs.matrixkind.system_delta` /
        :func:`~repro.graphs.matrixkind.damping_delta` output) and
        ``amplifier_damping`` the value to feed the bound machinery (``0.0``
        for Laplacian systems, the damping factor otherwise — the caller owns
        that per-kind mapping, as it does for verbatim reuse).  Returns a
        :class:`CorrectionDecision` naming the columns to apply, or ``None``
        to reject.  The default implementation rejects everything.
        """
        return None

    @abc.abstractmethod
    def decomposition_clusters(
        self,
        flavor: str,
        matrices: Sequence["SparseMatrix"],
        reference: Optional["MarkowitzReference"] = None,
    ) -> List["MatrixCluster"]:
        """Segment an EMS under this policy's quality contract.

        ``flavor`` selects the clustering algorithm (``"CINC"`` = Algorithm 4,
        first-member ordering; ``"CLUDE"`` = Algorithm 5, union ordering with
        the ``|s̃p(A_∪^{O_∪})|`` shortcut).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _beta_clusters(
    flavor: str,
    matrices: Sequence["SparseMatrix"],
    beta: float,
    reference: Optional["MarkowitzReference"],
) -> List["MatrixCluster"]:
    """Run the paper's β-clustering for one flavor (shared by the policies).

    Imported lazily: :mod:`repro.core.clustering` sits below the query/solver
    layers that import this package at module load.
    """
    from repro.core.clustering import beta_clustering_cinc, beta_clustering_clude
    from repro.errors import ClusteringError

    if flavor == "CINC":
        return beta_clustering_cinc(matrices, beta, reference)
    if flavor == "CLUDE":
        return beta_clustering_clude(matrices, beta, reference)
    raise ClusteringError(
        f"unknown decomposition flavor {flavor!r}; "
        f"expected one of {', '.join(DECOMPOSITION_FLAVORS)}"
    )
