"""Time-series-based link prediction (paper Example 3).

Classical link prediction scores node pairs on a *single* snapshot with a
proximity measure such as RWR.  With measure *time series* available for
every snapshot (cheap once the EMS is LU-decomposed), the trend of the
proximity becomes an additional signal: pairs whose proximity is rising are
more likely to connect.  This module implements that simple trend-aware
predictor.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasureError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.measures.timeseries import MeasureSeries


@dataclasses.dataclass(frozen=True)
class LinkPrediction:
    """One predicted link with its scores.

    Attributes
    ----------
    source, target:
        The predicted endpoints.
    current_score:
        RWR proximity at the latest snapshot.
    trend:
        Least-squares slope of the proximity over the observed window.
    combined_score:
        The ranking score (current proximity plus weighted positive trend).
    """

    source: int
    target: int
    current_score: float
    trend: float
    combined_score: float


def proximity_trend(series: Sequence[float]) -> float:
    """Return the least-squares slope of a proximity time series."""
    values = np.asarray(series, dtype=float)
    if values.size < 2:
        return 0.0
    steps = np.arange(values.size, dtype=float)
    slope = np.polyfit(steps, values, deg=1)[0]
    return float(slope)


def predict_links(
    egs: EvolvingGraphSequence,
    source: int,
    top_k: int = 5,
    damping: float = DEFAULT_DAMPING,
    trend_weight: float = 0.5,
    window: Optional[int] = None,
    algorithm: str = "CLUDE",
    alpha: float = 0.9,
    candidates: Optional[Sequence[int]] = None,
) -> List[LinkPrediction]:
    """Predict the most likely future out-neighbours of ``source``.

    Parameters
    ----------
    egs:
        The observed evolving graph sequence.
    source:
        The node whose future links are predicted.
    top_k:
        Number of predictions to return.
    damping:
        RWR damping factor.
    trend_weight:
        How strongly a rising trend boosts the ranking score.  The trend is
        normalized by the mean proximity so the weight is scale-free.
    window:
        Number of most recent snapshots to use (default: all).
    algorithm, alpha:
        LUDEM algorithm settings for decomposing the matrix sequence.
    candidates:
        Optional restriction of candidate targets; defaults to every node not
        already linked from ``source`` in the final snapshot.
    """
    if not 0 <= source < egs.n:
        raise MeasureError(f"source node {source} out of bounds for n={egs.n}")
    if top_k <= 0:
        return []

    series = MeasureSeries(egs, damping=damping, algorithm=algorithm, alpha=alpha)
    all_scores = series.rwr(source)
    if window is not None and window >= 2:
        all_scores = all_scores[-window:]

    final_snapshot = egs[len(egs) - 1]
    existing = final_snapshot.successors(source) | {source}
    if candidates is None:
        candidates = [node for node in range(egs.n) if node not in existing]
    else:
        candidates = [int(node) for node in candidates if int(node) not in existing]

    predictions: List[Tuple[float, LinkPrediction]] = []
    for target in candidates:
        history = all_scores[:, target]
        current = float(history[-1])
        trend = proximity_trend(history)
        mean_level = float(np.mean(history)) or 1e-12
        combined = current + trend_weight * max(trend, 0.0) * len(history) / mean_level * current
        predictions.append(
            (
                combined,
                LinkPrediction(
                    source=source,
                    target=int(target),
                    current_score=current,
                    trend=trend,
                    combined_score=combined,
                ),
            )
        )
    predictions.sort(key=lambda item: (-item[0], item[1].target))
    return [prediction for _, prediction in predictions[:top_k]]
