"""Key-moment detection in measure time series.

The paper's Example 1 motivates computing a measure over a whole EGS so that
"key moments" — snapshots where the measure changes sharply — can be
identified and investigated.  This module provides simple, dependency-free
detectors for such moments: large one-step relative changes (spikes and
drops) and sustained monotone trends (gradual decline/rise over a window).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.errors import MeasureError


@dataclasses.dataclass(frozen=True)
class KeyMoment:
    """A detected key moment in a time series.

    Attributes
    ----------
    index:
        Snapshot index at which the event is detected.
    kind:
        ``"rise"`` or ``"drop"`` for step changes, ``"uptrend"`` /
        ``"downtrend"`` for sustained moves.
    magnitude:
        Relative change associated with the event (positive for rises).
    """

    index: int
    kind: str
    magnitude: float


def detect_step_changes(
    series: Sequence[float], relative_threshold: float = 0.15
) -> List[KeyMoment]:
    """Detect one-step rises/drops whose relative magnitude exceeds a threshold.

    Parameters
    ----------
    series:
        The measure values over time.
    relative_threshold:
        Minimum ``|x_t - x_{t-1}| / max(|x_{t-1}|, eps)`` to report.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise MeasureError("series must be one-dimensional")
    if relative_threshold <= 0:
        raise MeasureError("relative_threshold must be positive")
    moments: List[KeyMoment] = []
    eps = 1e-12
    for index in range(1, values.size):
        previous = values[index - 1]
        change = (values[index] - previous) / max(abs(previous), eps)
        if change >= relative_threshold:
            moments.append(KeyMoment(index=index, kind="rise", magnitude=float(change)))
        elif change <= -relative_threshold:
            moments.append(KeyMoment(index=index, kind="drop", magnitude=float(change)))
    return moments


def detect_trends(
    series: Sequence[float],
    window: int = 10,
    relative_threshold: float = 0.2,
) -> List[KeyMoment]:
    """Detect sustained monotone moves over a sliding window.

    A window qualifies when the series moves monotonically (allowing small
    wiggles below 10% of the total move) and the total relative change over
    the window exceeds ``relative_threshold``.  Overlapping windows are
    merged; the reported index is the window start.
    """
    values = np.asarray(series, dtype=float)
    if window < 2:
        raise MeasureError("window must be at least 2")
    moments: List[KeyMoment] = []
    eps = 1e-12
    last_reported_end = -1
    for start in range(0, values.size - window):
        end = start + window
        if start < last_reported_end:
            continue
        segment = values[start:end + 1]
        total_change = (segment[-1] - segment[0]) / max(abs(segment[0]), eps)
        if abs(total_change) < relative_threshold:
            continue
        steps = np.diff(segment)
        if total_change > 0 and np.sum(steps < 0) <= window * 0.2:
            moments.append(KeyMoment(index=start, kind="uptrend", magnitude=float(total_change)))
            last_reported_end = end
        elif total_change < 0 and np.sum(steps > 0) <= window * 0.2:
            moments.append(KeyMoment(index=start, kind="downtrend", magnitude=float(total_change)))
            last_reported_end = end
    return moments


def summarize_moments(moments: Sequence[KeyMoment]) -> str:
    """Return a short human-readable summary of detected key moments."""
    if not moments:
        return "no key moments detected"
    parts = [
        f"#{moment.index}: {moment.kind} ({moment.magnitude:+.1%})" for moment in moments
    ]
    return "; ".join(parts)
