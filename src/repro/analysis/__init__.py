"""Analysis utilities built on measure time series (key moments, proximity, link prediction)."""

from repro.analysis.keymoments import (
    KeyMoment,
    detect_step_changes,
    detect_trends,
    summarize_moments,
)
from repro.analysis.linkpred import LinkPrediction, predict_links, proximity_trend
from repro.analysis.proximity import ProximityRankings, proximity_rankings

__all__ = [
    "KeyMoment",
    "detect_step_changes",
    "detect_trends",
    "summarize_moments",
    "LinkPrediction",
    "predict_links",
    "proximity_trend",
    "ProximityRankings",
    "proximity_rankings",
]
