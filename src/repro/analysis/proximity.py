"""Company-proximity analysis over a patent citation sequence (paper Section 7).

Given yearly patent citation snapshots and a company labelling, measure the
proximity of every company to a focal company by summing the Personalized
PageRank scores of its patents, with the focal company's patents as the seed
set, then rank companies per year and study how the ranks evolve.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.patent import PatentDataset, company_groups
from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.measures.base import rank_of
from repro.measures.timeseries import MeasureSeries


@dataclasses.dataclass
class ProximityRankings:
    """Per-year proximity scores and ranks of companies relative to a focal company.

    Attributes
    ----------
    company_names:
        Names aligned with the score/rank columns.
    scores:
        Array of shape ``(years, companies)`` of summed PPR proximities.
    ranks:
        Array of the same shape with 1-based ranks per year (1 = closest).
    """

    company_names: List[str]
    scores: np.ndarray
    ranks: np.ndarray

    def rank_series(self, company: int) -> np.ndarray:
        """Return the rank trajectory of one company across the years."""
        return self.ranks[:, company]

    def is_steadily_rising(self, company: int, tolerance: int = 1) -> bool:
        """Return ``True`` when a company's rank improves (decreases) over time.

        ``tolerance`` allows a few non-improving years (rank plateaus).
        """
        series = self.rank_series(company)
        worsening_years = int(np.sum(np.diff(series) > 0))
        return series[-1] < series[0] and worsening_years <= tolerance + len(series) // 4


def proximity_rankings(
    dataset: PatentDataset,
    damping: float = DEFAULT_DAMPING,
    algorithm: str = "CLUDE",
    alpha: float = 0.9,
) -> ProximityRankings:
    """Compute per-year company proximity rankings relative to the focal company.

    The focal company itself is excluded from the ranking (its self-proximity
    would trivially dominate), mirroring the paper's Figure 11 which ranks
    *other* companies with respect to IBM.
    """
    groups: Dict[int, List[int]] = company_groups(dataset)
    focal = dataset.focal_company
    other_companies = [company for company in sorted(groups) if company != focal]

    series = MeasureSeries(dataset.egs, damping=damping, algorithm=algorithm, alpha=alpha)
    scores = series.group_proximity_series(
        seeds=groups[focal], groups=[groups[company] for company in other_companies]
    )

    ranks = np.vstack([rank_of(year_scores) for year_scores in scores])
    names = [dataset.company_names[company] for company in other_companies]
    return ProximityRankings(company_names=names, scores=scores, ranks=ranks)
