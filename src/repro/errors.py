"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class DimensionError(ReproError):
    """Raised when matrix or vector dimensions are incompatible."""


class SingularMatrixError(ReproError):
    """Raised when a pivot is (numerically) zero during decomposition."""

    def __init__(self, pivot_index: int, value: float = 0.0) -> None:
        self.pivot_index = pivot_index
        self.value = value
        super().__init__(
            f"matrix is singular or nearly singular at pivot {pivot_index} "
            f"(value={value!r})"
        )


class NotSymmetricError(ReproError):
    """Raised when a symmetric matrix is required but a non-symmetric one is given."""


class EmptySequenceError(ReproError):
    """Raised when an evolving matrix/graph sequence is empty."""


class PatternError(ReproError):
    """Raised when a value falls outside the admissible sparsity pattern."""


class OrderingError(ReproError):
    """Raised when a permutation/ordering is malformed."""


class ClusteringError(ReproError):
    """Raised when a clustering parameter or result is invalid."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or loaded."""


class MeasureError(ReproError):
    """Raised when a graph measure is configured incorrectly."""


class StoreError(ReproError):
    """Raised for persistent factor-store failures."""


class StoreFormatError(StoreError):
    """Raised when an on-disk checkpoint is torn, corrupt, or foreign.

    The store treats this as a miss: a file that fails its magic, version,
    checksum, or structural checks is never decoded into a served system.
    """


class FactorizationError(MeasureError):
    """Raised when one or more planner factor units failed.

    Carries the annotated per-unit failure reports (``unit_id`` plus the
    failing system's description), so a poisoned query in a large batch is
    diagnosable instead of surfacing as a bare worker traceback.
    """

    def __init__(self, failures) -> None:
        self.failures = tuple(failures)
        super().__init__(
            f"{len(self.failures)} factor unit(s) failed: "
            + "; ".join(self.failures)
        )
