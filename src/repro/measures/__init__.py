"""Graph measures computed by solving linear systems (plus PI/MC baselines)."""

from repro.measures.base import SnapshotMeasureSolver, normalize_distribution, rank_of
from repro.measures.hitting_time import (
    discounted_hitting_proximity,
    discounted_hitting_scores,
    discounted_hitting_scores_many,
)
from repro.measures.monte_carlo import MonteCarloResult, rwr_monte_carlo
from repro.measures.pagerank import pagerank_rhs, pagerank_scores, pagerank_series
from repro.measures.power_iteration import (
    PowerIterationResult,
    power_iteration_solve,
    power_iteration_solve_many,
    rwr_power_iteration,
)
from repro.measures.ppr import (
    ppr_group_proximity,
    ppr_many_rhs,
    ppr_rhs,
    ppr_scores,
    ppr_scores_many,
)
from repro.measures.rwr import (
    rwr_many_rhs,
    rwr_proximity,
    rwr_rhs,
    rwr_scores,
    rwr_scores_many,
)
from repro.measures.salsa import salsa_scores
from repro.measures.timeseries import MeasureSeries

__all__ = [
    "SnapshotMeasureSolver",
    "normalize_distribution",
    "rank_of",
    "pagerank_scores",
    "pagerank_series",
    "pagerank_rhs",
    "rwr_scores",
    "rwr_scores_many",
    "rwr_proximity",
    "rwr_rhs",
    "rwr_many_rhs",
    "ppr_scores",
    "ppr_scores_many",
    "ppr_group_proximity",
    "ppr_rhs",
    "ppr_many_rhs",
    "salsa_scores",
    "discounted_hitting_scores",
    "discounted_hitting_scores_many",
    "discounted_hitting_proximity",
    "power_iteration_solve",
    "power_iteration_solve_many",
    "rwr_power_iteration",
    "PowerIterationResult",
    "rwr_monte_carlo",
    "MonteCarloResult",
    "MeasureSeries",
]
