"""Monte-Carlo approximation of random-walk measures.

The second approximation family the paper contrasts with (Section 8):
simulate many random walks with restart and estimate the stationary
distribution from visit frequencies.  Like power iteration, the simulation
must be repeated per query (per start node), which is what makes the
decomposition approach attractive for sequence analytics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.errors import MeasureError
from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot


@dataclasses.dataclass
class MonteCarloResult:
    """Outcome of a Monte-Carlo RWR estimation."""

    scores: np.ndarray
    walks: int
    steps: int


def _resolve_rng(
    rng: Optional[np.random.Generator], seed: Optional[int]
) -> np.random.Generator:
    """Return the generator to use, refusing unseeded (non-reproducible) use.

    The same explicit-randomness policy as :mod:`repro.graphs.generators`:
    exactly one of ``rng`` / ``seed`` must be supplied — there is no fallback
    to global/unseeded randomness.
    """
    if rng is not None:
        if seed is not None:
            raise MeasureError("pass either rng or seed, not both")
        return rng
    if seed is None:
        raise MeasureError(
            "unseeded simulation is not allowed: pass an explicit rng or seed"
        )
    return np.random.default_rng(seed)


def rwr_monte_carlo(
    snapshot: GraphSnapshot,
    start_node: int,
    damping: float = DEFAULT_DAMPING,
    walks: int = 2000,
    max_steps_per_walk: int = 100,
    seed: Optional[int] = None,
    adjacency: Optional[Dict[int, List[int]]] = None,
    rng: Optional[np.random.Generator] = None,
) -> MonteCarloResult:
    """Estimate the RWR stationary distribution by simulating random walks.

    Each walk starts at ``start_node``; at every step it restarts with
    probability ``1 - d`` and otherwise moves to a uniformly random
    out-neighbour (restarting when stuck at a dangling node).  Visit counts,
    normalized, estimate the stationary distribution.  Exactly one of
    ``rng`` / ``seed`` must be supplied (unseeded simulation raises).
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    if not 0 <= start_node < snapshot.n:
        raise MeasureError(f"start node {start_node} out of bounds for n={snapshot.n}")
    if walks <= 0:
        raise MeasureError("walks must be positive")

    rng = _resolve_rng(rng, seed)
    if adjacency is None:
        adjacency = {node: sorted(successors) for node, successors in snapshot.adjacency().items()}
    visits = np.zeros(snapshot.n, dtype=float)
    total_steps = 0
    for _ in range(walks):
        current = start_node
        for _ in range(max_steps_per_walk):
            visits[current] += 1.0
            total_steps += 1
            if rng.random() > damping:
                break
            neighbours = adjacency.get(current)
            if not neighbours:
                break
            current = neighbours[int(rng.integers(0, len(neighbours)))]
    scores = visits / float(np.sum(visits)) if np.sum(visits) > 0 else visits
    return MonteCarloResult(scores=scores, walks=walks, steps=total_steps)
