"""Discounted Hitting Time (DHT).

The discounted hitting time from node ``u`` to a target node ``t`` measures
how quickly a random walk started at ``u`` reaches ``t``, with each step
discounted by a factor ``d``.  Writing ``h(v)`` for the expected discounted
reward of hitting ``t`` starting from ``v`` (``h(t) = 1``), the vector ``h``
satisfies a linear system over the non-target nodes::

    h(v) = d * sum_w P(v, w) h(w)      for v != t,   h(t) = 1

where ``P`` is the row-stochastic transition matrix.  Rearranged over all
nodes it becomes ``(I - d P_masked) h = e_t`` with the target row masked to
the identity, which again has the strictly-diagonally-dominant ``I - d M``
shape used throughout the library.  Larger ``h(v)`` means ``t`` is easier to
reach from ``v`` (a proximity measure, like RWR).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MeasureError
from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.lu.solve import solve_reordered_system
from repro.sparse.csr import SparseMatrix
from repro.sparse.vector import unit_vector


def _row_stochastic(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the row-stochastic transition matrix ``P`` of the snapshot."""
    out_degrees = snapshot.out_degrees()
    edges = sorted(snapshot.edges)
    if not edges:
        return SparseMatrix.zeros(snapshot.n)
    sources = np.array([u for u, _ in edges], dtype=np.int64)
    targets = np.array([v for _, v in edges], dtype=np.int64)
    weights = 1.0 / np.array([out_degrees[u] for u in sources.tolist()], dtype=np.float64)
    return SparseMatrix.from_coo(snapshot.n, sources, targets, weights)


def discounted_hitting_scores(
    snapshot: GraphSnapshot,
    target: int,
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """Return the discounted-hitting score of every node towards ``target``.

    The returned vector ``h`` satisfies ``h[target] = 1`` and for other nodes
    the discounted expectation recursion above.  Nodes that cannot reach the
    target get score 0.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    n = snapshot.n
    if not 0 <= target < n:
        raise MeasureError(f"target node {target} out of bounds for n={n}")
    transition = _row_stochastic(snapshot)
    # Mask the target row (its equation is simply h(target) = 1) and add the
    # identity — all on the COO arrays, with duplicate positions summed.
    rows, cols, vals = transition.coo()
    keep = rows != target
    system = SparseMatrix.from_coo(
        n,
        np.concatenate([rows[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([cols[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([-damping * vals[keep], np.ones(n, dtype=np.float64)]),
    )
    rhs = unit_vector(n, target, 1.0)
    ordering = markowitz_ordering(system)
    factors = crout_decompose(ordering.apply(system))
    return solve_reordered_system(factors, ordering, rhs)


def discounted_hitting_proximity(
    snapshot: GraphSnapshot,
    source: int,
    target: int,
    damping: float = DEFAULT_DAMPING,
    scores: Optional[np.ndarray] = None,
) -> float:
    """Return the discounted-hitting proximity of ``target`` from ``source``."""
    if scores is None:
        scores = discounted_hitting_scores(snapshot, target, damping=damping)
    return float(scores[source])
