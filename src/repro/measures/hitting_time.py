"""Discounted Hitting Time (DHT).

The discounted hitting time from node ``u`` to a target node ``t`` measures
how quickly a random walk started at ``u`` reaches ``t``, with each step
discounted by a factor ``d``.  Writing ``h(v)`` for the expected discounted
reward of hitting ``t`` starting from ``v`` (``h(t) = 1``), the vector ``h``
satisfies a linear system over the non-target nodes::

    h(v) = d * sum_w P(v, w) h(w)      for v != t,   h(t) = 1

where ``P`` is the row-stochastic transition matrix.  Rearranged over all
nodes it becomes ``(I - d P_masked) h = e_t`` with the target row masked to
the identity (composed by
:func:`~repro.graphs.matrixkind.hitting_time_matrix`), which again has the
strictly-diagonally-dominant ``I - d M`` shape used throughout the library.
Larger ``h(v)`` means ``t`` is easier to reach from ``v`` (a proximity
measure, like RWR).

The measure is registered declaratively as the ``"hitting_time"``
:class:`~repro.query.spec.MeasureSpec`; because the target masks a matrix
row, ``target`` is a *matrix parameter* — the planner never shares a
factorization between different targets.

Many-target workloads do not need to pay that per-target factorization,
though: the masked system is a **rank-1 update** of the target-independent
unmasked system ``A = I - d P`` (masking row ``t`` removes exactly the
``-d p_t`` row, i.e. ``A_t = A + e_t (d p_t)ᵀ``), and Sherman–Morrison
collapses the masked solve to ``h = y / y[t]`` with ``y = A⁻¹ e_t``.  The
``"hitting_time_shared"`` spec encodes that identity, so one factorization
of ``A`` serves *every* target with one batched substitution sweep —
:func:`discounted_hitting_scores_many` below is the driver.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.query.spec import evaluate, evaluate_block, make_query


def discounted_hitting_scores(
    snapshot: GraphSnapshot,
    target: int,
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """Return the discounted-hitting score of every node towards ``target``.

    The returned vector ``h`` satisfies ``h[target] = 1`` and for other nodes
    the discounted expectation recursion above.  Nodes that cannot reach the
    target get score 0.
    """
    query = make_query("hitting_time", snapshot, damping=damping, target=int(target))
    return evaluate(query)


def discounted_hitting_scores_many(
    snapshot: GraphSnapshot,
    targets: Sequence[int],
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """Return discounted-hitting scores for many targets, shape ``(n, k)``.

    Column ``c`` matches :func:`discounted_hitting_scores` of
    ``targets[c]`` to numerical tolerance, but the whole block costs **one**
    factorization of the unmasked system ``I - d P`` plus one batched
    multi-RHS sweep, instead of one factorization per target: per target the
    masked system is a rank-1 update of the shared one, and Sherman–Morrison
    reduces its solve to a column rescale (``h = y / y[target]``, see the
    module docstring).  The per-target path remains the bitwise reference —
    the two differ only in floating-point round-off.
    """
    target_list = [int(t) for t in targets]
    if not target_list:
        return np.zeros((snapshot.n, 0), dtype=float)
    return evaluate_block(
        "hitting_time_shared",
        snapshot,
        [{"target": target} for target in target_list],
        damping=damping,
    )


def discounted_hitting_proximity(
    snapshot: GraphSnapshot,
    source: int,
    target: int,
    damping: float = DEFAULT_DAMPING,
    scores: Optional[np.ndarray] = None,
) -> float:
    """Return the discounted-hitting proximity of ``target`` from ``source``."""
    if scores is None:
        scores = discounted_hitting_scores(snapshot, target, damping=damping)
    return float(scores[source])
