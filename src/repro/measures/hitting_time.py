"""Discounted Hitting Time (DHT).

The discounted hitting time from node ``u`` to a target node ``t`` measures
how quickly a random walk started at ``u`` reaches ``t``, with each step
discounted by a factor ``d``.  Writing ``h(v)`` for the expected discounted
reward of hitting ``t`` starting from ``v`` (``h(t) = 1``), the vector ``h``
satisfies a linear system over the non-target nodes::

    h(v) = d * sum_w P(v, w) h(w)      for v != t,   h(t) = 1

where ``P`` is the row-stochastic transition matrix.  Rearranged over all
nodes it becomes ``(I - d P_masked) h = e_t`` with the target row masked to
the identity (composed by
:func:`~repro.graphs.matrixkind.hitting_time_matrix`), which again has the
strictly-diagonally-dominant ``I - d M`` shape used throughout the library.
Larger ``h(v)`` means ``t`` is easier to reach from ``v`` (a proximity
measure, like RWR).

The measure is registered declaratively as the ``"hitting_time"``
:class:`~repro.query.spec.MeasureSpec`; because the target masks a matrix
row, ``target`` is a *matrix parameter* — the planner never shares a
factorization between different targets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.query.spec import evaluate, make_query


def discounted_hitting_scores(
    snapshot: GraphSnapshot,
    target: int,
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """Return the discounted-hitting score of every node towards ``target``.

    The returned vector ``h`` satisfies ``h[target] = 1`` and for other nodes
    the discounted expectation recursion above.  Nodes that cannot reach the
    target get score 0.
    """
    query = make_query("hitting_time", snapshot, damping=damping, target=int(target))
    return evaluate(query)


def discounted_hitting_proximity(
    snapshot: GraphSnapshot,
    source: int,
    target: int,
    damping: float = DEFAULT_DAMPING,
    scores: Optional[np.ndarray] = None,
) -> float:
    """Return the discounted-hitting proximity of ``target`` from ``source``."""
    if scores is None:
        scores = discounted_hitting_scores(snapshot, target, damping=damping)
    return float(scores[source])
