"""Power-iteration approximation of random-walk measures.

The paper's related work (Section 8) contrasts exact LU-based query answering
with two approximation families.  This module implements the first — power
iteration (PI) — which refines ``x`` through the recurrence
``x^(k+1) = d W x^(k) + (1 - d) q`` until convergence.  PI must be run once
per query vector ``q``, which is the cost the decomposition approach avoids.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.errors import MeasureError
from repro.graphs.matrixkind import DEFAULT_DAMPING, column_normalized_matrix
from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix


@dataclasses.dataclass
class PowerIterationResult:
    """Outcome of a power-iteration run."""

    scores: np.ndarray
    iterations: int
    converged: bool
    residual: float


def power_iteration_solve(
    walk_matrix: SparseMatrix,
    q: Sequence[float],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
) -> PowerIterationResult:
    """Iterate ``x <- d W x + (1 - d) q`` until the update is below ``tolerance``.

    The fixed point is exactly the solution of ``(I - d W) x = (1 - d) q``,
    so results are directly comparable with the LU-based path.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    query = np.asarray(q, dtype=float)
    if query.shape != (walk_matrix.n,):
        raise MeasureError(
            f"query vector of shape {query.shape} incompatible with n={walk_matrix.n}"
        )
    x = (1.0 - damping) * query.copy()
    iterations = 0
    residual = float("inf")
    for iterations in range(1, max_iterations + 1):
        updated = damping * walk_matrix.matvec(x) + (1.0 - damping) * query
        residual = float(np.max(np.abs(updated - x)))
        x = updated
        if residual < tolerance:
            return PowerIterationResult(x, iterations, True, residual)
    return PowerIterationResult(x, iterations, False, residual)


def power_iteration_solve_many(
    walk_matrix: SparseMatrix,
    queries: Sequence[Sequence[float]],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
) -> PowerIterationResult:
    """Run power iteration for an ``(n, k)`` block of query vectors at once.

    The recurrence ``X <- d W X + (1 - d) Q`` is applied to the whole block
    through the batched matmat kernel; iteration stops when every column's
    update falls below ``tolerance``.  ``scores`` has shape ``(n, k)`` and
    ``residual`` is the worst column residual at the final iteration.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    block = np.asarray(queries, dtype=float)
    if block.ndim != 2 or block.shape[0] != walk_matrix.n:
        raise MeasureError(
            f"query block of shape {block.shape} incompatible with n={walk_matrix.n}"
        )
    x = (1.0 - damping) * block
    iterations = 0
    residual = float("inf")
    for iterations in range(1, max_iterations + 1):
        updated = damping * walk_matrix.matmat(x) + (1.0 - damping) * block
        residual = float(np.max(np.abs(updated - x))) if x.size else 0.0
        x = updated
        if residual < tolerance:
            return PowerIterationResult(x, iterations, True, residual)
    return PowerIterationResult(x, iterations, False, residual)


def rwr_power_iteration(
    snapshot: GraphSnapshot,
    start_node: int,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
    walk_matrix: Optional[SparseMatrix] = None,
) -> PowerIterationResult:
    """Approximate RWR scores for one start node with power iteration."""
    walk = walk_matrix if walk_matrix is not None else column_normalized_matrix(snapshot)
    q = np.zeros(snapshot.n, dtype=float)
    q[start_node] = 1.0
    return power_iteration_solve(
        walk, q, damping=damping, tolerance=tolerance, max_iterations=max_iterations
    )
