"""Shared infrastructure for graph measures.

Every measure in the paper is obtained by composing a matrix ``A`` from the
graph and solving ``A x = b`` for a measure-specific right-hand side ``b``
(Section 1).  The declarative form of that recipe lives in
:mod:`repro.query.spec`; this module keeps the snapshot-level convenience
wrapper: :class:`SnapshotMeasureSolver` composes the matrix for one
``(snapshot, kind, damping)`` triple and holds its
:class:`~repro.query.spec.FactorizedSystem` so any number of queries are
answered by substitution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import MeasureError
from repro.graphs.matrixkind import DEFAULT_DAMPING, MatrixKind, measure_matrix
from repro.graphs.snapshot import GraphSnapshot
from repro.query.spec import FactorizedSystem
from repro.sparse.csr import SparseMatrix
from repro.sparse.permutation import Ordering


class SnapshotMeasureSolver:
    """Decompose one snapshot's measure matrix and answer queries against it.

    A thin wrapper over :class:`~repro.query.spec.FactorizedSystem`: compose
    the matrix, reorder it with Markowitz, decompose it once, then answer any
    number of queries by substitution.

    Parameters
    ----------
    snapshot:
        The graph snapshot.
    kind:
        Matrix composition (random-walk, symmetric, SALSA, …).
    damping:
        Damping factor ``d``.
    reorder:
        Whether to Markowitz-reorder before decomposing (recommended).
    """

    def __init__(
        self,
        snapshot: GraphSnapshot,
        kind: MatrixKind = MatrixKind.RANDOM_WALK,
        damping: float = DEFAULT_DAMPING,
        reorder: bool = True,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
        self._snapshot = snapshot
        self._damping = damping
        self._system = FactorizedSystem.factorize(
            measure_matrix(snapshot, kind=kind, damping=damping), reorder=reorder
        )

    @property
    def snapshot(self) -> GraphSnapshot:
        """The underlying graph snapshot."""
        return self._snapshot

    @property
    def matrix(self) -> SparseMatrix:
        """The composed measure matrix ``A``."""
        return self._system.matrix

    @property
    def damping(self) -> float:
        """The damping factor ``d``."""
        return self._damping

    @property
    def system(self) -> FactorizedSystem:
        """The factorized system (matrix + ordering + factors)."""
        return self._system

    @property
    def ordering(self) -> Optional[Ordering]:
        """The Markowitz ordering applied before decomposition (if any)."""
        return self._system.ordering

    def solve(self, b: Sequence[float]) -> np.ndarray:
        """Solve ``A x = b`` using the cached factors."""
        return self._system.solve(b)

    def solve_many(self, block) -> np.ndarray:
        """Solve ``A X = B`` for an ``(n, k)`` block of measure queries.

        One batched substitution sweep answers all ``k`` queries (e.g. RWR
        from many start nodes, or PPR for many seed sets); each result column
        is bitwise identical to :meth:`solve` of that column.
        """
        return self._system.solve_many(block)


def normalize_distribution(vector: np.ndarray) -> np.ndarray:
    """Return ``vector / sum(vector)`` (leaves all-zero vectors untouched)."""
    total = float(np.sum(vector))
    if total == 0.0:
        return vector
    return vector / total


def rank_of(scores: Sequence[float], descending: bool = True) -> np.ndarray:
    """Return the 1-based rank of every entry (rank 1 = best score)."""
    array = np.asarray(scores, dtype=float)
    order = np.argsort(-array if descending else array, kind="stable")
    ranks = np.empty(array.size, dtype=int)
    ranks[order] = np.arange(1, array.size + 1)
    return ranks
