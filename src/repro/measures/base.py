"""Shared infrastructure for graph measures.

Every measure in the paper is obtained by composing a matrix ``A`` from the
graph and solving ``A x = b`` for a measure-specific right-hand side ``b``
(Section 1).  :class:`SnapshotMeasureSolver` encapsulates that recipe for a
single snapshot: compose the matrix, reorder it with Markowitz, decompose it
once, then answer any number of queries by substitution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import MeasureError
from repro.graphs.matrixkind import DEFAULT_DAMPING, MatrixKind, measure_matrix
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.lu.solve import solve_reordered_system, solve_reordered_system_many
from repro.sparse.csr import SparseMatrix
from repro.sparse.permutation import Ordering


class SnapshotMeasureSolver:
    """Decompose one snapshot's measure matrix and answer queries against it.

    Parameters
    ----------
    snapshot:
        The graph snapshot.
    kind:
        Matrix composition (random-walk or symmetric).
    damping:
        Damping factor ``d``.
    reorder:
        Whether to Markowitz-reorder before decomposing (recommended).
    """

    def __init__(
        self,
        snapshot: GraphSnapshot,
        kind: MatrixKind = MatrixKind.RANDOM_WALK,
        damping: float = DEFAULT_DAMPING,
        reorder: bool = True,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
        self._snapshot = snapshot
        self._damping = damping
        self._matrix = measure_matrix(snapshot, kind=kind, damping=damping)
        self._ordering: Optional[Ordering] = None
        if reorder:
            self._ordering = markowitz_ordering(self._matrix)
            reordered = self._ordering.apply(self._matrix)
            self._factors = crout_decompose(reordered)
        else:
            self._factors = crout_decompose(self._matrix)

    @property
    def snapshot(self) -> GraphSnapshot:
        """The underlying graph snapshot."""
        return self._snapshot

    @property
    def matrix(self) -> SparseMatrix:
        """The composed measure matrix ``A``."""
        return self._matrix

    @property
    def damping(self) -> float:
        """The damping factor ``d``."""
        return self._damping

    def solve(self, b: Sequence[float]) -> np.ndarray:
        """Solve ``A x = b`` using the cached factors."""
        return solve_reordered_system(self._factors, self._ordering, b)

    def solve_many(self, block) -> np.ndarray:
        """Solve ``A X = B`` for an ``(n, k)`` block of measure queries.

        One batched substitution sweep answers all ``k`` queries (e.g. RWR
        from many start nodes, or PPR for many seed sets); each result column
        is bitwise identical to :meth:`solve` of that column.
        """
        return solve_reordered_system_many(self._factors, self._ordering, block)


def normalize_distribution(vector: np.ndarray) -> np.ndarray:
    """Return ``vector / sum(vector)`` (leaves all-zero vectors untouched)."""
    total = float(np.sum(vector))
    if total == 0.0:
        return vector
    return vector / total


def rank_of(scores: Sequence[float], descending: bool = True) -> np.ndarray:
    """Return the 1-based rank of every entry (rank 1 = best score)."""
    array = np.asarray(scores, dtype=float)
    order = np.argsort(-array if descending else array, kind="stable")
    ranks = np.empty(array.size, dtype=int)
    ranks[order] = np.arange(1, array.size + 1)
    return ranks
