"""SALSA-style authority and hub scores via linear systems.

SALSA (Lempel & Moran 2001) scores pages by a random walk that alternates
between following a link forward and following a link backward.  The damped
variant implemented here solves, for the authority scores ``a``::

    (I - d * W_col_of_backward_forward) a = (1 - d)/n * 1

where the combined transition matrix is the product of the column-normalized
backward and forward walk matrices.  Hub scores use the transposed
combination.  A damped formulation is used so the system matrix keeps the
strictly-diagonally-dominant ``I - d M`` shape shared by every measure in the
library (and the paper's framework).

Both sides are registered declaratively (``"salsa_authority"`` /
``"salsa_hub"`` :class:`~repro.query.spec.MeasureSpec`), with the combined
walk composed by :data:`~repro.graphs.matrixkind.MatrixKind.SALSA_AUTHORITY`
/ :data:`~repro.graphs.matrixkind.MatrixKind.SALSA_HUB` on the CSR spgemm
kernel — the hand-rolled dict-of-dicts product this module used to carry is
gone.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.query.spec import evaluate, make_query


def salsa_scores(
    snapshot: GraphSnapshot,
    damping: float = DEFAULT_DAMPING,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return damped SALSA ``(authority, hub)`` score vectors for a snapshot."""
    authority = evaluate(make_query("salsa_authority", snapshot, damping=damping))
    hub = evaluate(make_query("salsa_hub", snapshot, damping=damping))
    return authority, hub
