"""SALSA-style authority and hub scores via linear systems.

SALSA (Lempel & Moran 2001) scores pages by a random walk that alternates
between following a link forward and following a link backward.  The damped
variant implemented here solves, for the authority scores ``a``::

    (I - d * W_col_of_backward_forward) a = (1 - d)/n * 1

where the combined transition matrix is the product of the column-normalized
backward and forward walk matrices.  Hub scores use the transposed
combination.  A damped formulation is used so the system matrix keeps the
strictly-diagonally-dominant ``I - d M`` shape shared by every measure in the
library (and the paper's framework).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import MeasureError
from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.lu.crout import crout_decompose
from repro.lu.markowitz import markowitz_ordering
from repro.lu.solve import solve_reordered_system
from repro.sparse.csr import SparseMatrix


def _normalized_forward_backward(snapshot: GraphSnapshot) -> Tuple[SparseMatrix, SparseMatrix]:
    """Return column-normalized forward (out-edge) and backward (in-edge) matrices."""
    n = snapshot.n
    out_degrees = snapshot.out_degrees()
    in_degrees = snapshot.in_degrees()
    forward = SparseMatrix.from_triples(
        n, ((v, u, 1.0 / out_degrees[u]) for u, v in snapshot.edges)
    )
    backward = SparseMatrix.from_triples(
        n, ((u, v, 1.0 / in_degrees[v]) for u, v in snapshot.edges)
    )
    return forward, backward


def _sparse_product(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """Return the sparse matrix product ``a @ b``."""
    entries: Dict[Tuple[int, int], float] = {}
    b_rows = {i: dict(b.row(i)) for i in range(b.n)}
    for i, k, value_ik in a.items():
        row_k = b_rows.get(k)
        if not row_k:
            continue
        for j, value_kj in row_k.items():
            key = (i, j)
            entries[key] = entries.get(key, 0.0) + value_ik * value_kj
    return SparseMatrix(a.n, entries)


def salsa_scores(
    snapshot: GraphSnapshot,
    damping: float = DEFAULT_DAMPING,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return damped SALSA ``(authority, hub)`` score vectors for a snapshot."""
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    if snapshot.edge_count == 0:
        uniform = np.full(snapshot.n, 1.0 / max(snapshot.n, 1))
        return uniform.copy(), uniform.copy()
    forward, backward = _normalized_forward_backward(snapshot)
    # Authority chain: backward then forward; hub chain: forward then backward.
    authority_walk = _sparse_product(forward, backward)
    hub_walk = _sparse_product(backward, forward)
    rhs = np.full(snapshot.n, (1.0 - damping) / snapshot.n, dtype=float)

    def solve_for(walk: SparseMatrix) -> np.ndarray:
        system = SparseMatrix.identity(snapshot.n).subtract(walk.scale(damping))
        ordering = markowitz_ordering(system)
        factors = crout_decompose(ordering.apply(system))
        return solve_reordered_system(factors, ordering, rhs)

    return solve_for(authority_walk), solve_for(hub_walk)
