"""Random Walk with Restart (RWR).

RWR from a starting node ``u`` (paper Section 1, Equation 1): with
probability ``d`` the walk follows an out-edge, with probability ``1 - d`` it
restarts at ``u``.  The stationary distribution ``x_u`` solves::

    (I - d W) x_u = (1 - d) q_u

where ``W`` is the column-normalized adjacency matrix and ``q_u`` the unit
vector at ``u``.  Large ``x_u(v)`` means ``v`` is close to ``u``.

The measure is registered declaratively as the ``"rwr"``
:class:`~repro.query.spec.MeasureSpec`; this module is a thin driver over
the generic engine (:func:`~repro.query.spec.evaluate`), kept for its
established entry points and RHS helpers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.measures.base import SnapshotMeasureSolver
from repro.query.spec import evaluate, evaluate_block, make_query
from repro.query.spec import rwr_rhs as _canonical_rwr_rhs


def rwr_rhs(n: int, start_node: int, damping: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the right-hand side ``(1 - d) q_u`` for a start node.

    Delegates to the canonical builder the ``"rwr"`` spec registers, so this
    helper and the planner can never drift apart.
    """
    return _canonical_rwr_rhs(n, start_node, damping)


def rwr_scores(
    snapshot: GraphSnapshot,
    start_node: int,
    damping: float = DEFAULT_DAMPING,
    solver: SnapshotMeasureSolver | None = None,
) -> np.ndarray:
    """Return the RWR stationary distribution for one start node.

    Parameters
    ----------
    snapshot:
        The graph snapshot.
    start_node:
        The restart node ``u``.
    damping:
        The damping factor ``d``.
    solver:
        Optional pre-built solver for the snapshot (reused across queries).
    """
    query = make_query("rwr", snapshot, damping=damping, start_node=int(start_node))
    return evaluate(query, system=solver)


def rwr_many_rhs(
    n: int, start_nodes: Sequence[int], damping: float = DEFAULT_DAMPING
) -> np.ndarray:
    """Return the ``(n, k)`` block of RWR right-hand sides, one per start node."""
    if not len(start_nodes):
        return np.zeros((n, 0), dtype=float)
    return np.column_stack(
        [rwr_rhs(n, int(node), damping) for node in start_nodes]
    )


def rwr_scores_many(
    snapshot: GraphSnapshot,
    start_nodes: Sequence[int],
    damping: float = DEFAULT_DAMPING,
    solver: SnapshotMeasureSolver | None = None,
) -> np.ndarray:
    """Return RWR distributions for many start nodes in one batched solve.

    Column ``c`` of the ``(n, k)`` result is bitwise identical to
    ``rwr_scores(snapshot, start_nodes[c], ...)`` against the same solver —
    the decomposition is reused and a single forward/backward sweep answers
    every start node.
    """
    return evaluate_block(
        "rwr",
        snapshot,
        [{"start_node": int(node)} for node in start_nodes],
        damping=damping,
        system=solver,
    )


def rwr_proximity(
    snapshot: GraphSnapshot,
    start_node: int,
    target_node: int,
    damping: float = DEFAULT_DAMPING,
) -> float:
    """Return the RWR proximity of ``target_node`` from ``start_node``."""
    scores = rwr_scores(snapshot, start_node, damping=damping)
    return float(scores[target_node])
