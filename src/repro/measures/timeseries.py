"""Measure time series over an evolving graph sequence.

The paper's motivating workload (Examples 1-3, Figure 1) is: evaluate a
graph measure at *every* snapshot of an EGS and analyse the resulting time
series.  :class:`MeasureSeries` wires the LUDEM machinery to that workload
through the query planner: decompose every snapshot matrix once (with the
chosen LUDEM algorithm), seed a
:class:`~repro.query.planner.QueryPlanner` factor cache with the
decompositions, and phrase every series as a :class:`~repro.query.batch.
QueryBatch` — one group per snapshot, answered by a single batched
substitution sweep against the cached factors.  The planner's per-group
statistics (:meth:`MeasureSeries.cache_info`) make the amortization
observable: a whole series run adds zero factorizations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.solver import EMSSolver
from repro.errors import MeasureError
from repro.exec.executors import Executor
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.matrixkind import DEFAULT_DAMPING, MatrixKind
from repro.query.batch import QueryBatch
from repro.query.planner import BatchResult, QueryPlan
from repro.query.spec import Query

if TYPE_CHECKING:
    from repro.policy import ReusePolicy


class MeasureSeries:
    """Compute measure time series over an EGS with a single decomposition pass.

    Parameters
    ----------
    egs:
        The evolving graph sequence.
    damping:
        Damping factor shared by the supported random-walk measures.
    algorithm:
        The LUDEM algorithm used to decompose the matrix sequence.
    alpha:
        Similarity threshold for the cluster-based algorithms.
    executor:
        Executor for the decomposition work units (``None`` = serial).
    policy:
        Reuse policy for the series' query planner.  ``None`` (default)
        serves exactly; a :class:`~repro.policy.qc.QCPolicy` lets batches
        against snapshots similar to the decomposed sequence (e.g. an
        evolving head) be answered from the seeded factors, with per-group
        loss estimates reported in the batch result's ``approximations``.
    """

    def __init__(
        self,
        egs: EvolvingGraphSequence,
        damping: float = DEFAULT_DAMPING,
        algorithm: str = "CLUDE",
        alpha: float = 0.95,
        executor: Union[Executor, int, None] = None,
        policy: Optional["ReusePolicy"] = None,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
        self._egs = egs
        self._damping = damping
        self._solver = EMSSolver.from_graphs(
            egs,
            kind=MatrixKind.RANDOM_WALK,
            damping=damping,
            algorithm=algorithm,
            alpha=alpha,
            executor=executor,
            policy=policy,
        )

    @property
    def egs(self) -> EvolvingGraphSequence:
        """The underlying graph sequence."""
        return self._egs

    @property
    def solver(self) -> EMSSolver:
        """The underlying EMS solver (decomposition is cached there)."""
        return self._solver

    # ------------------------------------------------------------------ #
    # Planner entry points
    # ------------------------------------------------------------------ #
    def plan(self, batch: Union[QueryBatch, Sequence[Query]]) -> QueryPlan:
        """Group a heterogeneous batch against the series' factor cache."""
        return self._solver.plan(batch)

    def execute(self, plan: QueryPlan) -> BatchResult:
        """Execute a planned batch through the factor-seeded planner."""
        return self._solver.execute(plan)

    def run_batch(self, batch: Union[QueryBatch, Sequence[Query]]) -> BatchResult:
        """Plan and execute a measure batch in one call."""
        return self._solver.run_batch(batch)

    def cache_info(self) -> Dict[str, int]:
        """Per-group factor-cache statistics of the series planner."""
        return self._solver.planner_cache_info()

    def register_evolution(
        self, new_snapshot, from_index: Optional[int] = None
    ):
        """Register an evolved head snapshot for delta refresh.

        When the graph evolves past the decomposed sequence, register the new
        snapshot here (by default as an evolution of the *last* snapshot):
        the first batch that queries it Bennett-refreshes the seeded factors
        of that index instead of cold-factorizing.  Delegates to
        :meth:`repro.core.solver.EMSSolver.register_evolution`.
        """
        return self._solver.register_evolution(new_snapshot, from_index=from_index)

    def _snapshot_batch(self, per_snapshot_queries: int, add) -> np.ndarray:
        """Run one batch with ``per_snapshot_queries`` queries per snapshot.

        ``add(batch, snapshot, token)`` appends that snapshot's queries (in
        column order); the results come back as a ``(T, n, k)`` array, or
        ``(T, n)`` when ``per_snapshot_queries == 1``.
        """
        batch = QueryBatch()
        for index, snapshot in enumerate(self._egs):
            add(batch, snapshot, self._solver.system_token(index))
        outcome = self._solver.run_batch(batch)
        T = len(self._egs)
        k = per_snapshot_queries
        stacked = np.stack(
            [
                np.column_stack(outcome.results[index * k:(index + 1) * k])
                for index in range(T)
            ]
        )
        if k == 1:
            return stacked[:, :, 0]
        return stacked

    # ------------------------------------------------------------------ #
    # Series extraction
    # ------------------------------------------------------------------ #
    def pagerank(self, nodes: Sequence[int]) -> np.ndarray:
        """Return PageRank time series of selected nodes, shape ``(T, len(nodes))``."""
        solutions = self._snapshot_batch(
            1,
            lambda batch, snapshot, token: batch.add_pagerank(
                snapshot, damping=self._damping, system_token=token
            ),
        )
        return solutions[:, [int(node) for node in nodes]]

    def rwr(self, start_node: int, targets: Optional[Sequence[int]] = None) -> np.ndarray:
        """Return RWR time series from ``start_node`` to ``targets`` (default: all nodes)."""
        solutions = self._snapshot_batch(
            1,
            lambda batch, snapshot, token: batch.add_rwr(
                snapshot, start_node, damping=self._damping, system_token=token
            ),
        )
        if targets is None:
            return solutions
        return solutions[:, [int(node) for node in targets]]

    def ppr(self, seeds: Iterable[int], targets: Optional[Sequence[int]] = None) -> np.ndarray:
        """Return PPR time series for a seed set, restricted to ``targets`` if given."""
        seed_tuple = tuple(int(s) for s in seeds)
        solutions = self._snapshot_batch(
            1,
            lambda batch, snapshot, token: batch.add_ppr(
                snapshot, seed_tuple, damping=self._damping, system_token=token
            ),
        )
        if targets is None:
            return solutions
        return solutions[:, [int(node) for node in targets]]

    def rwr_many(self, start_nodes: Sequence[int]) -> np.ndarray:
        """Return RWR series for many start nodes, shape ``(T, n, k)``.

        Each snapshot forms one planner group, so one batched solve answers
        all ``k`` start nodes; slice ``[:, :, c]`` is bitwise identical to
        ``self.rwr(start_nodes[c])``.
        """
        starts = [int(node) for node in start_nodes]
        if not starts:
            return np.zeros((len(self._egs), self._egs.n, 0))

        def add(batch, snapshot, token):
            for start in starts:
                batch.add_rwr(
                    snapshot, start, damping=self._damping, system_token=token
                )

        return self._snapshot_batch(len(starts), add)

    def ppr_many(self, seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Return PPR series for many seed sets, shape ``(T, n, k)``.

        The batched counterpart of :meth:`ppr`: one solve per snapshot covers
        every seed set; slice ``[:, :, c]`` is bitwise identical to
        ``self.ppr(seed_sets[c])``.
        """
        frozen_sets = [tuple(int(s) for s in seeds) for seeds in seed_sets]
        if not frozen_sets:
            return np.zeros((len(self._egs), self._egs.n, 0))

        def add(batch, snapshot, token):
            for seeds in frozen_sets:
                batch.add_ppr(
                    snapshot, seeds, damping=self._damping, system_token=token
                )

        return self._snapshot_batch(len(frozen_sets), add)

    def group_proximity_series(
        self, seeds: Iterable[int], groups: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Return summed-PPR proximity of each node group over time.

        Output shape is ``(T, len(groups))``; entry ``(t, g)`` is the sum of
        the PPR scores of group ``g``'s nodes at snapshot ``t`` when ``seeds``
        are the restart nodes (the paper's company-proximity aggregate).
        """
        solutions = self.ppr(seeds)
        columns: List[np.ndarray] = []
        for group in groups:
            indices = [int(node) for node in group]
            columns.append(np.sum(solutions[:, indices], axis=1))
        return np.column_stack(columns) if columns else np.zeros((len(self._egs), 0))
