"""Measure time series over an evolving graph sequence.

The paper's motivating workload (Examples 1-3, Figure 1) is: evaluate a
graph measure at *every* snapshot of an EGS and analyse the resulting time
series.  :class:`MeasureSeries` wires the LUDEM machinery to that workload —
decompose every snapshot matrix once, answer one query per snapshot, and hand
the series to the analysis helpers in :mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.solver import EMSSolver
from repro.errors import MeasureError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import DEFAULT_DAMPING, MatrixKind
from repro.measures.pagerank import pagerank_rhs
from repro.measures.ppr import ppr_many_rhs, ppr_rhs
from repro.measures.rwr import rwr_many_rhs, rwr_rhs


class MeasureSeries:
    """Compute measure time series over an EGS with a single decomposition pass.

    Parameters
    ----------
    egs:
        The evolving graph sequence.
    damping:
        Damping factor shared by the supported random-walk measures.
    algorithm:
        The LUDEM algorithm used to decompose the matrix sequence.
    alpha:
        Similarity threshold for the cluster-based algorithms.
    """

    def __init__(
        self,
        egs: EvolvingGraphSequence,
        damping: float = DEFAULT_DAMPING,
        algorithm: str = "CLUDE",
        alpha: float = 0.95,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
        self._egs = egs
        self._damping = damping
        ems = EvolvingMatrixSequence.from_graphs(
            egs, kind=MatrixKind.RANDOM_WALK, damping=damping
        )
        self._solver = EMSSolver(ems, algorithm=algorithm, alpha=alpha)

    @property
    def egs(self) -> EvolvingGraphSequence:
        """The underlying graph sequence."""
        return self._egs

    @property
    def solver(self) -> EMSSolver:
        """The underlying EMS solver (decomposition is cached there)."""
        return self._solver

    # ------------------------------------------------------------------ #
    # Series extraction
    # ------------------------------------------------------------------ #
    def pagerank(self, nodes: Sequence[int]) -> np.ndarray:
        """Return PageRank time series of selected nodes, shape ``(T, len(nodes))``."""
        solutions = self._solver.solve_series(pagerank_rhs(self._egs.n, self._damping))
        return solutions[:, [int(node) for node in nodes]]

    def rwr(self, start_node: int, targets: Optional[Sequence[int]] = None) -> np.ndarray:
        """Return RWR time series from ``start_node`` to ``targets`` (default: all nodes)."""
        solutions = self._solver.solve_series(
            rwr_rhs(self._egs.n, start_node, self._damping)
        )
        if targets is None:
            return solutions
        return solutions[:, [int(node) for node in targets]]

    def ppr(self, seeds: Iterable[int], targets: Optional[Sequence[int]] = None) -> np.ndarray:
        """Return PPR time series for a seed set, restricted to ``targets`` if given."""
        solutions = self._solver.solve_series(
            ppr_rhs(self._egs.n, seeds, self._damping)
        )
        if targets is None:
            return solutions
        return solutions[:, [int(node) for node in targets]]

    def rwr_many(self, start_nodes: Sequence[int]) -> np.ndarray:
        """Return RWR series for many start nodes, shape ``(T, n, k)``.

        Each snapshot issues one batched solve for all ``k`` start nodes
        instead of ``k`` scalar solves; slice ``[:, :, c]`` is bitwise
        identical to ``self.rwr(start_nodes[c])``.
        """
        return self._solver.solve_series_batched(
            rwr_many_rhs(self._egs.n, start_nodes, self._damping)
        )

    def ppr_many(self, seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Return PPR series for many seed sets, shape ``(T, n, k)``.

        The batched counterpart of :meth:`ppr`: one solve per snapshot covers
        every seed set; slice ``[:, :, c]`` is bitwise identical to
        ``self.ppr(seed_sets[c])``.
        """
        return self._solver.solve_series_batched(
            ppr_many_rhs(self._egs.n, seed_sets, self._damping)
        )

    def group_proximity_series(
        self, seeds: Iterable[int], groups: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Return summed-PPR proximity of each node group over time.

        Output shape is ``(T, len(groups))``; entry ``(t, g)`` is the sum of
        the PPR scores of group ``g``'s nodes at snapshot ``t`` when ``seeds``
        are the restart nodes (the paper's company-proximity aggregate).
        """
        solutions = self._solver.solve_series(
            ppr_rhs(self._egs.n, seeds, self._damping)
        )
        columns: List[np.ndarray] = []
        for group in groups:
            indices = [int(node) for node in group]
            columns.append(np.sum(solutions[:, indices], axis=1))
        return np.column_stack(columns) if columns else np.zeros((len(self._egs), 0))
