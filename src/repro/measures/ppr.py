"""Personalized PageRank (PPR).

PPR restricts teleportation to a set of seed nodes: the score vector solves
``(I - d W) x = (1 - d) s`` where ``s`` spreads unit mass over the seeds.
The paper's patent case study (Section 7) sums the PPR scores of one
company's patents using another company's patents as the seed set to measure
inter-company proximity.

The measure is registered declaratively as the ``"ppr"``
:class:`~repro.query.spec.MeasureSpec`; this module is a thin driver over
the generic engine, kept for its established entry points and RHS helpers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.measures.base import SnapshotMeasureSolver
from repro.query.spec import evaluate, evaluate_block, make_query
from repro.query.spec import ppr_rhs as _canonical_ppr_rhs


def ppr_rhs(n: int, seeds: Iterable[int], damping: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the right-hand side ``(1 - d) s`` for a seed set.

    Delegates to the canonical builder the ``"ppr"`` spec registers, so this
    helper and the planner can never drift apart.
    """
    return _canonical_ppr_rhs(n, seeds, damping)


def ppr_scores(
    snapshot: GraphSnapshot,
    seeds: Iterable[int],
    damping: float = DEFAULT_DAMPING,
    solver: Optional[SnapshotMeasureSolver] = None,
) -> np.ndarray:
    """Return the Personalized PageRank vector for a seed set."""
    query = make_query(
        "ppr", snapshot, damping=damping, seeds=tuple(int(s) for s in seeds)
    )
    return evaluate(query, system=solver)


def ppr_many_rhs(
    n: int,
    seed_sets: Sequence[Iterable[int]],
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """Return the ``(n, k)`` block of PPR right-hand sides, one per seed set."""
    if not len(seed_sets):
        return np.zeros((n, 0), dtype=float)
    return np.column_stack(
        [ppr_rhs(n, seeds, damping) for seeds in seed_sets]
    )


def ppr_scores_many(
    snapshot: GraphSnapshot,
    seed_sets: Sequence[Iterable[int]],
    damping: float = DEFAULT_DAMPING,
    solver: Optional[SnapshotMeasureSolver] = None,
) -> np.ndarray:
    """Return PPR vectors for many seed sets in one batched solve.

    Column ``c`` of the ``(n, k)`` result is bitwise identical to
    ``ppr_scores(snapshot, seed_sets[c], ...)`` against the same solver.
    This is the access pattern of the patent case study: one decomposition,
    one batched sweep, one column per company seed set.
    """
    return evaluate_block(
        "ppr",
        snapshot,
        [{"seeds": tuple(int(s) for s in seeds)} for seeds in seed_sets],
        damping=damping,
        system=solver,
    )


def ppr_group_proximity(
    snapshot: GraphSnapshot,
    seeds: Iterable[int],
    targets: Sequence[int],
    damping: float = DEFAULT_DAMPING,
    solver: Optional[SnapshotMeasureSolver] = None,
) -> float:
    """Return the summed PPR score of a target node group given a seed group.

    This is the proximity aggregate used in the paper's case study: the
    proximity of company Y from company X is the sum of PPR scores of Y's
    nodes when X's nodes form the seed set.
    """
    scores = ppr_scores(snapshot, seeds, damping=damping, solver=solver)
    return float(np.sum(scores[list(targets)]))
