"""PageRank via the linear-system formulation.

PageRank with damping ``d`` and uniform teleportation solves::

    (I - d W) p = ((1 - d) / n) 1

where ``W`` is the column-normalized adjacency matrix.  The same decomposed
matrix answers the PageRank query and any personalized variant, which is why
the paper treats all of them uniformly as ``A x = b`` with ``A = I - d W``.

The measure is registered declaratively as the ``"pagerank"``
:class:`~repro.query.spec.MeasureSpec`; this module is a thin driver over
the generic engine and the planner-backed series API.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.matrixkind import DEFAULT_DAMPING
from repro.graphs.snapshot import GraphSnapshot
from repro.measures.base import SnapshotMeasureSolver
from repro.measures.timeseries import MeasureSeries
from repro.query.spec import evaluate, make_query, uniform_teleport_rhs


def pagerank_rhs(n: int, damping: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the uniform teleportation right-hand side ``((1 - d)/n) 1``.

    Delegates to the canonical builder the ``"pagerank"`` spec registers, so
    this helper and the planner can never drift apart.
    """
    return uniform_teleport_rhs(n, damping)


def pagerank_scores(
    snapshot: GraphSnapshot,
    damping: float = DEFAULT_DAMPING,
    solver: Optional[SnapshotMeasureSolver] = None,
) -> np.ndarray:
    """Return the PageRank vector of one snapshot (solved exactly via LU)."""
    return evaluate(make_query("pagerank", snapshot, damping=damping), system=solver)


def pagerank_series(
    egs: EvolvingGraphSequence,
    nodes: Sequence[int],
    damping: float = DEFAULT_DAMPING,
    algorithm: str = "CLUDE",
    alpha: float = 0.95,
) -> np.ndarray:
    """Return PageRank time series for selected nodes over a whole EGS.

    This is the paper's motivating workload (Figure 1): decompose every
    snapshot's matrix with a LUDEM algorithm, then answer the per-snapshot
    PageRank queries through the factor-seeded query planner (each
    snapshot's group reuses the decomposition, so the whole series costs
    zero extra factorizations).

    Returns an array of shape ``(T, len(nodes))``.
    """
    series = MeasureSeries(egs, damping=damping, algorithm=algorithm, alpha=alpha)
    return series.pagerank(nodes)
