"""PageRank via the linear-system formulation.

PageRank with damping ``d`` and uniform teleportation solves::

    (I - d W) p = ((1 - d) / n) 1

where ``W`` is the column-normalized adjacency matrix.  The same decomposed
matrix answers the PageRank query and any personalized variant, which is why
the paper treats all of them uniformly as ``A x = b`` with ``A = I - d W``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.solver import EMSSolver
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import DEFAULT_DAMPING, MatrixKind
from repro.graphs.snapshot import GraphSnapshot
from repro.measures.base import SnapshotMeasureSolver


def pagerank_rhs(n: int, damping: float = DEFAULT_DAMPING) -> np.ndarray:
    """Return the uniform teleportation right-hand side ``((1 - d)/n) 1``."""
    return np.full(n, (1.0 - damping) / n, dtype=float)


def pagerank_scores(
    snapshot: GraphSnapshot,
    damping: float = DEFAULT_DAMPING,
    solver: Optional[SnapshotMeasureSolver] = None,
) -> np.ndarray:
    """Return the PageRank vector of one snapshot (solved exactly via LU)."""
    solver = solver or SnapshotMeasureSolver(
        snapshot, kind=MatrixKind.RANDOM_WALK, damping=damping
    )
    return solver.solve(pagerank_rhs(snapshot.n, damping))


def pagerank_series(
    egs: EvolvingGraphSequence,
    nodes: Sequence[int],
    damping: float = DEFAULT_DAMPING,
    algorithm: str = "CLUDE",
    alpha: float = 0.95,
) -> np.ndarray:
    """Return PageRank time series for selected nodes over a whole EGS.

    This is the paper's motivating workload (Figure 1): decompose every
    snapshot's matrix with a LUDEM algorithm, then solve the same
    teleportation right-hand side against each snapshot.

    Returns an array of shape ``(T, len(nodes))``.
    """
    ems = EvolvingMatrixSequence.from_graphs(
        egs, kind=MatrixKind.RANDOM_WALK, damping=damping
    )
    ems_solver = EMSSolver(ems, algorithm=algorithm, alpha=alpha)
    # Route through the batched kernel path (k = 1); columns of a batched
    # solve are bitwise identical to scalar solves, so this changes nothing
    # numerically while keeping the series on the vectorized sweeps.
    rhs = pagerank_rhs(egs.n, damping)
    solutions = ems_solver.solve_series_batched(rhs[:, None])[:, :, 0]
    node_list: List[int] = [int(node) for node in nodes]
    return solutions[:, node_list]
