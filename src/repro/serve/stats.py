"""Observability for the online serving front-end.

The server records three timestamps per request — enqueue, solve start,
answer delivery — and reduces them into the latency decomposition a serving
operator actually debugs with:

* ``queue``  — time spent waiting for the micro-batch admission window,
* ``solve``  — time inside the planner (shared across the whole batch),
* ``total``  — enqueue to answer, what the client observes.

:class:`ServerStats` is an immutable snapshot (``MeasureServer.stats()``):
request/batch/update counters, the batch-size histogram (how well the
admission window coalesces), per-phase latency summaries with p50/p99, the
planner's ``cache_info()`` counters, and the approximation audit passthrough
(one :class:`~repro.query.planner.ApproximationRecord` per policy-served
group, exactly as the planner reported it).
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.query.planner import ApproximationRecord

#: How many of the most recent per-request latency records a server keeps for
#: percentile snapshots.  Aggregate counters are lifetime-exact regardless.
DEFAULT_HISTORY = 10_000


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``nan`` when empty).

    ``q`` is in percent: ``percentile(xs, 99)`` is the smallest sample that
    at least 99% of the samples do not exceed.  Nearest-rank (no
    interpolation) keeps every reported latency an actually-observed one.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    if not samples:
        return math.nan
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of one latency phase, in seconds."""

    count: int
    mean: float
    p50: float
    p99: float
    max: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "LatencySummary":
        """Summarize a sample list (``nan`` fields when empty)."""
        if not samples:
            return cls(count=0, mean=math.nan, p50=math.nan, p99=math.nan,
                       max=math.nan)
        return cls(
            count=len(samples),
            mean=float(sum(samples) / len(samples)),
            p50=percentile(samples, 50),
            p99=percentile(samples, 99),
            max=float(max(samples)),
        )


@dataclasses.dataclass(frozen=True)
class RequestRecord:
    """Per-request latency decomposition (seconds), as measured server-side."""

    measure: str
    queue: float
    solve: float
    total: float
    batch_size: int
    approximate: bool


@dataclasses.dataclass(frozen=True)
class ServerStats:
    """One immutable observability snapshot of a :class:`MeasureServer`.

    Attributes
    ----------
    requests:
        Queries ever submitted (including ones that later failed).
    answered / failed / cancelled:
        Resolution counts; ``answered + failed + cancelled`` trails
        ``requests`` by the queries still in flight.
    batches / batch_failures:
        Micro-batches executed, and how many needed the per-query isolation
        fallback because the batched planner run raised.
    updates_admitted:
        Streaming snapshot updates applied at batch boundaries.
    batch_size_histogram:
        ``{batch size: count}`` over all executed batches.
    queue_latency / solve_latency / total_latency:
        Phase summaries over the retained request history.
    approximations_served:
        Requests answered from another system's factors under the reuse
        policy (lifetime count).
    corrected_served:
        The subset of ``approximations_served`` answered through the
        corrected-reuse tier (rank-``k`` SMW correction or cross-damping
        sharing — any :class:`~repro.query.planner.ApproximationRecord`
        whose ``mode`` is not ``"verbatim"``; lifetime count).
    recent_approximations:
        The planner's audit records for the most recent approximate batches
        (each carries its ``rank`` and ``mode`` audit fields).
    planner_cache_info:
        ``QueryPlanner.cache_info()`` at snapshot time (factor + result
        cache counters).
    resolutions:
        Lifetime per-tier serve counts, summed over every executed batch's
        :attr:`~repro.query.planner.PlannerStats.resolutions` — ``{tier
        name: planned groups that tier served}``, the same uniform surface
        the planner reports per batch (``"hit"``, ``"store_restore"``,
        ``"verbatim_reuse"``, ``"corrected_reuse"``, ``"refresh"``,
        ``"cold"`` under the default ladder).
    """

    requests: int
    answered: int
    failed: int
    cancelled: int
    batches: int
    batch_failures: int
    updates_admitted: int
    batch_size_histogram: Dict[int, int]
    queue_latency: LatencySummary
    solve_latency: LatencySummary
    total_latency: LatencySummary
    approximations_served: int
    corrected_served: int
    recent_approximations: Tuple[ApproximationRecord, ...]
    planner_cache_info: Dict[str, int]
    resolutions: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of result-cache lookups that hit (``nan`` if none)."""
        hits = self.planner_cache_info.get("result_hits", 0)
        misses = self.planner_cache_info.get("result_misses", 0)
        if hits + misses == 0:
            return math.nan
        return hits / (hits + misses)


class StatsCollector:
    """Mutable accumulator behind :class:`ServerStats` snapshots.

    All mutation happens under the server's lock (the serving thread records
    batches, client threads bump the submission counter), so the collector
    itself needs no synchronization of its own.
    """

    def __init__(self, history: int = DEFAULT_HISTORY) -> None:
        if history < 1:
            raise ValueError(f"history must be positive, got {history}")
        self.requests = 0
        self.answered = 0
        self.failed = 0
        self.cancelled = 0
        self.batches = 0
        self.batch_failures = 0
        self.updates_admitted = 0
        self.batch_size_histogram: Dict[int, int] = {}
        self.approximations_served = 0
        self.corrected_served = 0
        self.resolutions: Dict[str, int] = {}
        self._records: Deque[RequestRecord] = deque(maxlen=history)
        self._recent_approximations: Deque[ApproximationRecord] = deque(maxlen=64)

    def record_batch(
        self,
        records: Sequence[RequestRecord],
        approximations: Sequence[ApproximationRecord] = (),
        resolutions: Optional[Dict[str, int]] = None,
    ) -> None:
        """Record one executed micro-batch and its per-request latencies."""
        self.batches += 1
        for tier, count in (resolutions or {}).items():
            self.resolutions[tier] = self.resolutions.get(tier, 0) + count
        if records:
            size = records[0].batch_size
            self.batch_size_histogram[size] = (
                self.batch_size_histogram.get(size, 0) + 1
            )
        self._records.extend(records)
        for record in approximations:
            self._recent_approximations.append(record)
            self.approximations_served += len(record.positions)
            if record.mode != "verbatim":
                self.corrected_served += len(record.positions)

    def records(self) -> List[RequestRecord]:
        """The retained per-request records, oldest first."""
        return list(self._records)

    def snapshot(self, planner_cache_info: Optional[Dict[str, int]] = None) -> ServerStats:
        """Freeze the current counters into a :class:`ServerStats`."""
        records = list(self._records)
        return ServerStats(
            requests=self.requests,
            answered=self.answered,
            failed=self.failed,
            cancelled=self.cancelled,
            batches=self.batches,
            batch_failures=self.batch_failures,
            updates_admitted=self.updates_admitted,
            batch_size_histogram=dict(self.batch_size_histogram),
            queue_latency=LatencySummary.of([r.queue for r in records]),
            solve_latency=LatencySummary.of([r.solve for r in records]),
            total_latency=LatencySummary.of([r.total for r in records]),
            approximations_served=self.approximations_served,
            corrected_served=self.corrected_served,
            recent_approximations=tuple(self._recent_approximations),
            planner_cache_info=dict(planner_cache_info or {}),
            resolutions=dict(self.resolutions),
        )
