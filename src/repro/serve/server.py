"""The online serving front-end: micro-batched admission over the planner.

Production proximity traffic is a *stream* of single queries, but every
efficiency lever this repo built — one factorization per distinct system,
batched multi-RHS sweeps, the result cache, delta refresh, QC policy reuse —
pays off per *batch*.  :class:`MeasureServer` bridges the two: a long-lived
thread coalesces concurrent submissions into planner batches through a
time/size admission window (flush on ``max_batch`` queries or ``max_wait_ms``
after the first pending one, whichever comes first), so a burst of requests
against a hot snapshot costs one planner run, while a lone request never
waits longer than the admission window.

Streaming graph updates ride the same FIFO queue: :meth:`MeasureServer.
admit_update` advances the server's *head* snapshot at a batch boundary
(an update flushes the open window, so queries submitted before it are
answered against the graph they saw) and registers the evolution with the
planner — the existing ``register_evolution`` / ``auto_refresh`` /
``QCPolicy`` machinery then serves the new head by Bennett refresh or
certified policy reuse instead of a cold factorization.

Failure isolation: a batch whose planner run raises (e.g. one poisoned query
with a singular custom system) degrades to per-query execution, so only the
poisoned requests' futures carry the (unit-annotated) error while their
innocent batch-mates still get answers — healthy systems factorized during
the failed run are already cached, making the degraded pass warm.

Every answer is produced by the planner itself, so server answers are
bitwise identical to a direct :meth:`~repro.query.planner.QueryPlanner.run`
of the same queries under an exact policy, however the stream happens to be
partitioned into micro-batches (pinned by the differential tests).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Deque, Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import MeasureError
from repro.exec.executors import Executor
from repro.graphs.matrixkind import DEFAULT_DAMPING, validate_damping
from repro.graphs.snapshot import GraphSnapshot
from repro.query.batch import QueryBatch
from repro.query.planner import FactorCache, QueryPlanner, ResultCache
from repro.query.spec import Query, get_spec, make_query
from repro.serve.stats import (
    DEFAULT_HISTORY,
    RequestRecord,
    ServerStats,
    StatsCollector,
)

#: Default admission-window size: flush once this many queries are pending.
DEFAULT_MAX_BATCH = 64

#: Default admission-window length in milliseconds: flush this long after the
#: first pending query even if the batch is not full.
DEFAULT_MAX_WAIT_MS = 2.0


@dataclasses.dataclass
class _QueryTicket:
    """One submitted query awaiting an admission window."""

    future: Future
    enqueued: float
    #: FIFO admission order, assigned at enqueue (1-based); lets flush()
    #: address "everything submitted so far" without a consumable flag.
    seq: int = 0
    query: Optional[Query] = None
    #: ``(measure, damping, system_token, params)`` for head-deferred queries.
    deferred: Optional[Tuple[str, float, Optional[Hashable], Dict[str, object]]] = None

    def resolve(self, head: Optional[GraphSnapshot]) -> Query:
        """Return the concrete query, binding head-deferred ones to ``head``."""
        if self.query is not None:
            return self.query
        measure, damping, system_token, params = self.deferred
        if head is None:
            raise MeasureError(
                "submit_measure(snapshot=None) queries the server's head "
                "snapshot, but no update has been admitted yet — pass a "
                "snapshot explicitly or admit_update() first"
            )
        return make_query(
            measure, head, damping=damping, system_token=system_token, **params
        )


@dataclasses.dataclass
class _UpdateTicket:
    """One streaming snapshot update awaiting its batch boundary."""

    future: Future
    enqueued: float
    snapshot: GraphSnapshot
    parent: Optional[GraphSnapshot]
    seq: int = 0


@dataclasses.dataclass
class _CheckpointTicket:
    """A control ticket flushing the factor cache to its store.

    Executed by the serving thread at a batch boundary — like an update, it
    closes the currently open admission window first, so the checkpoint
    captures a consistent working set (no planner run is in flight while
    the spill happens, and no locking of the planner is needed).
    """

    future: Future
    enqueued: float
    seq: int = 0


class MeasureServer:
    """Always-on proximity-query server over one :class:`QueryPlanner`.

    Parameters
    ----------
    planner:
        The planner to serve from.  When omitted, one is constructed from
        ``executor`` / ``cache`` / ``auto_refresh`` / ``policy`` /
        ``result_cache`` (which are rejected when an explicit planner is
        passed — the planner already owns those choices).
    max_batch:
        Admission-window size: a window flushes as soon as this many queries
        are pending (larger batches amortize planning and share substitution
        sweeps, at the cost of queueing latency under light load).
    max_wait_ms:
        Admission-window length: a window flushes at most this many
        milliseconds after its *first* query was enqueued, full or not.
        ``0`` disables coalescing-by-time entirely (a window still fills
        from backlog up to ``max_batch``).
    store:
        Optional :class:`~repro.store.factorstore.FactorStore` for the
        constructed planner (mutually exclusive with ``cache`` and with an
        explicit ``planner``): evicted factors spill to disk, misses
        restore from it, and :meth:`checkpoint` flushes the working set —
        a server restarted against the same store directory answers its
        first batch bitwise-identically with zero cold factorizations for
        checkpointed systems.
    register_lineage:
        When true (default), :meth:`admit_update` registers the
        parent→child evolution with the planner, so queries against the new
        head delta-refresh the parent's cached factors.  Disable for
        unboundedly evolving streams served by ``auto_refresh`` or a
        :class:`~repro.policy.qc.QCPolicy`, which need no per-pair state
        (with a size-bounded :class:`~repro.query.planner.FactorCache` the
        lineage registry is bounded either way: entries are pruned when
        their parent's factors are evicted).
    history:
        How many recent per-request latency records to retain for
        :meth:`stats` percentiles.
    shards:
        ``shards=N`` (N > 1) serves from a
        :class:`~repro.shard.planner.ShardedPlanner` the server constructs
        and owns: admission windows fan out across ``N`` persistent worker
        processes (factor ownership routed by content-stable key digest,
        snapshots shipped once through shared memory) and updates broadcast
        to every shard at batch boundaries in stream order.  Answers stay
        bitwise identical to serial serving; :meth:`close` shuts the pool
        down and unlinks every shared segment.

    Thread model: any number of client threads may submit; one daemon thread
    owns the planner, so the planner itself needs no locking.  Every
    submission returns a :class:`concurrent.futures.Future` resolving to the
    answer array (or raising what its query raised).
    """

    def __init__(
        self,
        planner: Optional[QueryPlanner] = None,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        executor: Union[Executor, int, None] = None,
        cache: Optional[FactorCache] = None,
        auto_refresh: bool = False,
        policy: Optional[object] = None,
        result_cache: Union[ResultCache, int, None] = None,
        store: Optional[object] = None,
        register_lineage: bool = True,
        history: int = DEFAULT_HISTORY,
        shards: int = 1,
    ) -> None:
        if max_batch < 1:
            raise MeasureError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise MeasureError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        if shards < 1:
            raise MeasureError(f"shards must be positive, got {shards}")
        self._owns_planner = False
        if planner is not None:
            conflicting = (
                executor is not None or cache is not None or auto_refresh
                or policy is not None or result_cache is not None
                or store is not None or shards != 1
            )
            if conflicting:
                raise MeasureError(
                    "pass either a planner or planner-construction arguments "
                    "(executor/cache/auto_refresh/policy/result_cache/store/"
                    "shards), not both"
                )
        elif shards > 1:
            # Sharded serving: admission windows fan out across a pool of
            # persistent worker processes; updates broadcast to every shard
            # at batch boundaries in stream order.  Each worker runs its own
            # serial planner, so a per-batch executor has no role here.
            if executor is not None or cache is not None:
                raise MeasureError(
                    "shards>1 replicates planner state per worker process — "
                    "per-batch executor/cache instances cannot be shared; "
                    "configure auto_refresh/policy/result_cache/store instead"
                )
            from repro.shard.planner import ShardedPlanner

            planner = ShardedPlanner(
                shards=shards,
                auto_refresh=auto_refresh,
                policy=policy,
                result_cache=result_cache,
                store=store,
            )
            self._owns_planner = True
        else:
            planner = QueryPlanner(
                executor=executor,
                cache=cache,
                auto_refresh=auto_refresh,
                policy=policy,
                result_cache=result_cache,
                store=store,
            )
        self._planner = planner
        self._max_batch = int(max_batch)
        self._max_wait = float(max_wait_ms) / 1000.0
        self._register_lineage = bool(register_lineage)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: Deque[
            Union[_QueryTicket, _UpdateTicket, _CheckpointTicket]
        ] = deque()
        self._stats = StatsCollector(history=history)
        self._head: Optional[GraphSnapshot] = None
        self._closed = False
        self._enqueue_seq = 0
        #: every ticket with seq <= this horizon skips the admission wait
        self._flush_horizon = 0
        self._thread = threading.Thread(
            target=self._serve_loop, name="measure-server", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    @property
    def planner(self) -> QueryPlanner:
        """The planner this server answers from (inspectable; not thread-safe
        to mutate while the server is live)."""
        return self._planner

    @property
    def head(self) -> Optional[GraphSnapshot]:
        """The most recently admitted snapshot (``None`` before any update)."""
        with self._lock:
            return self._head

    def submit(self, query: Query) -> "Future[np.ndarray]":
        """Enqueue one query; the future resolves to its answer array."""
        if not isinstance(query, Query):
            raise MeasureError(f"submit takes a Query, got {type(query).__name__}")
        get_spec(query.measure)  # reject unknown measures at the door
        return self._enqueue(_QueryTicket(
            future=Future(), enqueued=time.perf_counter(), query=query,
        ))

    def submit_measure(
        self,
        measure: str,
        snapshot: Optional[GraphSnapshot] = None,
        damping: float = DEFAULT_DAMPING,
        system_token: Optional[Hashable] = None,
        **params: object,
    ) -> "Future[np.ndarray]":
        """Build and enqueue one query.

        ``snapshot=None`` targets the server's *head* — the snapshot current
        at the moment the query's admission window forms, so a query
        submitted after :meth:`admit_update` (same thread) is answered
        against the updated graph, and one submitted before it against the
        graph it saw.  Measure name and required parameters are validated
        eagerly either way.
        """
        if snapshot is not None:
            return self.submit(make_query(
                measure, snapshot, damping=damping, system_token=system_token,
                **params,
            ))
        spec = get_spec(measure)
        for name in spec.required_params:
            if name not in params:
                raise MeasureError(f"measure {measure!r} requires parameter {name!r}")
        # Same per-kind domain the Query constructor enforces (LAPLACIAN
        # measures accept the undamped d = 0.0 convention).
        validate_damping(spec.kind, damping)
        return self._enqueue(_QueryTicket(
            future=Future(), enqueued=time.perf_counter(),
            deferred=(measure, float(damping), system_token, dict(params)),
        ))

    def admit_update(
        self,
        snapshot: GraphSnapshot,
        parent: Optional[GraphSnapshot] = None,
    ) -> "Future[GraphSnapshot]":
        """Admit a streaming graph update; resolves once the head advanced.

        The update is applied at a batch boundary in submission order: it
        flushes the currently open admission window, so queries enqueued
        before it are answered against the old head, queries after it
        against the new one.  ``parent`` defaults to the current head; when
        a parent exists with the same node count, the evolution is
        registered with the planner (``register_lineage=True``), making the
        new head's first miss a Bennett refresh instead of a cold
        factorization.  A node-count change skips lineage (no refresh is
        possible) but still advances the head.
        """
        if not isinstance(snapshot, GraphSnapshot):
            raise MeasureError(
                f"admit_update takes a GraphSnapshot, got {type(snapshot).__name__}"
            )
        if parent is not None and not isinstance(parent, GraphSnapshot):
            raise MeasureError("parent must be a GraphSnapshot (or None for the head)")
        return self._enqueue(_UpdateTicket(
            future=Future(), enqueued=time.perf_counter(),
            snapshot=snapshot, parent=parent,
        ), is_query=False)

    def checkpoint(self) -> "Future[int]":
        """Flush the planner's factor cache to its store at a batch boundary.

        Enqueued like an update: the open admission window closes first, so
        the spill sees a consistent working set and runs *on the serving
        thread* — the planner is never touched concurrently.  The future
        resolves to the number of systems checkpointed (see
        :meth:`~repro.query.planner.FactorCache.checkpoint`), or raises
        :class:`~repro.errors.MeasureError` when the planner's cache has no
        store attached.  A replacement server constructed over the same
        store directory then answers every checkpointed system from disk,
        bitwise-identically, without a cold factorization.
        """
        return self._enqueue(_CheckpointTicket(
            future=Future(), enqueued=time.perf_counter(),
        ), is_query=False)

    def flush(self) -> None:
        """Stop waiting out ``max_wait_ms`` for everything submitted so far.

        Every request already enqueued is executed as soon as the serving
        thread reaches it (still coalesced into ``max_batch``-sized windows),
        instead of its window waiting for more company.  Requests submitted
        *after* the flush admit normally — the call marks a point in the
        stream, not a consumable flag, so nothing already submitted can be
        stranded by a window that closed in between.
        """
        with self._wakeup:
            self._flush_horizon = self._enqueue_seq
            self._wakeup.notify_all()

    def stats(self) -> ServerStats:
        """Snapshot the server's observability counters (see ServerStats)."""
        with self._lock:
            return self._stats.snapshot(self._planner.cache_info())

    def request_records(self) -> List[RequestRecord]:
        """The retained per-request latency records, oldest first."""
        with self._lock:
            return self._stats.records()

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the server.

        ``drain=True`` (default) answers everything already enqueued before
        the serving thread exits; ``drain=False`` cancels pending futures
        instead.  Idempotent; submissions after close raise.  A sharded
        planner the server constructed itself (``shards=N``) is shut down
        too — its workers stop and every shared-memory segment is unlinked,
        whether or not the queue was drained.
        """
        with self._wakeup:
            self._closed = True
            if not drain:
                while self._pending:
                    ticket = self._pending.popleft()
                    if ticket.future.cancel():
                        self._stats.cancelled += 1
            self._wakeup.notify_all()
        self._thread.join(timeout)
        if self._owns_planner and not self._thread.is_alive():
            self._planner.close()

    def __enter__(self) -> "MeasureServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Serving thread
    # ------------------------------------------------------------------ #
    def _enqueue(self, ticket, is_query: bool = True):
        with self._wakeup:
            if self._closed:
                raise MeasureError("MeasureServer is closed")
            self._enqueue_seq += 1
            ticket.seq = self._enqueue_seq
            self._pending.append(ticket)
            if is_query:
                self._stats.requests += 1
            self._wakeup.notify_all()
        return ticket.future

    def _serve_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if not self._pending:
                    return  # closed and drained
                first = self._pending.popleft()
            if isinstance(first, _UpdateTicket):
                self._apply_update(first)
                continue
            if isinstance(first, _CheckpointTicket):
                self._apply_checkpoint(first)
                continue
            tickets = self._gather_window(first)
            self._execute_batch(tickets)

    def _gather_window(self, first: _QueryTicket) -> List[_QueryTicket]:
        """Fill an admission window: flush on size, deadline, update or close.

        The deadline is anchored at the *first* ticket's enqueue time, so a
        query never queues longer than ``max_wait_ms`` waiting for company —
        if the serving thread was busy past the deadline already, the
        backlog flushes immediately in ``max_batch``-sized windows.
        """
        tickets = [first]
        deadline = first.enqueued + self._max_wait
        with self._wakeup:
            while len(tickets) < self._max_batch:
                if self._pending:
                    if not isinstance(self._pending[0], _QueryTicket):
                        break  # updates/checkpoints apply at this boundary
                    tickets.append(self._pending.popleft())
                    continue
                # Backlog drained; decide whether to keep the window open.
                if self._closed or first.seq <= self._flush_horizon:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._wakeup.wait(remaining)
        return tickets

    def _apply_update(self, ticket: _UpdateTicket) -> None:
        if not ticket.future.set_running_or_notify_cancel():
            with self._lock:
                self._stats.cancelled += 1
            return
        try:
            parent = ticket.parent if ticket.parent is not None else self._head
            if (
                self._register_lineage
                and parent is not None
                and parent.n == ticket.snapshot.n
                and parent != ticket.snapshot
            ):
                self._planner.register_evolution(parent, ticket.snapshot)
        except Exception as error:  # noqa: BLE001 - reported on the future
            ticket.future.set_exception(error)
            return
        with self._lock:
            self._head = ticket.snapshot
            self._stats.updates_admitted += 1
        ticket.future.set_result(ticket.snapshot)

    def _apply_checkpoint(self, ticket: _CheckpointTicket) -> None:
        if not ticket.future.set_running_or_notify_cancel():
            with self._lock:
                self._stats.cancelled += 1
            return
        try:
            count = self._planner.checkpoint()
        except Exception as error:  # noqa: BLE001 - reported on the future
            ticket.future.set_exception(error)
            return
        ticket.future.set_result(count)

    def _execute_batch(self, tickets: List[_QueryTicket]) -> None:
        live: List[Tuple[_QueryTicket, Query]] = []
        failed = 0
        cancelled = 0
        head = self._head  # only this thread writes it
        for ticket in tickets:
            try:
                query = ticket.resolve(head)
            except Exception as error:  # noqa: BLE001 - per-request failure
                ticket.future.set_exception(error)
                failed += 1
                continue
            if not ticket.future.set_running_or_notify_cancel():
                cancelled += 1
                continue
            live.append((ticket, query))
        if not live:
            with self._lock:
                self._stats.failed += failed
                self._stats.cancelled += cancelled
            return
        started = time.perf_counter()
        batch = QueryBatch([query for _, query in live])
        try:
            outcome = self._planner.run(batch)
        except Exception:  # noqa: BLE001 - degrade to per-query isolation
            with self._lock:
                self._stats.batch_failures += 1
                self._stats.failed += failed
                self._stats.cancelled += cancelled
            self._execute_degraded(live, started)
            return
        solve_time = time.perf_counter() - started
        approximate = set(outcome.approximate_positions())
        records: List[RequestRecord] = []
        for position, ((ticket, query), answer) in enumerate(
            zip(live, outcome.results)
        ):
            ticket.future.set_result(answer)
            done = time.perf_counter()
            records.append(RequestRecord(
                measure=query.measure,
                queue=started - ticket.enqueued,
                solve=solve_time,
                total=done - ticket.enqueued,
                batch_size=len(live),
                approximate=position in approximate,
            ))
        with self._lock:
            self._stats.answered += len(live)
            self._stats.failed += failed
            self._stats.cancelled += cancelled
            self._stats.record_batch(
                records, outcome.approximations, outcome.stats.resolutions
            )

    def _execute_degraded(
        self, live: List[Tuple[_QueryTicket, Query]], batch_started: float
    ) -> None:
        """Answer a failed batch one query at a time (failure isolation).

        Only the queries that actually fail carry an exception; their batch
        mates are answered normally.  Healthy systems were already cached by
        the failed batched run (the planner stores them before raising), so
        this pass is mostly warm.
        """
        records: List[RequestRecord] = []
        approximations = []
        resolutions: Dict[str, int] = {}
        answered = 0
        failed = 0
        for ticket, query in live:
            started = time.perf_counter()
            try:
                outcome = self._planner.run(QueryBatch([query]))
            except Exception as error:  # noqa: BLE001 - isolated per request
                ticket.future.set_exception(error)
                failed += 1
                continue
            for tier, count in outcome.stats.resolutions.items():
                resolutions[tier] = resolutions.get(tier, 0) + count
            ticket.future.set_result(outcome.results[0])
            done = time.perf_counter()
            records.append(RequestRecord(
                measure=query.measure,
                queue=batch_started - ticket.enqueued,
                solve=done - started,
                total=done - ticket.enqueued,
                batch_size=1,
                approximate=bool(outcome.approximations),
            ))
            approximations.extend(outcome.approximations)
            answered += 1
        with self._lock:
            self._stats.answered += answered
            self._stats.failed += failed
            self._stats.record_batch(records, approximations, resolutions)
