"""Online serving: a micro-batching front-end over the query planner.

:class:`MeasureServer` turns the batch-oriented planner into an always-on
service — single-query submissions coalesce into planner batches through a
time/size admission window, streaming snapshot updates apply at batch
boundaries through the planner's evolution machinery, and every request
carries its own latency decomposition (:class:`ServerStats`).
"""

from repro.serve.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    MeasureServer,
)
from repro.serve.stats import (
    DEFAULT_HISTORY,
    LatencySummary,
    RequestRecord,
    ServerStats,
    StatsCollector,
    percentile,
)

__all__ = [
    "MeasureServer",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "ServerStats",
    "StatsCollector",
    "LatencySummary",
    "RequestRecord",
    "percentile",
    "DEFAULT_HISTORY",
]
