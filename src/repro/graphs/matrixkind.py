"""Composing measure matrices from graph snapshots.

Every measure in the paper reduces to solving ``A x = b`` where ``A`` depends
only on the graph structure and the chosen measure (Section 1).  This module
holds the matrix "kinds" the library supports:

* :data:`MatrixKind.RANDOM_WALK` — ``A = I - d W`` with ``W`` the
  column-normalized adjacency matrix (footnote 1 of the paper).  Used by
  PageRank, Personalized PageRank, Random Walk with Restart and Discounted
  Hitting Time.
* :data:`MatrixKind.SYMMETRIC_WALK` — ``A = I - d S`` with
  ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` for undirected edges.  ``A`` is
  symmetric and strictly diagonally dominant, which is what the LUDEM-QC
  experiments (DBLP co-authorship) require.
* :data:`MatrixKind.LAPLACIAN` — ``A = I + L`` where ``L`` is the combinatorial
  Laplacian; an alternative symmetric form exposed for completeness.
"""

from __future__ import annotations

import enum
import math
from typing import Dict

from repro.errors import MeasureError
from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix

#: Default damping factor used across measures (the PageRank convention).
DEFAULT_DAMPING = 0.85


class MatrixKind(enum.Enum):
    """Supported ways to turn a graph snapshot into a measure matrix."""

    RANDOM_WALK = "random_walk"
    SYMMETRIC_WALK = "symmetric_walk"
    LAPLACIAN = "laplacian"


def column_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``W`` with ``W[j, i] = 1 / out_degree(i)`` for every edge ``(i, j)``."""
    out_degrees = snapshot.out_degrees()
    return SparseMatrix.from_triples(
        snapshot.n,
        ((v, u, 1.0 / out_degrees[u]) for u, v in snapshot.edges),
    )


def symmetric_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``S`` with ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` over symmetrized edges."""
    degrees: Dict[int, int] = {}
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for u, v in undirected:
            weight = 1.0 / math.sqrt(degrees[u] * degrees[v])
            yield u, v, weight
            yield v, u, weight

    return SparseMatrix.from_triples(snapshot.n, triples())


def laplacian_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the combinatorial Laplacian ``L = D - A`` of the symmetrized graph."""
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    degrees: Dict[int, int] = {}
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for node, degree in degrees.items():
            yield node, node, float(degree)
        for u, v in undirected:
            yield u, v, -1.0
            yield v, u, -1.0

    return SparseMatrix.from_triples(snapshot.n, triples())


def measure_matrix(
    snapshot: GraphSnapshot,
    kind: MatrixKind = MatrixKind.RANDOM_WALK,
    damping: float = DEFAULT_DAMPING,
) -> SparseMatrix:
    """Compose the measure matrix ``A`` for a snapshot.

    Parameters
    ----------
    snapshot:
        The graph snapshot.
    kind:
        Which matrix composition to use.
    damping:
        Damping factor ``d`` for the random-walk kinds; must satisfy
        ``0 < d < 1`` so that ``A`` is strictly diagonally dominant.
    """
    if kind in (MatrixKind.RANDOM_WALK, MatrixKind.SYMMETRIC_WALK):
        if not 0.0 < damping < 1.0:
            raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    identity = SparseMatrix.identity(snapshot.n)
    if kind is MatrixKind.RANDOM_WALK:
        walk = column_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.SYMMETRIC_WALK:
        walk = symmetric_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.LAPLACIAN:
        return identity.add(laplacian_matrix(snapshot))
    raise MeasureError(f"unsupported matrix kind: {kind!r}")
