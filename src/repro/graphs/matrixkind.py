"""Composing measure matrices from graph snapshots.

Every measure in the paper reduces to solving ``A x = b`` where ``A`` depends
only on the graph structure and the chosen measure (Section 1).  This module
holds the matrix "kinds" the library supports:

* :data:`MatrixKind.RANDOM_WALK` — ``A = I - d W`` with ``W`` the
  column-normalized adjacency matrix (footnote 1 of the paper).  Used by
  PageRank, Personalized PageRank, Random Walk with Restart and Discounted
  Hitting Time.
* :data:`MatrixKind.SYMMETRIC_WALK` — ``A = I - d S`` with
  ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` for undirected edges.  ``A`` is
  symmetric and strictly diagonally dominant, which is what the LUDEM-QC
  experiments (DBLP co-authorship) require.
* :data:`MatrixKind.LAPLACIAN` — ``A = I + L`` where ``L`` is the combinatorial
  Laplacian; an alternative symmetric form exposed for completeness.
* :data:`MatrixKind.SALSA_AUTHORITY` / :data:`MatrixKind.SALSA_HUB` —
  ``A = I - d (F B)`` respectively ``A = I - d (B F)`` where ``F`` is the
  column-normalized forward walk and ``B`` the column-normalized backward
  walk; the damped SALSA alternating-walk systems.

Query-parameterized systems that do not fit the ``(snapshot, kind, damping)``
signature (the discounted-hitting-time matrix, whose target row is masked)
are exposed as standalone builders (:func:`hitting_time_matrix`).

The module also holds the *system-delta* layer (:func:`system_delta`): given
two same-``n`` snapshots and the :class:`~repro.graphs.delta.GraphDelta`
between them, compute the sparse entry delta of the system matrix
``A = I - d M`` directly — without composing either full matrix — so cached
LU factors can be Bennett-refreshed instead of re-factorized.  Degree
renormalization means a changed node does not just edit the changed
positions: the node's whole normalized column (or incident entries, for the
symmetric kinds) is replaced, which is why the builders work from
:func:`~repro.graphs.delta.touched_sources` / touched nodes rather than the
raw edge delta.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import DimensionError, MeasureError
from repro.graphs.delta import GraphDelta, touched_sources
from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix
from repro.sparse.types import Entries

#: Default damping factor used across measures (the PageRank convention).
DEFAULT_DAMPING = 0.85


class MatrixKind(enum.Enum):
    """Supported ways to turn a graph snapshot into a measure matrix."""

    RANDOM_WALK = "random_walk"
    SYMMETRIC_WALK = "symmetric_walk"
    LAPLACIAN = "laplacian"
    SALSA_AUTHORITY = "salsa_authority"
    SALSA_HUB = "salsa_hub"


def column_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``W`` with ``W[j, i] = 1 / out_degree(i)`` for every edge ``(i, j)``."""
    out_degrees = snapshot.out_degrees()
    return SparseMatrix.from_triples(
        snapshot.n,
        ((v, u, 1.0 / out_degrees[u]) for u, v in snapshot.edges),
    )


def backward_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the column-normalized *backward* walk matrix.

    Entry ``(u, v)`` is ``1 / in_degree(v)`` for every edge ``(u, v)``: column
    ``v`` spreads unit mass over the predecessors of ``v``, i.e. one step of
    following a link backwards.  Together with
    :func:`column_normalized_matrix` (the forward step) it forms the SALSA
    alternating walk.
    """
    in_degrees = snapshot.in_degrees()
    return SparseMatrix.from_triples(
        snapshot.n,
        ((u, v, 1.0 / in_degrees[v]) for u, v in snapshot.edges),
    )


def salsa_walk_matrix(snapshot: GraphSnapshot, kind: MatrixKind) -> SparseMatrix:
    """Return the combined SALSA transition matrix for one score side.

    The authority chain follows a link backward then forward
    (``forward @ backward`` in column-normalized convention); the hub chain
    is the reverse composition.  The product runs on the CSR spgemm kernel.
    """
    forward = column_normalized_matrix(snapshot)
    backward = backward_normalized_matrix(snapshot)
    if kind is MatrixKind.SALSA_AUTHORITY:
        return forward.multiply(backward)
    if kind is MatrixKind.SALSA_HUB:
        return backward.multiply(forward)
    raise MeasureError(f"not a SALSA matrix kind: {kind!r}")


def row_stochastic_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the row-stochastic transition matrix ``P`` of the snapshot."""
    out_degrees = snapshot.out_degrees()
    edges = sorted(snapshot.edges)
    if not edges:
        return SparseMatrix.zeros(snapshot.n)
    sources = np.array([u for u, _ in edges], dtype=np.int64)
    targets = np.array([v for _, v in edges], dtype=np.int64)
    weights = 1.0 / np.array([out_degrees[u] for u in sources.tolist()], dtype=np.float64)
    return SparseMatrix.from_coo(snapshot.n, sources, targets, weights)


def hitting_time_matrix(
    snapshot: GraphSnapshot, target: int, damping: float = DEFAULT_DAMPING
) -> SparseMatrix:
    """Compose the discounted-hitting-time system matrix for one target.

    The target row of the row-stochastic transition matrix is masked to the
    identity (its equation is simply ``h(target) = 1``), every other row
    carries ``-d P``, and the identity is added — all on the COO arrays,
    with duplicate positions summed.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    n = snapshot.n
    if not 0 <= target < n:
        raise MeasureError(f"target node {target} out of bounds for n={n}")
    transition = row_stochastic_matrix(snapshot)
    rows, cols, vals = transition.coo()
    keep = rows != target
    return SparseMatrix.from_coo(
        n,
        np.concatenate([rows[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([cols[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([-damping * vals[keep], np.ones(n, dtype=np.float64)]),
    )


def symmetric_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``S`` with ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` over symmetrized edges."""
    degrees: Dict[int, int] = {}
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for u, v in undirected:
            weight = 1.0 / math.sqrt(degrees[u] * degrees[v])
            yield u, v, weight
            yield v, u, weight

    return SparseMatrix.from_triples(snapshot.n, triples())


def laplacian_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the combinatorial Laplacian ``L = D - A`` of the symmetrized graph."""
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    degrees: Dict[int, int] = {}
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for node, degree in degrees.items():
            yield node, node, float(degree)
        for u, v in undirected:
            yield u, v, -1.0
            yield v, u, -1.0

    return SparseMatrix.from_triples(snapshot.n, triples())


def validate_damping(kind: MatrixKind, damping: float) -> None:
    """Check ``damping`` against the *kind's* admissible domain.

    The walk-based kinds compose ``A = I - d·M`` and need ``0 < d < 1``
    for strict diagonal dominance.  ``LAPLACIAN`` composes ``A = I + L``,
    where the damping factor does not enter the matrix at all — its
    conventional value is ``0.0`` (the undamped system,
    ``reuse_loss_bound``'s documented ``‖A⁻¹‖₁ = 1`` case), so the domain
    is ``0 <= d < 1``.  One shared gate keeps every validation site —
    matrix composition, system deltas, :class:`~repro.query.spec.Query`
    construction, server admission — agreeing on these domains.
    """
    if kind is MatrixKind.LAPLACIAN:
        if not 0.0 <= damping < 1.0:
            raise MeasureError(
                f"damping factor for {kind.name} must lie in [0, 1), got {damping}"
            )
    elif not 0.0 < damping < 1.0:
        raise MeasureError(
            f"damping factor must lie in (0, 1), got {damping}"
        )


def measure_matrix(
    snapshot: GraphSnapshot,
    kind: MatrixKind = MatrixKind.RANDOM_WALK,
    damping: float = DEFAULT_DAMPING,
) -> SparseMatrix:
    """Compose the measure matrix ``A`` for a snapshot.

    Parameters
    ----------
    snapshot:
        The graph snapshot.
    kind:
        Which matrix composition to use.
    damping:
        Damping factor ``d`` for the random-walk kinds; must satisfy
        ``0 < d < 1`` so that ``A`` is strictly diagonally dominant
        (``0 <= d < 1`` for ``LAPLACIAN``, which ignores it).
    """
    validate_damping(kind, damping)
    identity = SparseMatrix.identity(snapshot.n)
    if kind is MatrixKind.RANDOM_WALK:
        walk = column_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.SYMMETRIC_WALK:
        walk = symmetric_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind in (MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB):
        walk = salsa_walk_matrix(snapshot, kind)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.LAPLACIAN:
        return identity.add(laplacian_matrix(snapshot))
    raise MeasureError(f"unsupported matrix kind: {kind!r}")


# ---------------------------------------------------------------------- #
# System deltas: the entry change of A = I - d·M induced by a graph delta
# ---------------------------------------------------------------------- #
def _random_walk_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, damping: float, delta: GraphDelta
) -> Entries:
    """Delta of ``I - d W`` (column-normalized): touched columns are replaced.

    ``W[v, u] = 1 / out_degree(u)``, so any change to ``u``'s out-edge set
    rescales *every* stored entry of column ``u`` — the whole column is
    diffed, not just the changed positions.
    """
    sources = set(touched_sources(delta))
    if not sources:
        return {}
    old_succ: Dict[int, Set[int]] = {u: set() for u in sources}
    new_succ: Dict[int, Set[int]] = {u: set() for u in sources}
    for u, v in before.edges:
        if u in sources:
            old_succ[u].add(v)
    for u, v in after.edges:
        if u in sources:
            new_succ[u].add(v)
    entries: Entries = {}
    for u in sources:
        old = old_succ[u]
        new = new_succ[u]
        # Same float expressions as column_normalized_matrix + scale/subtract,
        # so the localized delta matches a full-matrix diff bitwise.
        old_value = -((1.0 / len(old)) * damping) if old else 0.0
        new_value = -((1.0 / len(new)) * damping) if new else 0.0
        for v in old | new:
            change = (new_value if v in new else 0.0) - (old_value if v in old else 0.0)
            if change != 0.0:
                entries[(v, u)] = change
    return entries


def _undirected_edges(snapshot: GraphSnapshot) -> Set[Tuple[int, int]]:
    return {(min(u, v), max(u, v)) for u, v in snapshot.edges}


def _undirected_degrees(undirected: Set[Tuple[int, int]]) -> Dict[int, int]:
    degrees: Dict[int, int] = {}
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    return degrees


def _symmetric_walk_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, damping: float, delta: GraphDelta
) -> Entries:
    """Delta of ``I - d S``: entries incident to degree-touched nodes are rediffed."""
    und_old = _undirected_edges(before)
    und_new = _undirected_edges(after)
    touched = {node for edge in und_old ^ und_new for node in edge}
    if not touched:
        return {}
    deg_old = _undirected_degrees(und_old)
    deg_new = _undirected_degrees(und_new)
    entries: Entries = {}
    for u, v in und_old | und_new:
        if u not in touched and v not in touched:
            continue
        old_value = (
            -((1.0 / math.sqrt(deg_old[u] * deg_old[v])) * damping)
            if (u, v) in und_old else 0.0
        )
        new_value = (
            -((1.0 / math.sqrt(deg_new[u] * deg_new[v])) * damping)
            if (u, v) in und_new else 0.0
        )
        change = new_value - old_value
        if change != 0.0:
            entries[(u, v)] = change
            entries[(v, u)] = change
    return entries


def _laplacian_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, delta: GraphDelta
) -> Entries:
    """Delta of ``I + L``: degree diagonal of touched nodes plus ∓1 off-diagonals."""
    und_old = _undirected_edges(before)
    und_new = _undirected_edges(after)
    changed = und_old ^ und_new
    if not changed:
        return {}
    deg_old = _undirected_degrees(und_old)
    deg_new = _undirected_degrees(und_new)
    entries: Entries = {}
    for node in {endpoint for edge in changed for endpoint in edge}:
        change = (1.0 + float(deg_new.get(node, 0))) - (1.0 + float(deg_old.get(node, 0)))
        if change != 0.0:
            entries[(node, node)] = change
    for u, v in changed:
        change = -1.0 if (u, v) in und_new else 1.0
        entries[(u, v)] = change
        entries[(v, u)] = change
    return entries


def damping_delta(
    snapshot: GraphSnapshot,
    kind: MatrixKind,
    from_damping: float,
    to_damping: float,
) -> Entries:
    """Return the entry delta of changing a system's damping factor only.

    For the walk kinds ``A = I - d·M`` with ``M`` fixed by the snapshot, so::

        A(to) - A(from) = (from - to) · M

    — a delta supported on exactly the stored entries of ``M``, computable
    without composing either full system matrix twice.  This is the
    cross-damping reuse substrate: a cached ``(kind, snapshot, d')`` system
    answering a miss at damping ``d`` is off by this delta, which the same
    :func:`~repro.core.quality.reuse_loss_bound` machinery certifies (its
    max column mass is ``|d' - d|·‖M‖₁ <= |d' - d|``).  The ``LAPLACIAN``
    kind composes ``A = I + L`` with no damping term at all, so its delta is
    empty — cross-damping reuse there is *exact*.
    """
    validate_damping(kind, from_damping)
    validate_damping(kind, to_damping)
    if kind is MatrixKind.LAPLACIAN or from_damping == to_damping:
        return {}
    if kind is MatrixKind.RANDOM_WALK:
        walk = column_normalized_matrix(snapshot)
    elif kind is MatrixKind.SYMMETRIC_WALK:
        walk = symmetric_normalized_matrix(snapshot)
    elif kind in (MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB):
        walk = salsa_walk_matrix(snapshot, kind)
    else:
        raise MeasureError(f"unsupported matrix kind: {kind!r}")
    scale = from_damping - to_damping
    rows, cols, vals = walk.coo()
    entries: Entries = {}
    for row, col, value in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        change = scale * value
        if change != 0.0:
            entries[(row, col)] = change
    return entries


def system_delta(
    before: GraphSnapshot,
    after: GraphSnapshot,
    kind: MatrixKind = MatrixKind.RANDOM_WALK,
    damping: float = DEFAULT_DAMPING,
    delta: Optional[GraphDelta] = None,
) -> Entries:
    """Return the sparse entry delta ``measure_matrix(after) - measure_matrix(before)``.

    For the locally-normalized kinds (``RANDOM_WALK``, ``SYMMETRIC_WALK``,
    ``LAPLACIAN``) the delta is computed from the touched nodes alone, so the
    cost scales with the graph change rather than the graph.  The SALSA kinds
    compose two-hop walk products, where one changed edge perturbs entries
    two steps away; they fall back to diffing the two composed matrices
    (still far cheaper than a factorization).

    Parameters
    ----------
    before, after:
        Two snapshots over the same node universe.
    kind:
        Which system-matrix composition the delta is for.
    damping:
        Damping factor ``d`` of the composition (ignored for ``LAPLACIAN``).
    delta:
        The :class:`~repro.graphs.delta.GraphDelta` between the snapshots,
        when the caller already has it; computed here otherwise.
    """
    if before.n != after.n:
        raise DimensionError(
            f"snapshots have different node counts: {before.n} vs {after.n}"
        )
    validate_damping(kind, damping)
    if delta is None:
        delta = GraphDelta.between(before, after)
    if delta.is_empty():
        return {}
    if kind is MatrixKind.RANDOM_WALK:
        return _random_walk_system_delta(before, after, damping, delta)
    if kind is MatrixKind.SYMMETRIC_WALK:
        return _symmetric_walk_system_delta(before, after, damping, delta)
    if kind is MatrixKind.LAPLACIAN:
        return _laplacian_system_delta(before, after, delta)
    if kind in (MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB):
        return measure_matrix(before, kind=kind, damping=damping).delta_entries(
            measure_matrix(after, kind=kind, damping=damping)
        )
    raise MeasureError(f"unsupported matrix kind: {kind!r}")
