"""Composing measure matrices from graph snapshots.

Every measure in the paper reduces to solving ``A x = b`` where ``A`` depends
only on the graph structure and the chosen measure (Section 1).  This module
holds the matrix "kinds" the library supports:

* :data:`MatrixKind.RANDOM_WALK` — ``A = I - d W`` with ``W`` the
  column-normalized adjacency matrix (footnote 1 of the paper).  Used by
  PageRank, Personalized PageRank, Random Walk with Restart and Discounted
  Hitting Time.
* :data:`MatrixKind.SYMMETRIC_WALK` — ``A = I - d S`` with
  ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` for undirected edges.  ``A`` is
  symmetric and strictly diagonally dominant, which is what the LUDEM-QC
  experiments (DBLP co-authorship) require.
* :data:`MatrixKind.LAPLACIAN` — ``A = I + L`` where ``L`` is the combinatorial
  Laplacian; an alternative symmetric form exposed for completeness.
* :data:`MatrixKind.SALSA_AUTHORITY` / :data:`MatrixKind.SALSA_HUB` —
  ``A = I - d (F B)`` respectively ``A = I - d (B F)`` where ``F`` is the
  column-normalized forward walk and ``B`` the column-normalized backward
  walk; the damped SALSA alternating-walk systems.

Query-parameterized systems that do not fit the ``(snapshot, kind, damping)``
signature (the discounted-hitting-time matrix, whose target row is masked)
are exposed as standalone builders (:func:`hitting_time_matrix`).

The module also holds the *system-delta* layer (:func:`system_delta`): given
two same-``n`` snapshots and the :class:`~repro.graphs.delta.GraphDelta`
between them, compute the sparse entry delta of the system matrix
``A = I - d M`` directly — without composing either full matrix — so cached
LU factors can be Bennett-refreshed instead of re-factorized.  Degree
renormalization means a changed node does not just edit the changed
positions: the node's whole normalized column (or incident entries, for the
symmetric kinds) is replaced, which is why the builders work from
:func:`~repro.graphs.delta.touched_sources` / touched nodes rather than the
raw edge delta.

Delta computation dispatches through a per-kind **provider registry**
(:func:`register_delta_provider` / :func:`delta_provider`): each
:class:`MatrixKind` registers one callable computing its localized system
delta, and :func:`system_delta` is a thin validated dispatcher.  Extending
the library with a new kind therefore means registering a provider, not
editing a closed if/elif chain.  The SALSA kinds use a *localized two-hop*
provider: the composed product ``F B`` (or ``B F``) only changes in columns
reachable from the touched nodes, so the provider recomputes exactly those
columns through the same spgemm kernel — bitwise identical to diffing the
two fully-composed matrices, at a cost that scales with the graph change
rather than the graph.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import DimensionError, MeasureError
from repro.graphs.delta import GraphDelta, touched_sources
from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix
from repro.sparse.types import Entries

#: Default damping factor used across measures (the PageRank convention).
DEFAULT_DAMPING = 0.85


class MatrixKind(enum.Enum):
    """Supported ways to turn a graph snapshot into a measure matrix."""

    RANDOM_WALK = "random_walk"
    SYMMETRIC_WALK = "symmetric_walk"
    LAPLACIAN = "laplacian"
    SALSA_AUTHORITY = "salsa_authority"
    SALSA_HUB = "salsa_hub"


def column_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``W`` with ``W[j, i] = 1 / out_degree(i)`` for every edge ``(i, j)``."""
    out_degrees = snapshot.out_degrees()
    return SparseMatrix.from_triples(
        snapshot.n,
        ((v, u, 1.0 / out_degrees[u]) for u, v in snapshot.edges),
    )


def backward_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the column-normalized *backward* walk matrix.

    Entry ``(u, v)`` is ``1 / in_degree(v)`` for every edge ``(u, v)``: column
    ``v`` spreads unit mass over the predecessors of ``v``, i.e. one step of
    following a link backwards.  Together with
    :func:`column_normalized_matrix` (the forward step) it forms the SALSA
    alternating walk.
    """
    in_degrees = snapshot.in_degrees()
    return SparseMatrix.from_triples(
        snapshot.n,
        ((u, v, 1.0 / in_degrees[v]) for u, v in snapshot.edges),
    )


def salsa_walk_matrix(snapshot: GraphSnapshot, kind: MatrixKind) -> SparseMatrix:
    """Return the combined SALSA transition matrix for one score side.

    The authority chain follows a link backward then forward
    (``forward @ backward`` in column-normalized convention); the hub chain
    is the reverse composition.  The product runs on the CSR spgemm kernel.
    """
    forward = column_normalized_matrix(snapshot)
    backward = backward_normalized_matrix(snapshot)
    if kind is MatrixKind.SALSA_AUTHORITY:
        return forward.multiply(backward)
    if kind is MatrixKind.SALSA_HUB:
        return backward.multiply(forward)
    raise MeasureError(f"not a SALSA matrix kind: {kind!r}")


def row_stochastic_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the row-stochastic transition matrix ``P`` of the snapshot."""
    out_degrees = snapshot.out_degrees()
    edges = sorted(snapshot.edges)
    if not edges:
        return SparseMatrix.zeros(snapshot.n)
    sources = np.array([u for u, _ in edges], dtype=np.int64)
    targets = np.array([v for _, v in edges], dtype=np.int64)
    weights = 1.0 / np.array([out_degrees[u] for u in sources.tolist()], dtype=np.float64)
    return SparseMatrix.from_coo(snapshot.n, sources, targets, weights)


def hitting_time_matrix(
    snapshot: GraphSnapshot, target: int, damping: float = DEFAULT_DAMPING
) -> SparseMatrix:
    """Compose the discounted-hitting-time system matrix for one target.

    The target row of the row-stochastic transition matrix is masked to the
    identity (its equation is simply ``h(target) = 1``), every other row
    carries ``-d P``, and the identity is added — all on the COO arrays,
    with duplicate positions summed.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    n = snapshot.n
    if not 0 <= target < n:
        raise MeasureError(f"target node {target} out of bounds for n={n}")
    transition = row_stochastic_matrix(snapshot)
    rows, cols, vals = transition.coo()
    keep = rows != target
    return SparseMatrix.from_coo(
        n,
        np.concatenate([rows[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([cols[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([-damping * vals[keep], np.ones(n, dtype=np.float64)]),
    )


def symmetric_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``S`` with ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` over symmetrized edges."""
    degrees: Dict[int, int] = {}
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for u, v in undirected:
            weight = 1.0 / math.sqrt(degrees[u] * degrees[v])
            yield u, v, weight
            yield v, u, weight

    return SparseMatrix.from_triples(snapshot.n, triples())


def laplacian_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the combinatorial Laplacian ``L = D - A`` of the symmetrized graph."""
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    degrees: Dict[int, int] = {}
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for node, degree in degrees.items():
            yield node, node, float(degree)
        for u, v in undirected:
            yield u, v, -1.0
            yield v, u, -1.0

    return SparseMatrix.from_triples(snapshot.n, triples())


def validate_damping(kind: MatrixKind, damping: float) -> None:
    """Check ``damping`` against the *kind's* admissible domain.

    The walk-based kinds compose ``A = I - d·M`` and need ``0 < d < 1``
    for strict diagonal dominance.  ``LAPLACIAN`` composes ``A = I + L``,
    where the damping factor does not enter the matrix at all — its
    conventional value is ``0.0`` (the undamped system,
    ``reuse_loss_bound``'s documented ``‖A⁻¹‖₁ = 1`` case), so the domain
    is ``0 <= d < 1``.  One shared gate keeps every validation site —
    matrix composition, system deltas, :class:`~repro.query.spec.Query`
    construction, server admission — agreeing on these domains.
    """
    if kind is MatrixKind.LAPLACIAN:
        if not 0.0 <= damping < 1.0:
            raise MeasureError(
                f"damping factor for {kind.name} must lie in [0, 1), got {damping}"
            )
    elif not 0.0 < damping < 1.0:
        raise MeasureError(
            f"damping factor must lie in (0, 1), got {damping}"
        )


def measure_matrix(
    snapshot: GraphSnapshot,
    kind: MatrixKind = MatrixKind.RANDOM_WALK,
    damping: float = DEFAULT_DAMPING,
) -> SparseMatrix:
    """Compose the measure matrix ``A`` for a snapshot.

    Parameters
    ----------
    snapshot:
        The graph snapshot.
    kind:
        Which matrix composition to use.
    damping:
        Damping factor ``d`` for the random-walk kinds; must satisfy
        ``0 < d < 1`` so that ``A`` is strictly diagonally dominant
        (``0 <= d < 1`` for ``LAPLACIAN``, which ignores it).
    """
    validate_damping(kind, damping)
    identity = SparseMatrix.identity(snapshot.n)
    if kind is MatrixKind.RANDOM_WALK:
        walk = column_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.SYMMETRIC_WALK:
        walk = symmetric_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind in (MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB):
        walk = salsa_walk_matrix(snapshot, kind)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.LAPLACIAN:
        return identity.add(laplacian_matrix(snapshot))
    raise MeasureError(f"unsupported matrix kind: {kind!r}")


# ---------------------------------------------------------------------- #
# System deltas: the entry change of A = I - d·M induced by a graph delta
# ---------------------------------------------------------------------- #
def _random_walk_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, damping: float, delta: GraphDelta
) -> Entries:
    """Delta of ``I - d W`` (column-normalized): touched columns are replaced.

    ``W[v, u] = 1 / out_degree(u)``, so any change to ``u``'s out-edge set
    rescales *every* stored entry of column ``u`` — the whole column is
    diffed, not just the changed positions.
    """
    sources = set(touched_sources(delta))
    if not sources:
        return {}
    old_succ: Dict[int, Set[int]] = {u: set() for u in sources}
    new_succ: Dict[int, Set[int]] = {u: set() for u in sources}
    for u, v in before.edges:
        if u in sources:
            old_succ[u].add(v)
    for u, v in after.edges:
        if u in sources:
            new_succ[u].add(v)
    entries: Entries = {}
    for u in sources:
        old = old_succ[u]
        new = new_succ[u]
        # Same float expressions as column_normalized_matrix + scale/subtract,
        # so the localized delta matches a full-matrix diff bitwise.
        old_value = -((1.0 / len(old)) * damping) if old else 0.0
        new_value = -((1.0 / len(new)) * damping) if new else 0.0
        for v in old | new:
            change = (new_value if v in new else 0.0) - (old_value if v in old else 0.0)
            if change != 0.0:
                entries[(v, u)] = change
    return entries


def _undirected_edges(snapshot: GraphSnapshot) -> Set[Tuple[int, int]]:
    return {(min(u, v), max(u, v)) for u, v in snapshot.edges}


def _undirected_degrees(undirected: Set[Tuple[int, int]]) -> Dict[int, int]:
    degrees: Dict[int, int] = {}
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    return degrees


def _symmetric_walk_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, damping: float, delta: GraphDelta
) -> Entries:
    """Delta of ``I - d S``: entries incident to degree-touched nodes are rediffed."""
    und_old = _undirected_edges(before)
    und_new = _undirected_edges(after)
    touched = {node for edge in und_old ^ und_new for node in edge}
    if not touched:
        return {}
    deg_old = _undirected_degrees(und_old)
    deg_new = _undirected_degrees(und_new)
    entries: Entries = {}
    for u, v in und_old | und_new:
        if u not in touched and v not in touched:
            continue
        old_value = (
            -((1.0 / math.sqrt(deg_old[u] * deg_old[v])) * damping)
            if (u, v) in und_old else 0.0
        )
        new_value = (
            -((1.0 / math.sqrt(deg_new[u] * deg_new[v])) * damping)
            if (u, v) in und_new else 0.0
        )
        change = new_value - old_value
        if change != 0.0:
            entries[(u, v)] = change
            entries[(v, u)] = change
    return entries


def _laplacian_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, damping: float, delta: GraphDelta
) -> Entries:
    """Delta of ``I + L``: degree diagonal of touched nodes plus ∓1 off-diagonals.

    ``damping`` is accepted for provider-signature uniformity and ignored —
    the Laplacian composition has no damping term.
    """
    und_old = _undirected_edges(before)
    und_new = _undirected_edges(after)
    changed = und_old ^ und_new
    if not changed:
        return {}
    deg_old = _undirected_degrees(und_old)
    deg_new = _undirected_degrees(und_new)
    entries: Entries = {}
    for node in {endpoint for edge in changed for endpoint in edge}:
        change = (1.0 + float(deg_new.get(node, 0))) - (1.0 + float(deg_old.get(node, 0)))
        if change != 0.0:
            entries[(node, node)] = change
    for u, v in changed:
        change = -1.0 if (u, v) in und_new else 1.0
        entries[(u, v)] = change
        entries[(v, u)] = change
    return entries


def _salsa_system_delta(
    before: GraphSnapshot,
    after: GraphSnapshot,
    damping: float,
    delta: GraphDelta,
    kind: MatrixKind,
) -> Entries:
    """Localized delta of the two-hop SALSA system ``A = I - d (F B)`` / ``I - d (B F)``.

    A changed edge ``(u, v)`` rescales column ``u`` of the forward walk ``F``
    (``u``'s out-degree changed) and column ``v`` of the backward walk ``B``
    (``v``'s in-degree changed).  A column ``j`` of the *product* can only
    change when one of its inputs changed: for the authority chain
    ``P = F B``, column ``j`` reads ``B[:, j]`` (support: predecessors of
    ``j``) and ``F[:, k]`` for each predecessor ``k`` — so the affected
    columns are the in-touched nodes plus the successors of the out-touched
    nodes, a two-hop neighbourhood of the delta, not the graph.

    The affected columns are then recomputed through the *same* kernels the
    full composition uses — ``from_triples`` → spgemm → ``scale`` →
    ``subtract`` → ``delta_entries`` — on column-restricted operands.  The
    spgemm kernel accumulates each output entry from contributions ordered
    row-major over its left operand with ``k`` increasing; restricting the
    operands to the contributing columns drops no contribution of a retained
    output column and reorders none, so every recomputed entry is **bitwise
    identical** to the corresponding entry of the fully-composed product,
    and the reported delta equals the full-matrix diff exactly.
    """
    changed = delta.added | delta.removed
    touched_out = {u for u, _ in changed}
    touched_in = {v for _, v in changed}
    all_edges = before.edges | after.edges
    if kind is MatrixKind.SALSA_AUTHORITY:
        # P = F @ B: column j reads B[:, j] and F[:, k] for k in preds(j).
        affected = set(touched_in)
        for u, v in all_edges:
            if u in touched_out:
                affected.add(v)
        middles = {u for u, v in all_edges if v in affected}
    elif kind is MatrixKind.SALSA_HUB:
        # P = B @ F: column j reads F[:, j] and B[:, k] for k in succ(j).
        affected = set(touched_out)
        for u, v in all_edges:
            if v in touched_in:
                affected.add(u)
        middles = {v for u, v in all_edges if u in affected}
    else:
        raise MeasureError(f"not a SALSA matrix kind: {kind!r}")
    if not affected:
        return {}

    def restricted_system(snapshot: GraphSnapshot) -> SparseMatrix:
        # Same float expressions as column_normalized_matrix /
        # backward_normalized_matrix, on the contributing columns only.
        out_degrees = snapshot.out_degrees()
        in_degrees = snapshot.in_degrees()
        if kind is MatrixKind.SALSA_AUTHORITY:
            left = SparseMatrix.from_triples(
                snapshot.n,
                (
                    (v, u, 1.0 / out_degrees[u])
                    for u, v in snapshot.edges
                    if u in middles
                ),
            )
            right = SparseMatrix.from_triples(
                snapshot.n,
                (
                    (u, v, 1.0 / in_degrees[v])
                    for u, v in snapshot.edges
                    if v in affected
                ),
            )
        else:
            left = SparseMatrix.from_triples(
                snapshot.n,
                (
                    (u, v, 1.0 / in_degrees[v])
                    for u, v in snapshot.edges
                    if v in middles
                ),
            )
            right = SparseMatrix.from_triples(
                snapshot.n,
                (
                    (v, u, 1.0 / out_degrees[u])
                    for u, v in snapshot.edges
                    if u in affected
                ),
            )
        identity = SparseMatrix.from_triples(
            snapshot.n, ((j, j, 1.0) for j in affected)
        )
        return identity.subtract(left.multiply(right).scale(damping))

    return restricted_system(before).delta_entries(restricted_system(after))


def _salsa_authority_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, damping: float, delta: GraphDelta
) -> Entries:
    """Localized delta of ``I - d (F B)`` (see :func:`_salsa_system_delta`)."""
    return _salsa_system_delta(
        before, after, damping, delta, MatrixKind.SALSA_AUTHORITY
    )


def _salsa_hub_system_delta(
    before: GraphSnapshot, after: GraphSnapshot, damping: float, delta: GraphDelta
) -> Entries:
    """Localized delta of ``I - d (B F)`` (see :func:`_salsa_system_delta`)."""
    return _salsa_system_delta(before, after, damping, delta, MatrixKind.SALSA_HUB)


def damping_delta(
    snapshot: GraphSnapshot,
    kind: MatrixKind,
    from_damping: float,
    to_damping: float,
) -> Entries:
    """Return the entry delta of changing a system's damping factor only.

    For the walk kinds ``A = I - d·M`` with ``M`` fixed by the snapshot, so::

        A(to) - A(from) = (from - to) · M

    — a delta supported on exactly the stored entries of ``M``, computable
    without composing either full system matrix twice.  This is the
    cross-damping reuse substrate: a cached ``(kind, snapshot, d')`` system
    answering a miss at damping ``d`` is off by this delta, which the same
    :func:`~repro.core.quality.reuse_loss_bound` machinery certifies (its
    max column mass is ``|d' - d|·‖M‖₁ <= |d' - d|``).  The ``LAPLACIAN``
    kind composes ``A = I + L`` with no damping term at all, so its delta is
    empty — cross-damping reuse there is *exact*.
    """
    validate_damping(kind, from_damping)
    validate_damping(kind, to_damping)
    if kind is MatrixKind.LAPLACIAN or from_damping == to_damping:
        return {}
    if kind is MatrixKind.RANDOM_WALK:
        walk = column_normalized_matrix(snapshot)
    elif kind is MatrixKind.SYMMETRIC_WALK:
        walk = symmetric_normalized_matrix(snapshot)
    elif kind in (MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB):
        walk = salsa_walk_matrix(snapshot, kind)
    else:
        raise MeasureError(f"unsupported matrix kind: {kind!r}")
    scale = from_damping - to_damping
    rows, cols, vals = walk.coo()
    entries: Entries = {}
    for row, col, value in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        change = scale * value
        if change != 0.0:
            entries[(row, col)] = change
    return entries


#: Signature of a per-kind system-delta provider: ``(before, after, damping,
#: delta) -> Entries``.  ``delta`` is always the non-empty
#: :class:`~repro.graphs.delta.GraphDelta` between the snapshots (the empty
#: case is short-circuited by :func:`system_delta` before dispatch), and the
#: returned entries must equal the full composed-matrix diff bitwise.
DeltaProvider = Callable[[GraphSnapshot, GraphSnapshot, float, GraphDelta], Entries]

_DELTA_PROVIDERS: Dict[MatrixKind, DeltaProvider] = {}


def register_delta_provider(
    kind: MatrixKind, provider: DeltaProvider
) -> DeltaProvider:
    """Register (or replace) the system-delta provider for one matrix kind.

    The provider contract: called only with two same-``n`` snapshots, a
    validated damping factor and a *non-empty* delta, it returns the sparse
    entry delta ``measure_matrix(after) - measure_matrix(before)`` —
    **bitwise equal** to composing both full matrices and diffing them
    (:meth:`~repro.sparse.csr.SparseMatrix.delta_entries`), since refresh
    provenance replays and the Bennett update path both assume the delta is
    exactly the matrix difference.  Returns ``provider`` so the function is
    usable as a decorator factory argument.
    """
    if not isinstance(kind, MatrixKind):
        raise MeasureError(f"not a MatrixKind: {kind!r}")
    _DELTA_PROVIDERS[kind] = provider
    return provider


def delta_provider(kind: MatrixKind) -> DeltaProvider:
    """Return the registered system-delta provider for ``kind``.

    Raises :class:`~repro.errors.MeasureError` for kinds without a provider
    (the registry replaces the historical closed if/elif dispatch, so an
    unregistered kind is the "unsupported" case).
    """
    provider = _DELTA_PROVIDERS.get(kind)
    if provider is None:
        raise MeasureError(
            f"no system-delta provider registered for matrix kind: {kind!r}"
        )
    return provider


def registered_delta_kinds() -> Tuple[MatrixKind, ...]:
    """The matrix kinds with a registered system-delta provider."""
    return tuple(_DELTA_PROVIDERS)


register_delta_provider(MatrixKind.RANDOM_WALK, _random_walk_system_delta)
register_delta_provider(MatrixKind.SYMMETRIC_WALK, _symmetric_walk_system_delta)
register_delta_provider(MatrixKind.LAPLACIAN, _laplacian_system_delta)
register_delta_provider(MatrixKind.SALSA_AUTHORITY, _salsa_authority_system_delta)
register_delta_provider(MatrixKind.SALSA_HUB, _salsa_hub_system_delta)


def system_delta(
    before: GraphSnapshot,
    after: GraphSnapshot,
    kind: MatrixKind = MatrixKind.RANDOM_WALK,
    damping: float = DEFAULT_DAMPING,
    delta: Optional[GraphDelta] = None,
) -> Entries:
    """Return the sparse entry delta ``measure_matrix(after) - measure_matrix(before)``.

    Dispatches to the per-kind provider registry
    (:func:`register_delta_provider`).  Every built-in provider is
    *localized*: for the locally-normalized kinds (``RANDOM_WALK``,
    ``SYMMETRIC_WALK``, ``LAPLACIAN``) the delta is computed from the
    touched nodes alone, and the two-hop SALSA kinds recompute only the
    product columns reachable from the touched nodes — so the cost scales
    with the graph change rather than the graph, and the result is bitwise
    equal to diffing the two fully-composed matrices.

    Parameters
    ----------
    before, after:
        Two snapshots over the same node universe.
    kind:
        Which system-matrix composition the delta is for.
    damping:
        Damping factor ``d`` of the composition (ignored for ``LAPLACIAN``).
    delta:
        The :class:`~repro.graphs.delta.GraphDelta` between the snapshots,
        when the caller already has it; computed here otherwise.
    """
    if before.n != after.n:
        raise DimensionError(
            f"snapshots have different node counts: {before.n} vs {after.n}"
        )
    validate_damping(kind, damping)
    provider = delta_provider(kind)
    if delta is None:
        delta = GraphDelta.between(before, after)
    if delta.is_empty():
        return {}
    return provider(before, after, damping, delta)
