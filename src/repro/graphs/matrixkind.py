"""Composing measure matrices from graph snapshots.

Every measure in the paper reduces to solving ``A x = b`` where ``A`` depends
only on the graph structure and the chosen measure (Section 1).  This module
holds the matrix "kinds" the library supports:

* :data:`MatrixKind.RANDOM_WALK` — ``A = I - d W`` with ``W`` the
  column-normalized adjacency matrix (footnote 1 of the paper).  Used by
  PageRank, Personalized PageRank, Random Walk with Restart and Discounted
  Hitting Time.
* :data:`MatrixKind.SYMMETRIC_WALK` — ``A = I - d S`` with
  ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` for undirected edges.  ``A`` is
  symmetric and strictly diagonally dominant, which is what the LUDEM-QC
  experiments (DBLP co-authorship) require.
* :data:`MatrixKind.LAPLACIAN` — ``A = I + L`` where ``L`` is the combinatorial
  Laplacian; an alternative symmetric form exposed for completeness.
* :data:`MatrixKind.SALSA_AUTHORITY` / :data:`MatrixKind.SALSA_HUB` —
  ``A = I - d (F B)`` respectively ``A = I - d (B F)`` where ``F`` is the
  column-normalized forward walk and ``B`` the column-normalized backward
  walk; the damped SALSA alternating-walk systems.

Query-parameterized systems that do not fit the ``(snapshot, kind, damping)``
signature (the discounted-hitting-time matrix, whose target row is masked)
are exposed as standalone builders (:func:`hitting_time_matrix`).
"""

from __future__ import annotations

import enum
import math
from typing import Dict

import numpy as np

from repro.errors import MeasureError
from repro.graphs.snapshot import GraphSnapshot
from repro.sparse.csr import SparseMatrix

#: Default damping factor used across measures (the PageRank convention).
DEFAULT_DAMPING = 0.85


class MatrixKind(enum.Enum):
    """Supported ways to turn a graph snapshot into a measure matrix."""

    RANDOM_WALK = "random_walk"
    SYMMETRIC_WALK = "symmetric_walk"
    LAPLACIAN = "laplacian"
    SALSA_AUTHORITY = "salsa_authority"
    SALSA_HUB = "salsa_hub"


def column_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``W`` with ``W[j, i] = 1 / out_degree(i)`` for every edge ``(i, j)``."""
    out_degrees = snapshot.out_degrees()
    return SparseMatrix.from_triples(
        snapshot.n,
        ((v, u, 1.0 / out_degrees[u]) for u, v in snapshot.edges),
    )


def backward_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the column-normalized *backward* walk matrix.

    Entry ``(u, v)`` is ``1 / in_degree(v)`` for every edge ``(u, v)``: column
    ``v`` spreads unit mass over the predecessors of ``v``, i.e. one step of
    following a link backwards.  Together with
    :func:`column_normalized_matrix` (the forward step) it forms the SALSA
    alternating walk.
    """
    in_degrees = snapshot.in_degrees()
    return SparseMatrix.from_triples(
        snapshot.n,
        ((u, v, 1.0 / in_degrees[v]) for u, v in snapshot.edges),
    )


def salsa_walk_matrix(snapshot: GraphSnapshot, kind: MatrixKind) -> SparseMatrix:
    """Return the combined SALSA transition matrix for one score side.

    The authority chain follows a link backward then forward
    (``forward @ backward`` in column-normalized convention); the hub chain
    is the reverse composition.  The product runs on the CSR spgemm kernel.
    """
    forward = column_normalized_matrix(snapshot)
    backward = backward_normalized_matrix(snapshot)
    if kind is MatrixKind.SALSA_AUTHORITY:
        return forward.multiply(backward)
    if kind is MatrixKind.SALSA_HUB:
        return backward.multiply(forward)
    raise MeasureError(f"not a SALSA matrix kind: {kind!r}")


def row_stochastic_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the row-stochastic transition matrix ``P`` of the snapshot."""
    out_degrees = snapshot.out_degrees()
    edges = sorted(snapshot.edges)
    if not edges:
        return SparseMatrix.zeros(snapshot.n)
    sources = np.array([u for u, _ in edges], dtype=np.int64)
    targets = np.array([v for _, v in edges], dtype=np.int64)
    weights = 1.0 / np.array([out_degrees[u] for u in sources.tolist()], dtype=np.float64)
    return SparseMatrix.from_coo(snapshot.n, sources, targets, weights)


def hitting_time_matrix(
    snapshot: GraphSnapshot, target: int, damping: float = DEFAULT_DAMPING
) -> SparseMatrix:
    """Compose the discounted-hitting-time system matrix for one target.

    The target row of the row-stochastic transition matrix is masked to the
    identity (its equation is simply ``h(target) = 1``), every other row
    carries ``-d P``, and the identity is added — all on the COO arrays,
    with duplicate positions summed.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    n = snapshot.n
    if not 0 <= target < n:
        raise MeasureError(f"target node {target} out of bounds for n={n}")
    transition = row_stochastic_matrix(snapshot)
    rows, cols, vals = transition.coo()
    keep = rows != target
    return SparseMatrix.from_coo(
        n,
        np.concatenate([rows[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([cols[keep], np.arange(n, dtype=np.int64)]),
        np.concatenate([-damping * vals[keep], np.ones(n, dtype=np.float64)]),
    )


def symmetric_normalized_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return ``S`` with ``S[i, j] = 1 / sqrt(deg(i) deg(j))`` over symmetrized edges."""
    degrees: Dict[int, int] = {}
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for u, v in undirected:
            weight = 1.0 / math.sqrt(degrees[u] * degrees[v])
            yield u, v, weight
            yield v, u, weight

    return SparseMatrix.from_triples(snapshot.n, triples())


def laplacian_matrix(snapshot: GraphSnapshot) -> SparseMatrix:
    """Return the combinatorial Laplacian ``L = D - A`` of the symmetrized graph."""
    undirected = set()
    for u, v in snapshot.edges:
        undirected.add((min(u, v), max(u, v)))
    degrees: Dict[int, int] = {}
    for u, v in undirected:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1

    def triples():
        for node, degree in degrees.items():
            yield node, node, float(degree)
        for u, v in undirected:
            yield u, v, -1.0
            yield v, u, -1.0

    return SparseMatrix.from_triples(snapshot.n, triples())


def measure_matrix(
    snapshot: GraphSnapshot,
    kind: MatrixKind = MatrixKind.RANDOM_WALK,
    damping: float = DEFAULT_DAMPING,
) -> SparseMatrix:
    """Compose the measure matrix ``A`` for a snapshot.

    Parameters
    ----------
    snapshot:
        The graph snapshot.
    kind:
        Which matrix composition to use.
    damping:
        Damping factor ``d`` for the random-walk kinds; must satisfy
        ``0 < d < 1`` so that ``A`` is strictly diagonally dominant.
    """
    if kind is not MatrixKind.LAPLACIAN:
        if not 0.0 < damping < 1.0:
            raise MeasureError(f"damping factor must lie in (0, 1), got {damping}")
    identity = SparseMatrix.identity(snapshot.n)
    if kind is MatrixKind.RANDOM_WALK:
        walk = column_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.SYMMETRIC_WALK:
        walk = symmetric_normalized_matrix(snapshot)
        return identity.subtract(walk.scale(damping))
    if kind in (MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB):
        walk = salsa_walk_matrix(snapshot, kind)
        return identity.subtract(walk.scale(damping))
    if kind is MatrixKind.LAPLACIAN:
        return identity.add(laplacian_matrix(snapshot))
    raise MeasureError(f"unsupported matrix kind: {kind!r}")
