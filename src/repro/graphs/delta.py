"""Edge-level differences between consecutive graph snapshots."""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.errors import DimensionError
from repro.graphs.snapshot import Edge, GraphSnapshot


class GraphDelta:
    """The edges added and removed between two snapshots of the same node set."""

    __slots__ = ("_added", "_removed")

    def __init__(self, added: Iterable[Edge] = (), removed: Iterable[Edge] = ()) -> None:
        self._added: FrozenSet[Edge] = frozenset((int(u), int(v)) for u, v in added)
        self._removed: FrozenSet[Edge] = frozenset((int(u), int(v)) for u, v in removed)
        overlap = self._added & self._removed
        if overlap:
            raise DimensionError(
                f"edges cannot be both added and removed: {sorted(overlap)[:3]}"
            )

    @classmethod
    def between(cls, before: GraphSnapshot, after: GraphSnapshot) -> "GraphDelta":
        """Return the delta that transforms ``before`` into ``after``."""
        if before.n != after.n:
            raise DimensionError(
                f"snapshots have different node counts: {before.n} vs {after.n}"
            )
        return cls(
            added=after.edges - before.edges,
            removed=before.edges - after.edges,
        )

    @property
    def added(self) -> FrozenSet[Edge]:
        """Edges present only in the newer snapshot."""
        return self._added

    @property
    def removed(self) -> FrozenSet[Edge]:
        """Edges present only in the older snapshot."""
        return self._removed

    @property
    def size(self) -> int:
        """Total number of edge changes (|added| + |removed|)."""
        return len(self._added) + len(self._removed)

    def is_empty(self) -> bool:
        """Return ``True`` when the two snapshots are identical."""
        return not self._added and not self._removed

    def apply(self, snapshot: GraphSnapshot) -> GraphSnapshot:
        """Return ``snapshot`` with this delta applied."""
        return snapshot.with_edges(added=self._added, removed=self._removed)

    def reversed(self) -> "GraphDelta":
        """Return the delta that undoes this one."""
        return GraphDelta(added=self._removed, removed=self._added)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDelta):
            return NotImplemented
        return self._added == other._added and self._removed == other._removed

    def __repr__(self) -> str:
        return f"GraphDelta(added={len(self._added)}, removed={len(self._removed)})"


def touched_nodes(delta: GraphDelta) -> Tuple[int, ...]:
    """Return the sorted set of node ids involved in any change of ``delta``."""
    nodes = set()
    for u, v in delta.added:
        nodes.add(u)
        nodes.add(v)
    for u, v in delta.removed:
        nodes.add(u)
        nodes.add(v)
    return tuple(sorted(nodes))


def snapshot_edit_similarity(
    before: GraphSnapshot,
    after: GraphSnapshot,
    delta: "GraphDelta | None" = None,
) -> float:
    """Graph-level matrix edit similarity, computed from the delta in O(|Δ|).

    The analogue of the paper's ``mes`` (Definition 6) on the directed edge
    sets themselves::

        mes(G_1, G_2) = 2 |E_1 ∩ E_2| / (|E_1| + |E_2|)

    Given the :class:`GraphDelta` between the snapshots the intersection size
    is ``|E_1| - |removed|``, so the score costs nothing beyond the delta —
    this is the fast scoring path serving-time reuse policies scan candidate
    snapshots with.  Two edgeless snapshots are defined to be identical
    (similarity ``1.0``).

    For the kinds whose system pattern mirrors the edge set (one stored
    position per edge — ``RANDOM_WALK`` transposed, ``SYMMETRIC_WALK`` /
    ``LAPLACIAN`` symmetrized — plus the shared identity diagonal), the
    edge-set score is a *lower bound* on the matrix-pattern ``mes`` of the
    composed systems: adding the ``n`` shared diagonal positions to both
    intersection and union can only raise the ratio, so an α satisfied here
    is satisfied by those matrices too.  The two-hop SALSA compositions do
    **not** inherit that guarantee (one changed edge perturbs product
    entries two steps away); for them the score is a cheap prefilter only,
    and the quality contract rests entirely on the certified loss gate.
    """
    if before.n != after.n:
        raise DimensionError(
            f"snapshots have different node counts: {before.n} vs {after.n}"
        )
    total = before.edge_count + after.edge_count
    if total == 0:
        return 1.0
    if delta is None:
        delta = GraphDelta.between(before, after)
    common = before.edge_count - len(delta.removed)
    return 2.0 * common / total


def touched_sources(delta: GraphDelta) -> Tuple[int, ...]:
    """Return the sorted set of *source* nodes of any changed edge.

    These are the nodes whose out-neighbourhood differs between the two
    snapshots.  Under column normalization a changed out-degree rescales the
    node's whole column, so these are exactly the columns of ``W`` (and of
    ``A = I - d W``) that must be replaced — the localization the
    system-delta layer relies on.
    """
    sources = {u for u, _ in delta.added}
    sources.update(u for u, _ in delta.removed)
    return tuple(sorted(sources))
