"""Persistence for evolving graph sequences.

The on-disk format is deliberately simple and line-oriented so that datasets
can be inspected with standard text tools:

* a header line ``# egs n=<nodes> T=<snapshots> directed=<0|1>``
* for each snapshot, a line ``# snapshot <index> edges=<count>`` followed by
  one ``<source> <target>`` pair per line.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.errors import DatasetError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.snapshot import GraphSnapshot

PathLike = Union[str, Path]


def save_egs(egs: EvolvingGraphSequence, path: PathLike) -> None:
    """Write an EGS to ``path`` in the line-oriented text format."""
    destination = Path(path)
    directed = 1 if egs[0].directed else 0
    lines: List[str] = [f"# egs n={egs.n} T={len(egs)} directed={directed}"]
    for index, snapshot in enumerate(egs):
        edges = sorted(snapshot.edges)
        lines.append(f"# snapshot {index} edges={len(edges)}")
        lines.extend(f"{u} {v}" for u, v in edges)
    destination.write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_egs(path: PathLike) -> EvolvingGraphSequence:
    """Read an EGS previously written by :func:`save_egs`."""
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"EGS file not found: {source}")
    lines = source.read_text(encoding="utf-8").splitlines()
    if not lines or not lines[0].startswith("# egs "):
        raise DatasetError(f"not an EGS file (missing header): {source}")
    header = _parse_header(lines[0])
    n = header["n"]
    directed = bool(header["directed"])

    snapshots: List[GraphSnapshot] = []
    current_edges: List[Tuple[int, int]] = []
    in_snapshot = False
    for line in lines[1:]:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("# snapshot"):
            if in_snapshot:
                snapshots.append(GraphSnapshot(n, current_edges, directed=directed))
            current_edges = []
            in_snapshot = True
            continue
        if stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 2:
            raise DatasetError(f"malformed edge line in {source}: {stripped!r}")
        current_edges.append((int(parts[0]), int(parts[1])))
    if in_snapshot:
        snapshots.append(GraphSnapshot(n, current_edges, directed=directed))
    if len(snapshots) != header["T"]:
        raise DatasetError(
            f"snapshot count mismatch in {source}: header says {header['T']}, "
            f"file contains {len(snapshots)}"
        )
    return EvolvingGraphSequence(snapshots)


def _parse_header(line: str) -> dict:
    """Parse the ``# egs`` header line into its integer fields."""
    fields = {}
    for token in line.replace("# egs", "").split():
        if "=" not in token:
            raise DatasetError(f"malformed EGS header token: {token!r}")
        key, value = token.split("=", 1)
        fields[key] = int(value)
    for required in ("n", "T", "directed"):
        if required not in fields:
            raise DatasetError(f"EGS header missing field {required!r}")
    return fields
