"""Graph snapshots.

A :class:`GraphSnapshot` is one element of an evolving graph sequence: a set
of directed edges (undirected graphs store each edge in both directions) over
a fixed universe of ``n`` nodes.  Snapshots are immutable; evolution between
snapshots is expressed with :class:`~repro.graphs.delta.GraphDelta`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import DimensionError

Edge = Tuple[int, int]


class GraphSnapshot:
    """An immutable directed graph over nodes ``0 … n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(source, target)`` pairs.  Self-loops and duplicate
        edges are dropped.
    directed:
        When ``False``, each edge is mirrored so the edge set is symmetric.
    """

    __slots__ = ("_n", "_edges", "_directed")

    def __init__(self, n: int, edges: Iterable[Edge] = (), directed: bool = True) -> None:
        if n < 0:
            raise DimensionError(f"number of nodes must be non-negative, got {n}")
        self._n = n
        self._directed = directed
        collected: Set[Edge] = set()
        for u, v in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise DimensionError(f"edge ({u}, {v}) out of bounds for n={n}")
            if u == v:
                continue
            collected.add((u, v))
            if not directed:
                collected.add((v, u))
        self._edges: FrozenSet[Edge] = frozenset(collected)

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def directed(self) -> bool:
        """Whether the snapshot was built as a directed graph."""
        return self._directed

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The stored (directed) edge set."""
        return self._edges

    @property
    def edge_count(self) -> int:
        """Number of stored directed edges."""
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._edges

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSnapshot):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return f"GraphSnapshot(n={self._n}, edges={len(self._edges)}, {kind})"

    # ------------------------------------------------------------------ #
    # Degree / adjacency structure
    # ------------------------------------------------------------------ #
    def out_degree(self, node: int) -> int:
        """Return the number of outgoing edges of ``node``."""
        self._check_node(node)
        return sum(1 for u, _ in self._edges if u == node)

    def in_degree(self, node: int) -> int:
        """Return the number of incoming edges of ``node``."""
        self._check_node(node)
        return sum(1 for _, v in self._edges if v == node)

    def out_degrees(self) -> List[int]:
        """Return the out-degree of every node."""
        degrees = [0] * self._n
        for u, _ in self._edges:
            degrees[u] += 1
        return degrees

    def in_degrees(self) -> List[int]:
        """Return the in-degree of every node."""
        degrees = [0] * self._n
        for _, v in self._edges:
            degrees[v] += 1
        return degrees

    def successors(self, node: int) -> Set[int]:
        """Return the set of nodes this node points to."""
        self._check_node(node)
        return {v for u, v in self._edges if u == node}

    def predecessors(self, node: int) -> Set[int]:
        """Return the set of nodes pointing to this node."""
        self._check_node(node)
        return {u for u, v in self._edges if v == node}

    def adjacency(self) -> Dict[int, Set[int]]:
        """Return the full successor map ``{node: set of successors}``."""
        result: Dict[int, Set[int]] = {u: set() for u in range(self._n)}
        for u, v in self._edges:
            result[u].add(v)
        return result

    def average_degree(self) -> float:
        """Return the average out-degree."""
        if self._n == 0:
            return 0.0
        return len(self._edges) / self._n

    # ------------------------------------------------------------------ #
    # Derivation helpers
    # ------------------------------------------------------------------ #
    def with_edges(self, added: Iterable[Edge] = (), removed: Iterable[Edge] = ()) -> "GraphSnapshot":
        """Return a new snapshot with ``added`` inserted and ``removed`` deleted.

        When the snapshot is undirected both orientations of each edge are
        affected.
        """
        edges = set(self._edges)
        for u, v in removed:
            edges.discard((int(u), int(v)))
            if not self._directed:
                edges.discard((int(v), int(u)))
        for u, v in added:
            u = int(u)
            v = int(v)
            if u == v:
                continue
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise DimensionError(f"edge ({u}, {v}) out of bounds for n={self._n}")
            edges.add((u, v))
            if not self._directed:
                edges.add((v, u))
        return GraphSnapshot(self._n, edges, directed=self._directed)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise DimensionError(f"node {node} out of bounds for n={self._n}")
