"""Evolving graph sequences (EGS).

An EGS (paper Section 1, following Ren et al. VLDB 2011) is a sequence of
graph snapshots over a fixed node universe, each capturing the state of the
modelled world at one instant.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.errors import DimensionError, EmptySequenceError
from repro.graphs.delta import GraphDelta
from repro.graphs.snapshot import GraphSnapshot


class EvolvingGraphSequence:
    """An ordered sequence of :class:`~repro.graphs.snapshot.GraphSnapshot`.

    All snapshots must share the same node count.
    """

    __slots__ = ("_snapshots",)

    def __init__(self, snapshots: Iterable[GraphSnapshot]) -> None:
        snapshot_list: List[GraphSnapshot] = list(snapshots)
        if not snapshot_list:
            raise EmptySequenceError("an evolving graph sequence needs at least one snapshot")
        n = snapshot_list[0].n
        for index, snapshot in enumerate(snapshot_list):
            if snapshot.n != n:
                raise DimensionError(
                    f"snapshot {index} has {snapshot.n} nodes, expected {n}"
                )
        self._snapshots = snapshot_list

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes shared by every snapshot."""
        return self._snapshots[0].n

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[GraphSnapshot]:
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> GraphSnapshot:
        return self._snapshots[index]

    @property
    def snapshots(self) -> Sequence[GraphSnapshot]:
        """The underlying snapshot list (read-only view by convention)."""
        return list(self._snapshots)

    def __repr__(self) -> str:
        return f"EvolvingGraphSequence(n={self.n}, length={len(self)})"

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def deltas(self) -> List[GraphDelta]:
        """Return the edge deltas between consecutive snapshots (length ``T-1``)."""
        return [
            GraphDelta.between(before, after)
            for before, after in zip(self._snapshots, self._snapshots[1:])
        ]

    def edge_counts(self) -> List[int]:
        """Return the number of edges in each snapshot."""
        return [snapshot.edge_count for snapshot in self._snapshots]

    def average_successive_similarity(self) -> float:
        """Return the mean Jaccard-style edge overlap between consecutive snapshots.

        This is the statistic the paper reports for its datasets ("successive
        snapshots share more than 99% of their edges").  It is computed with
        the same normalization as the matrix edit similarity applied to the
        raw edge sets.
        """
        if len(self._snapshots) < 2:
            return 1.0
        total = 0.0
        for before, after in zip(self._snapshots, self._snapshots[1:]):
            denominator = before.edge_count + after.edge_count
            if denominator == 0:
                total += 1.0
            else:
                total += 2.0 * len(before.edges & after.edges) / denominator
        return total / (len(self._snapshots) - 1)

    def subsequence(self, start: int, stop: int) -> "EvolvingGraphSequence":
        """Return the EGS restricted to snapshots ``start … stop-1``."""
        selected = self._snapshots[start:stop]
        if not selected:
            raise EmptySequenceError("subsequence selects no snapshots")
        return EvolvingGraphSequence(selected)

    @classmethod
    def from_initial_and_deltas(
        cls, initial: GraphSnapshot, deltas: Iterable[GraphDelta]
    ) -> "EvolvingGraphSequence":
        """Reconstruct an EGS from its first snapshot and successive deltas."""
        snapshots = [initial]
        current = initial
        for delta in deltas:
            current = delta.apply(current)
            snapshots.append(current)
        return cls(snapshots)
