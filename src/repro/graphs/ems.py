"""Evolving matrix sequences (EMS).

An EMS ``M = {A_1, …, A_T}`` is derived from an evolving graph sequence by
composing, for every snapshot, the measure matrix ``A_i`` (paper Section 1).
The EMS is the input of the LUDEM problem.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import DimensionError, EmptySequenceError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.matrixkind import DEFAULT_DAMPING, MatrixKind, measure_matrix
from repro.sparse.csr import SparseMatrix
from repro.sparse.pattern import SparsityPattern, matrix_edit_similarity
from repro.sparse.types import Entries


class EvolvingMatrixSequence:
    """An ordered sequence of equally-sized sparse matrices."""

    __slots__ = ("_matrices",)

    def __init__(self, matrices: Iterable[SparseMatrix]) -> None:
        matrix_list: List[SparseMatrix] = list(matrices)
        if not matrix_list:
            raise EmptySequenceError("an evolving matrix sequence needs at least one matrix")
        n = matrix_list[0].n
        for index, matrix in enumerate(matrix_list):
            if matrix.n != n:
                raise DimensionError(f"matrix {index} has dimension {matrix.n}, expected {n}")
        self._matrices = matrix_list

    # ------------------------------------------------------------------ #
    # Construction from graphs
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graphs(
        cls,
        egs: EvolvingGraphSequence,
        kind: MatrixKind = MatrixKind.RANDOM_WALK,
        damping: float = DEFAULT_DAMPING,
    ) -> "EvolvingMatrixSequence":
        """Compose the measure matrix of every snapshot of an EGS."""
        return cls(measure_matrix(snapshot, kind=kind, damping=damping) for snapshot in egs)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Dimension shared by every matrix."""
        return self._matrices[0].n

    def __len__(self) -> int:
        return len(self._matrices)

    def __iter__(self) -> Iterator[SparseMatrix]:
        return iter(self._matrices)

    def __getitem__(self, index: int) -> SparseMatrix:
        return self._matrices[index]

    @property
    def matrices(self) -> Sequence[SparseMatrix]:
        """The underlying matrix list (copy)."""
        return list(self._matrices)

    def __repr__(self) -> str:
        return f"EvolvingMatrixSequence(n={self.n}, length={len(self)})"

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def patterns(self) -> List[SparsityPattern]:
        """Return the sparsity pattern of every matrix."""
        return [matrix.pattern() for matrix in self._matrices]

    def deltas(self, tolerance: float = 0.0) -> List[Entries]:
        """Return the sparse updates ``ΔA_i = A_{i+1} - A_i`` (length ``T-1``)."""
        return [
            before.delta_entries(after, tolerance=tolerance)
            for before, after in zip(self._matrices, self._matrices[1:])
        ]

    def average_successive_similarity(self) -> float:
        """Return the mean matrix edit similarity between consecutive matrices."""
        if len(self._matrices) < 2:
            return 1.0
        total = 0.0
        for before, after in zip(self._matrices, self._matrices[1:]):
            total += matrix_edit_similarity(before.pattern(), after.pattern())
        return total / (len(self._matrices) - 1)

    def is_symmetric(self, tolerance: float = 1e-12) -> bool:
        """Return ``True`` when every matrix in the sequence is symmetric."""
        return all(matrix.is_symmetric(tolerance) for matrix in self._matrices)

    def subsequence(self, start: int, stop: int) -> "EvolvingMatrixSequence":
        """Return the EMS restricted to matrices ``start … stop-1``."""
        selected = self._matrices[start:stop]
        if not selected:
            raise EmptySequenceError("subsequence selects no matrices")
        return EvolvingMatrixSequence(selected)

    def subsample(self, step: int) -> "EvolvingMatrixSequence":
        """Return every ``step``-th matrix (useful for scaled-down experiments)."""
        if step <= 0:
            raise DimensionError(f"step must be positive, got {step}")
        return EvolvingMatrixSequence(self._matrices[::step])


def ems_from_graphs(
    egs: EvolvingGraphSequence,
    kind: MatrixKind = MatrixKind.RANDOM_WALK,
    damping: float = DEFAULT_DAMPING,
    limit: Optional[int] = None,
) -> EvolvingMatrixSequence:
    """Convenience wrapper combining truncation and matrix composition."""
    if limit is not None:
        egs = egs.subsequence(0, limit)
    return EvolvingMatrixSequence.from_graphs(egs, kind=kind, damping=damping)
