"""Synthetic evolving-graph generators.

The paper's synthetic experiments (Section 6, "Synthetic") build an EGS as
follows: generate a scale-free *base graph* with the Barabási–Albert model,
collect its edges into an *edge pool* ``EP``, draw the first snapshot's edges
from the pool, and then evolve each snapshot by removing ``ΔE⁻`` random edges
and adding ``ΔE⁺`` random pool edges, with ``k = ΔE⁺ / ΔE⁻`` and
``ΔE = ΔE⁺ + ΔE⁻``.  :class:`SyntheticEGSConfig` exposes exactly those
parameters (with laptop-scale defaults; the paper's defaults are recorded in
:data:`PAPER_DEFAULTS`).

Every generator in this module is deterministic given its seed: the
top-level entry points (:func:`generate_synthetic_egs`, :func:`growing_egs`)
take an explicit seed, and the building blocks
(:func:`barabasi_albert_edges`, :func:`generate_edge_pool`) require either a
caller-supplied :class:`numpy.random.Generator` or an explicit ``seed`` —
there is no fallback to global/unseeded randomness anywhere, which the
determinism regression tests pin.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.snapshot import Edge, GraphSnapshot

#: The parameter defaults reported in the paper (Section 6, "Synthetic").
PAPER_DEFAULTS = {
    "nodes": 50_000,
    "edge_pool_size": 450_000,
    "average_degree": 5,
    "add_remove_ratio": 4,
    "delta_edges": 500,
    "snapshots": 500,
}


@dataclasses.dataclass(frozen=True)
class SyntheticEGSConfig:
    """Parameters of the synthetic EGS generator.

    Attributes
    ----------
    nodes:
        Number of vertices ``V``.
    edge_pool_size:
        Number of edges in the edge pool ``|EP|``.
    average_degree:
        Average vertex degree ``d`` of the first snapshot; the first snapshot
        contains ``d * V`` edges drawn from the pool.
    add_remove_ratio:
        The ratio ``k = ΔE⁺ / ΔE⁻``.
    delta_edges:
        Total number of edge changes per transition ``ΔE = ΔE⁺ + ΔE⁻``.
    snapshots:
        Number of snapshots ``T``.
    directed:
        Whether generated snapshots are directed.
    seed:
        Seed for the pseudo-random generator (generation is deterministic
        given the seed).
    """

    nodes: int = 300
    edge_pool_size: int = 2700
    average_degree: int = 5
    add_remove_ratio: int = 4
    delta_edges: int = 40
    snapshots: int = 30
    directed: bool = True
    seed: int = 7

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` on inconsistent parameters."""
        if self.nodes < 2:
            raise DatasetError("need at least two nodes")
        if self.edge_pool_size < self.nodes:
            raise DatasetError("edge pool must contain at least `nodes` edges")
        first_snapshot_edges = self.average_degree * self.nodes
        if first_snapshot_edges > self.edge_pool_size:
            raise DatasetError(
                "average_degree * nodes exceeds the edge pool size; "
                "increase edge_pool_size or lower average_degree"
            )
        if self.add_remove_ratio < 1:
            raise DatasetError("add_remove_ratio (k) must be at least 1")
        if self.delta_edges < 0:
            raise DatasetError("delta_edges must be non-negative")
        if self.snapshots < 1:
            raise DatasetError("need at least one snapshot")


def _resolve_rng(
    rng: Optional[np.random.Generator], seed: Optional[int]
) -> np.random.Generator:
    """Return the generator to use, refusing unseeded (non-reproducible) use."""
    if rng is not None:
        if seed is not None:
            raise DatasetError("pass either rng or seed, not both")
        return rng
    if seed is None:
        raise DatasetError(
            "unseeded generation is not allowed: pass an explicit rng or seed"
        )
    return np.random.default_rng(seed)


def barabasi_albert_edges(
    nodes: int,
    edges_per_node: int,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> List[Edge]:
    """Generate the edge list of a Barabási–Albert preferential-attachment graph.

    Each arriving node attaches to ``edges_per_node`` existing nodes chosen
    with probability proportional to their current degree, yielding the
    scale-free degree distribution the paper assumes for its base graph.
    Edges are oriented from the new node to its chosen targets.  Exactly one
    of ``rng`` / ``seed`` must be supplied.
    """
    rng = _resolve_rng(rng, seed)
    if nodes < 2:
        raise DatasetError("Barabási–Albert generation needs at least two nodes")
    edges_per_node = max(1, min(edges_per_node, nodes - 1))
    # Start from a small seed clique.
    targets = list(range(edges_per_node))
    repeated_nodes: List[int] = []
    edges: List[Edge] = []
    for source in range(edges_per_node, nodes):
        chosen: Set[int] = set()
        while len(chosen) < edges_per_node:
            if repeated_nodes and rng.random() > 0.2:
                candidate = int(repeated_nodes[rng.integers(0, len(repeated_nodes))])
            else:
                candidate = int(rng.integers(0, source))
            if candidate != source:
                chosen.add(candidate)
        for target in chosen:
            edges.append((source, target))
            repeated_nodes.append(source)
            repeated_nodes.append(target)
        targets.append(source)
    return edges


def generate_edge_pool(
    config: SyntheticEGSConfig,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> List[Edge]:
    """Generate the edge pool ``EP`` from a Barabási–Albert base graph.

    The base graph is generated with enough edges per node to reach (at
    least) ``edge_pool_size`` edges; extra random edges between high-degree
    nodes pad any shortfall caused by duplicate removal.  Exactly one of
    ``rng`` / ``seed`` must be supplied.
    """
    rng = _resolve_rng(rng, seed)
    per_node = max(1, config.edge_pool_size // max(1, config.nodes - 1))
    pool: Set[Edge] = set(barabasi_albert_edges(config.nodes, per_node, rng))
    # Pad with additional preferential edges until the pool is large enough.
    attempts = 0
    degree_weighted = [u for edge in pool for u in edge]
    while len(pool) < config.edge_pool_size and attempts < 50 * config.edge_pool_size:
        attempts += 1
        u = int(degree_weighted[rng.integers(0, len(degree_weighted))])
        v = int(rng.integers(0, config.nodes))
        if u != v and (u, v) not in pool:
            pool.add((u, v))
            degree_weighted.append(u)
            degree_weighted.append(v)
    return sorted(pool)


def generate_synthetic_egs(config: Optional[SyntheticEGSConfig] = None) -> EvolvingGraphSequence:
    """Generate a synthetic EGS following the paper's procedure (Section 6).

    1. Build a scale-free base graph and collect its edges into the pool ``EP``.
    2. Draw ``average_degree * nodes`` pool edges as the first snapshot.
    3. For every subsequent snapshot remove ``ΔE⁻ = ΔE / (k + 1)`` random
       current edges and add ``ΔE⁺ = k ΔE / (k + 1)`` random pool edges that
       are not currently present.
    """
    config = config or SyntheticEGSConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)
    pool = generate_edge_pool(config, rng)
    pool_set = set(pool)

    first_count = min(config.average_degree * config.nodes, len(pool))
    first_indices = rng.choice(len(pool), size=first_count, replace=False)
    current: Set[Edge] = {pool[int(index)] for index in first_indices}

    removals_per_step = config.delta_edges // (config.add_remove_ratio + 1)
    additions_per_step = config.delta_edges - removals_per_step

    snapshots = [GraphSnapshot(config.nodes, current, directed=config.directed)]
    for _ in range(config.snapshots - 1):
        current = _evolve_edge_set(
            current, pool_set, additions_per_step, removals_per_step, rng
        )
        snapshots.append(GraphSnapshot(config.nodes, current, directed=config.directed))
    return EvolvingGraphSequence(snapshots)


def _evolve_edge_set(
    current: Set[Edge],
    pool: Set[Edge],
    additions: int,
    removals: int,
    rng: np.random.Generator,
) -> Set[Edge]:
    """Return a new edge set with random removals and pool additions applied."""
    updated = set(current)
    if removals and updated:
        current_list = sorted(updated)
        removal_count = min(removals, len(current_list))
        removal_indices = rng.choice(len(current_list), size=removal_count, replace=False)
        for index in removal_indices:
            updated.discard(current_list[int(index)])
    available = sorted(pool - updated)
    if additions and available:
        addition_count = min(additions, len(available))
        addition_indices = rng.choice(len(available), size=addition_count, replace=False)
        for index in addition_indices:
            updated.add(available[int(index)])
    return updated


def growing_egs(
    nodes: int,
    snapshots: int,
    initial_edges: int,
    edges_per_step: int,
    seed: int = 11,
    directed: bool = True,
) -> EvolvingGraphSequence:
    """Generate an EGS whose edge set only grows (DBLP-style accumulation).

    New edges attach preferentially to already well-connected nodes, giving
    the heavy-tailed degree distribution of co-authorship networks.
    """
    if nodes < 2:
        raise DatasetError("need at least two nodes")
    rng = np.random.default_rng(seed)
    edges: Set[Edge] = set()
    endpoints: List[int] = list(range(nodes))

    def add_random_edges(count: int) -> None:
        attempts = 0
        added = 0
        while added < count and attempts < 60 * count + 100:
            attempts += 1
            u = int(endpoints[rng.integers(0, len(endpoints))])
            v = int(rng.integers(0, nodes))
            if u == v or (u, v) in edges:
                continue
            edges.add((u, v))
            if not directed:
                edges.add((v, u))
            endpoints.append(u)
            endpoints.append(v)
            added += 1

    add_random_edges(initial_edges)
    snapshots_list = [GraphSnapshot(nodes, edges, directed=directed)]
    for _ in range(snapshots - 1):
        add_random_edges(edges_per_step)
        snapshots_list.append(GraphSnapshot(nodes, edges, directed=directed))
    return EvolvingGraphSequence(snapshots_list)
