"""Evolving graphs: snapshots, deltas, sequences and matrix composition."""

from repro.graphs.delta import GraphDelta, touched_nodes, touched_sources
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.ems import EvolvingMatrixSequence, ems_from_graphs
from repro.graphs.generators import (
    SyntheticEGSConfig,
    generate_synthetic_egs,
    growing_egs,
)
from repro.graphs.io import load_egs, save_egs
from repro.graphs.matrixkind import (
    DEFAULT_DAMPING,
    DeltaProvider,
    MatrixKind,
    delta_provider,
    measure_matrix,
    register_delta_provider,
    registered_delta_kinds,
    system_delta,
)
from repro.graphs.snapshot import GraphSnapshot

__all__ = [
    "GraphSnapshot",
    "GraphDelta",
    "EvolvingGraphSequence",
    "EvolvingMatrixSequence",
    "ems_from_graphs",
    "MatrixKind",
    "measure_matrix",
    "system_delta",
    "DeltaProvider",
    "delta_provider",
    "register_delta_provider",
    "registered_delta_kinds",
    "touched_nodes",
    "touched_sources",
    "DEFAULT_DAMPING",
    "SyntheticEGSConfig",
    "generate_synthetic_egs",
    "growing_egs",
    "load_egs",
    "save_egs",
]
