"""Simulated DBLP co-authorship EGS.

The paper's DBLP dataset has 97,931 authors and 1000 daily snapshots in which
the co-authorship edge set only grows (387,960 to 547,164 edges), with 99.86%
successive similarity.  The crucial properties for the experiments are that
the graph is *undirected* (so the measure matrices are symmetric — required
by LUDEM-QC) and that edges accumulate monotonically in small daily batches.
This module generates a stand-in with those properties: authors join small
"papers" (cliques of 2-4 authors) drawn with preferential attachment, a few
papers per day.
"""

from __future__ import annotations

import dataclasses
from typing import List, Set

import numpy as np

from repro.errors import DatasetError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.snapshot import Edge, GraphSnapshot


@dataclasses.dataclass(frozen=True)
class DBLPConfig:
    """Parameters of the simulated DBLP co-authorship EGS.

    Attributes
    ----------
    authors:
        Number of authors (nodes).
    snapshots:
        Number of snapshots ``T``.
    initial_papers:
        Number of papers published before the first snapshot.
    papers_per_day:
        Papers added between consecutive snapshots.
    max_authors_per_paper:
        Papers draw between 2 and this many authors.
    seed:
        PRNG seed.
    """

    authors: int = 260
    snapshots: int = 50
    initial_papers: int = 420
    papers_per_day: int = 3
    max_authors_per_paper: int = 4
    seed: int = 13

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` on inconsistent parameters."""
        if self.authors < 10:
            raise DatasetError("the simulated DBLP EGS needs at least 10 authors")
        if self.snapshots < 2:
            raise DatasetError("need at least two snapshots")
        if self.max_authors_per_paper < 2:
            raise DatasetError("papers need at least two authors to create edges")


def generate_dblp_egs(config: DBLPConfig | None = None) -> EvolvingGraphSequence:
    """Generate the simulated DBLP co-authorship EGS (undirected, growing)."""
    config = config or DBLPConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    edges: Set[Edge] = set()
    # Preferential pool: authors appear once per authored paper, so prolific
    # authors are more likely to co-author again.
    author_pool: List[int] = list(range(config.authors))

    def publish(papers: int) -> None:
        for _ in range(papers):
            size = int(rng.integers(2, config.max_authors_per_paper + 1))
            team: Set[int] = set()
            attempts = 0
            while len(team) < size and attempts < 50:
                attempts += 1
                if rng.random() < 0.65:
                    candidate = int(author_pool[rng.integers(0, len(author_pool))])
                else:
                    candidate = int(rng.integers(0, config.authors))
                team.add(candidate)
            members = sorted(team)
            for position, author in enumerate(members):
                author_pool.append(author)
                for coauthor in members[position + 1:]:
                    edges.add((author, coauthor))
                    edges.add((coauthor, author))

    publish(config.initial_papers)
    snapshots = [GraphSnapshot(config.authors, edges, directed=False)]
    for _ in range(config.snapshots - 1):
        publish(config.papers_per_day)
        snapshots.append(GraphSnapshot(config.authors, edges, directed=False))
    return EvolvingGraphSequence(snapshots)
