"""Simulated patent-citation EGS with company labels (case-study stand-in).

The paper's Section 7 case study uses the NBER patent citation data (about 3
million U.S. patents, 1975-1999) to track how strongly one company's patents
depend on other companies' patents, by summing Personalized PageRank scores
of the other company's patent nodes with the focal company's patents as the
seed set.  That dataset is not available offline, so this module generates a
small labelled citation EGS with the structural features the case study
relies on:

* patents belong to companies; each yearly snapshot adds new patents that
  cite earlier patents (citations never change once granted),
* the focal company's new patents cite one designated "rising" company's
  technology more and more over the years, so — measured by Personalized
  PageRank seeded at the focal company's patents — the rising company's
  proximity rank climbs steadily (the Harris-vs-IBM storyline),
* the remaining companies keep a roughly stationary citation mix, so their
  ranks stay comparatively stable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.snapshot import Edge, GraphSnapshot


@dataclasses.dataclass(frozen=True)
class PatentConfig:
    """Parameters of the simulated patent citation EGS.

    Attributes
    ----------
    companies:
        Number of companies including the focal company (index 0) and the
        rising company (index 1).
    patents_per_company_initial:
        Patents each company holds before the first snapshot.
    patents_per_company_per_year:
        New patents granted to each company every year.
    years:
        Number of yearly snapshots.
    citations_per_patent:
        Citations each new patent makes to earlier patents.
    rising_company_focus:
        Fraction of the focal company's citations directed at the rising
        company's patents in the *final* year (it ramps up linearly from the
        base rate).
    base_cross_citation_rate:
        Baseline probability that a focal-company citation targets the rising
        company.
    seed:
        PRNG seed.
    """

    companies: int = 6
    patents_per_company_initial: int = 6
    patents_per_company_per_year: int = 4
    years: int = 12
    citations_per_patent: int = 4
    rising_company_focus: float = 0.65
    base_cross_citation_rate: float = 0.0
    seed: int = 5

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` on inconsistent parameters."""
        if self.companies < 3:
            raise DatasetError("need at least three companies (focal, rising, other)")
        if self.years < 2:
            raise DatasetError("need at least two yearly snapshots")
        if not 0.0 <= self.base_cross_citation_rate <= 1.0:
            raise DatasetError("base_cross_citation_rate must lie in [0, 1]")
        if not 0.0 <= self.rising_company_focus <= 1.0:
            raise DatasetError("rising_company_focus must lie in [0, 1]")

    @property
    def total_patents(self) -> int:
        """Total number of patent nodes across all years."""
        per_company = (
            self.patents_per_company_initial
            + self.patents_per_company_per_year * (self.years - 1)
        )
        return per_company * self.companies


@dataclasses.dataclass
class PatentDataset:
    """A simulated patent citation EGS plus its company labelling.

    Attributes
    ----------
    egs:
        Yearly citation snapshots (directed edges: citing -> cited).
    company_of:
        Company index of every patent node.
    company_names:
        Human-readable company names (index 0 is the focal company, index 1
        the rising company).
    """

    egs: EvolvingGraphSequence
    company_of: List[int]
    company_names: List[str]

    @property
    def focal_company(self) -> int:
        """Index of the focal company (the paper's IBM analogue)."""
        return 0

    @property
    def rising_company(self) -> int:
        """Index of the company whose proximity to the focal company rises."""
        return 1

    def patents_of(self, company: int) -> List[int]:
        """Return the patent node ids owned by ``company``."""
        return [node for node, owner in enumerate(self.company_of) if owner == company]


_DEFAULT_NAMES = [
    "FOCAL",
    "RISING",
    "ALPHA CORP",
    "BETA LABS",
    "GAMMA SYSTEMS",
    "DELTA WORKS",
    "EPSILON TECH",
    "ZETA INDUSTRIES",
]


def generate_patent_dataset(config: PatentConfig | None = None) -> PatentDataset:
    """Generate the simulated patent citation dataset."""
    config = config or PatentConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    n = config.total_patents
    company_of: List[int] = []
    granted_year: List[int] = []

    # Assign node ids year by year, company by company, so ids are stable.
    node_id = 0
    nodes_by_year: List[List[int]] = []
    for year in range(config.years):
        this_year: List[int] = []
        per_company = (
            config.patents_per_company_initial if year == 0 else config.patents_per_company_per_year
        )
        for company in range(config.companies):
            for _ in range(per_company):
                company_of.append(company)
                granted_year.append(year)
                this_year.append(node_id)
                node_id += 1
        nodes_by_year.append(this_year)

    edges: Set[Edge] = set()
    snapshots: List[GraphSnapshot] = []
    existing_nodes: List[int] = []
    patents_by_company: Dict[int, List[int]] = {c: [] for c in range(config.companies)}

    # Fixed citation affinities of the focal company towards the other
    # companies: higher-index companies are cited progressively less, and the
    # rising company (index 1) starts at the bottom of that scale.  Over the
    # years the rising company's affinity ramps up past everyone else, which
    # is what drives its proximity rank upward (the Harris-vs-IBM storyline).
    static_affinity = {
        company: 1.0 + 0.6 * (config.companies - company)
        for company in range(2, config.companies)
    }
    rising_start = 0.25
    rising_end = (max(static_affinity.values()) if static_affinity else 1.0) * 5.0

    for year in range(config.years):
        progress = year / max(1, config.years - 1)
        ramp = max(0.0, (progress - 0.2) / 0.8)
        rising_affinity = rising_start + (rising_end - rising_start) * ramp
        affinities = dict(static_affinity)
        affinities[1] = rising_affinity

        # Non-focal patents are processed first so that, within the same year,
        # the focal company's patents already have other companies' patents
        # available to cite (otherwise the very first snapshot would contain
        # no focal-to-other citations at all).
        ordered_nodes = [node for node in nodes_by_year[year] if company_of[node] != 0]
        ordered_nodes += [node for node in nodes_by_year[year] if company_of[node] == 0]
        for node in ordered_nodes:
            company = company_of[node]
            for _ in range(config.citations_per_patent):
                target = None
                if company == 0 and affinities:
                    # The focal company cites other companies proportionally to
                    # its current affinity for them.
                    cited_companies = [c for c in affinities if patents_by_company[c]]
                    if cited_companies:
                        weights = np.array([affinities[c] for c in cited_companies])
                        weights = weights / weights.sum()
                        chosen = int(rng.choice(cited_companies, p=weights))
                        pool = patents_by_company[chosen]
                        target = int(pool[rng.integers(0, len(pool))])
                elif company != 0:
                    # Non-focal companies build on their own earlier patents,
                    # so Personalized PageRank mass injected by the focal
                    # company's citations stays with the cited company instead
                    # of leaking across the whole graph.
                    own_pool = patents_by_company[company]
                    if own_pool:
                        target = int(own_pool[rng.integers(0, len(own_pool))])
                if target is None:
                    continue
                if target != node:
                    edges.add((node, target))
            existing_nodes.append(node)
            patents_by_company[company].append(node)
        snapshots.append(GraphSnapshot(n, edges, directed=True))

    names = [_DEFAULT_NAMES[i % len(_DEFAULT_NAMES)] for i in range(config.companies)]
    return PatentDataset(
        egs=EvolvingGraphSequence(snapshots),
        company_of=company_of,
        company_names=names,
    )


def company_groups(dataset: PatentDataset) -> Dict[int, List[int]]:
    """Return ``{company index: list of patent node ids}`` for a dataset."""
    groups: Dict[int, List[int]] = {}
    for node, company in enumerate(dataset.company_of):
        groups.setdefault(company, []).append(node)
    return groups
