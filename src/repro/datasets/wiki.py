"""Simulated Wikipedia hyperlink EGS.

The paper's Wiki dataset is 1000 daily snapshots of 20,000 pages whose
hyperlink count grows from 56,181 to 138,072 (roughly 2.5x) with an average
successive similarity of 99.88%.  That raw data is not available offline, so
this module generates a synthetic stand-in that preserves the properties the
algorithms actually interact with:

* heavy-tailed in/out-degree distribution (preferential attachment),
* strong edge growth across the sequence (so a fixed ordering — INC — becomes
  progressively unfit, as in the paper's Figure 5),
* very high successive-snapshot similarity (small per-step churn),
* occasional "events": a high-PageRank page gaining links to a tracked page,
  and a prominent page suddenly adding many outgoing links — mirroring the
  episodes the paper narrates around snapshots #197 and #247 (Example 1).

The scale defaults are laptop-sized; pass a custom :class:`WikiConfig` to
grow towards the paper's dimensions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Set, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.snapshot import Edge, GraphSnapshot


@dataclasses.dataclass(frozen=True)
class WikiConfig:
    """Parameters of the simulated Wikipedia EGS.

    Attributes
    ----------
    pages:
        Number of pages (nodes).
    snapshots:
        Number of daily snapshots ``T``.
    initial_links:
        Hyperlink count of the first snapshot.
    final_links:
        Approximate hyperlink count of the last snapshot (growth is linear).
    churn_per_day:
        Links removed per day (an equal-sized batch plus the growth quota is
        added, keeping successive similarity high).
    tracked_page:
        A designated page whose PageRank story mimics the paper's Page 152:
        it receives links from two high-degree pages at ``event_gain_day`` and
        its main endorser dilutes its outgoing links at ``event_dilute_day``.
    event_gain_day, event_dilute_day:
        Snapshot indices of the two scripted events (clamped to the sequence).
    seed:
        PRNG seed.
    """

    pages: int = 300
    snapshots: int = 60
    initial_links: int = 1600
    final_links: int = 3600
    churn_per_day: int = 6
    tracked_page: int = 17
    event_gain_day: int = 12
    event_dilute_day: int = 30
    seed: int = 42

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` on inconsistent parameters."""
        if self.pages < 10:
            raise DatasetError("the simulated Wiki EGS needs at least 10 pages")
        if self.snapshots < 2:
            raise DatasetError("need at least two snapshots")
        if self.initial_links < self.pages:
            raise DatasetError("initial_links should be at least the number of pages")
        if self.final_links < self.initial_links:
            raise DatasetError("final_links must be >= initial_links")
        if not 0 <= self.tracked_page < self.pages:
            raise DatasetError("tracked_page out of range")


def _preferential_edges(
    count: int,
    pages: int,
    rng: np.random.Generator,
    existing: Set[Edge],
    endpoint_pool: List[int],
) -> List[Edge]:
    """Draw ``count`` new preferential-attachment edges avoiding ``existing``."""
    created: List[Edge] = []
    attempts = 0
    while len(created) < count and attempts < 80 * count + 200:
        attempts += 1
        if endpoint_pool and rng.random() < 0.7:
            source = int(endpoint_pool[rng.integers(0, len(endpoint_pool))])
        else:
            source = int(rng.integers(0, pages))
        if endpoint_pool and rng.random() < 0.7:
            target = int(endpoint_pool[rng.integers(0, len(endpoint_pool))])
        else:
            target = int(rng.integers(0, pages))
        if source == target:
            continue
        edge = (source, target)
        if edge in existing:
            continue
        existing.add(edge)
        created.append(edge)
        endpoint_pool.append(source)
        endpoint_pool.append(target)
    return created


def generate_wiki_egs(config: WikiConfig | None = None) -> EvolvingGraphSequence:
    """Generate the simulated Wikipedia hyperlink EGS."""
    config = config or WikiConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    edges: Set[Edge] = set()
    endpoint_pool: List[int] = list(range(config.pages))
    _preferential_edges(config.initial_links, config.pages, rng, edges, endpoint_pool)

    growth_per_day = max(
        0, (config.final_links - len(edges)) // max(1, config.snapshots - 1)
    )
    hubs = _top_sources(edges, count=8)
    tracked = config.tracked_page

    snapshots = [GraphSnapshot(config.pages, edges, directed=True)]
    for day in range(1, config.snapshots):
        # Routine churn: drop a few links, add churn + growth quota.
        edges = set(edges)
        if config.churn_per_day and edges:
            candidates = sorted(edges)
            removal_indices = rng.choice(
                len(candidates), size=min(config.churn_per_day, len(candidates)), replace=False
            )
            for index in removal_indices:
                edges.discard(candidates[int(index)])
        _preferential_edges(
            config.churn_per_day + growth_per_day, config.pages, rng, edges, endpoint_pool
        )

        # Scripted event 1: two prominent pages start linking to the tracked page.
        if day == min(config.event_gain_day, config.snapshots - 1):
            for hub in hubs[:2]:
                if hub != tracked:
                    edges.add((hub, tracked))
        # Scripted event 2: the tracked page's main endorser adds many new
        # outgoing links, diluting its contribution.
        if day == min(config.event_dilute_day, config.snapshots - 1):
            endorser = hubs[0] if hubs and hubs[0] != tracked else (hubs[1] if len(hubs) > 1 else 0)
            targets = rng.choice(config.pages, size=min(30, config.pages - 1), replace=False)
            for target in targets:
                target = int(target)
                if target not in (endorser, ):
                    edges.add((endorser, target))
        snapshots.append(GraphSnapshot(config.pages, edges, directed=True))
    return EvolvingGraphSequence(snapshots)


def _top_sources(edges: Set[Edge], count: int) -> List[int]:
    """Return the ``count`` nodes with the highest in-degree (popular pages)."""
    in_degree = {}
    for _, target in edges:
        in_degree[target] = in_degree.get(target, 0) + 1
    ranked = sorted(in_degree, key=lambda node: (-in_degree[node], node))
    return ranked[:count]
