"""Simulated datasets standing in for the paper's Wikipedia, DBLP and patent data."""

from repro.datasets.dblp import DBLPConfig, generate_dblp_egs
from repro.datasets.patent import (
    PatentConfig,
    PatentDataset,
    company_groups,
    generate_patent_dataset,
)
from repro.datasets.registry import (
    DATASET_LOADERS,
    available_datasets,
    load_dblp,
    load_patent,
    load_patent_egs,
    load_synthetic,
    load_wiki,
)
from repro.datasets.wiki import WikiConfig, generate_wiki_egs

__all__ = [
    "WikiConfig",
    "generate_wiki_egs",
    "DBLPConfig",
    "generate_dblp_egs",
    "PatentConfig",
    "PatentDataset",
    "generate_patent_dataset",
    "company_groups",
    "load_wiki",
    "load_dblp",
    "load_synthetic",
    "load_patent",
    "load_patent_egs",
    "available_datasets",
    "DATASET_LOADERS",
]
