"""Dataset registry: the named workloads used by examples and benchmarks.

Each entry produces an :class:`~repro.graphs.egs.EvolvingGraphSequence` (or
the labelled patent dataset) at one of three scales:

* ``"tiny"``  — seconds; used by the test-suite,
* ``"small"`` — the default benchmark scale (tens of seconds end-to-end),
* ``"paper"`` — parameters close to the published dataset sizes; only
  practical with a lot of patience, provided for completeness.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.dblp import DBLPConfig, generate_dblp_egs
from repro.datasets.patent import PatentConfig, PatentDataset, generate_patent_dataset
from repro.datasets.wiki import WikiConfig, generate_wiki_egs
from repro.errors import DatasetError
from repro.graphs.egs import EvolvingGraphSequence
from repro.graphs.generators import SyntheticEGSConfig, generate_synthetic_egs

_WIKI_CONFIGS: Dict[str, WikiConfig] = {
    "tiny": WikiConfig(pages=80, snapshots=12, initial_links=380, final_links=700,
                       churn_per_day=3, tracked_page=7, event_gain_day=4,
                       event_dilute_day=8, seed=42),
    "small": WikiConfig(),
    "paper": WikiConfig(pages=20_000, snapshots=1000, initial_links=56_181,
                        final_links=138_072, churn_per_day=60, tracked_page=152,
                        event_gain_day=197, event_dilute_day=247, seed=42),
}

_DBLP_CONFIGS: Dict[str, DBLPConfig] = {
    "tiny": DBLPConfig(authors=70, snapshots=10, initial_papers=90, papers_per_day=2, seed=13),
    "small": DBLPConfig(),
    "paper": DBLPConfig(authors=97_931, snapshots=1000, initial_papers=130_000,
                        papers_per_day=55, seed=13),
}

_SYNTHETIC_CONFIGS: Dict[str, SyntheticEGSConfig] = {
    "tiny": SyntheticEGSConfig(nodes=80, edge_pool_size=720, average_degree=4,
                               delta_edges=12, snapshots=10, seed=7),
    "small": SyntheticEGSConfig(),
    "paper": SyntheticEGSConfig(nodes=50_000, edge_pool_size=450_000, average_degree=5,
                                delta_edges=500, snapshots=500, seed=7),
}

_PATENT_CONFIGS: Dict[str, PatentConfig] = {
    "tiny": PatentConfig(companies=4, patents_per_company_initial=4,
                         patents_per_company_per_year=3, years=8, seed=5),
    "small": PatentConfig(),
    "paper": PatentConfig(companies=8, patents_per_company_initial=400,
                          patents_per_company_per_year=120, years=21, seed=5),
}

_SCALES = ("tiny", "small", "paper")


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise DatasetError(f"unknown scale {scale!r}; choose one of {_SCALES}")


def load_wiki(scale: str = "small") -> EvolvingGraphSequence:
    """Return the simulated Wikipedia hyperlink EGS at the requested scale."""
    _check_scale(scale)
    return generate_wiki_egs(_WIKI_CONFIGS[scale])


def load_dblp(scale: str = "small") -> EvolvingGraphSequence:
    """Return the simulated DBLP co-authorship EGS at the requested scale."""
    _check_scale(scale)
    return generate_dblp_egs(_DBLP_CONFIGS[scale])


def load_synthetic(scale: str = "small") -> EvolvingGraphSequence:
    """Return the paper's synthetic EGS at the requested scale."""
    _check_scale(scale)
    return generate_synthetic_egs(_SYNTHETIC_CONFIGS[scale])


def load_patent(scale: str = "small") -> PatentDataset:
    """Return the simulated patent citation dataset at the requested scale."""
    _check_scale(scale)
    return generate_patent_dataset(_PATENT_CONFIGS[scale])


def load_patent_egs(scale: str = "small") -> EvolvingGraphSequence:
    """Return the patent citation EGS (labels available via :func:`load_patent`).

    This is the registry view of the patent dataset: anything iterating
    :data:`DATASET_LOADERS` (benchmarks, replay harnesses) gets the plain
    snapshot sequence; callers needing the company labelling use
    :func:`load_patent`, which returns the full
    :class:`~repro.datasets.patent.PatentDataset`.
    """
    return load_patent(scale).egs


#: Loader per advertised dataset, each yielding an EGS.  Invariant (pinned by
#: the test-suite): the keys here and in :func:`available_datasets` are
#: identical, so code iterating the registry never silently skips a dataset.
DATASET_LOADERS: Dict[str, Callable[[str], EvolvingGraphSequence]] = {
    "wiki": load_wiki,
    "dblp": load_dblp,
    "synthetic": load_synthetic,
    "patent": load_patent_egs,
}


def available_datasets() -> Dict[str, str]:
    """Return the dataset names and a one-line description of each."""
    return {
        "wiki": "simulated Wikipedia hyperlink EGS (directed, growing)",
        "dblp": "simulated DBLP co-authorship EGS (undirected/symmetric, growing)",
        "synthetic": "scale-free edge-pool EGS following the paper's generator",
        "patent": "simulated patent citation EGS with company labels (case study)",
    }
