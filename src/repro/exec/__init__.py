"""Execution engine: plan a sequence decomposition, run it serially or in parallel.

The cluster partition the paper's algorithms build is an exact parallelism
boundary; this package turns it into an execution plan of independent work
units and provides two interchangeable executors — :class:`SerialExecutor`
(the default, reproducing historical behaviour) and
:class:`ParallelExecutor` (a process pool), whose outputs are
bitwise-identical by construction and by differential test.
"""

from repro.exec.executors import (
    ExecutionOutcome,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    canonical_sequence_state,
    merge_unit_results,
    reduce_timings,
    resolve_executor,
)
from repro.exec.plan import (
    PLANNABLE_ALGORITHMS,
    ExecutionPlan,
    WorkUnit,
    plan_bf,
    plan_clustered,
    plan_factor_batch,
    plan_inc,
)
from repro.exec.units import UnitResult, execute_unit

__all__ = [
    "PLANNABLE_ALGORITHMS",
    "ExecutionPlan",
    "WorkUnit",
    "plan_bf",
    "plan_inc",
    "plan_clustered",
    "plan_factor_batch",
    "UnitResult",
    "execute_unit",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ExecutionOutcome",
    "canonical_sequence_state",
    "merge_unit_results",
    "reduce_timings",
    "resolve_executor",
]
