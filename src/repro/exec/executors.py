"""Executors: run an execution plan serially or across worker processes.

Two strategies implement the same contract — *given the same plan, produce
the same decompositions in the same canonical order*:

* :class:`SerialExecutor` runs every unit in-process, in plan order.  This is
  the default everywhere and reproduces the historical behaviour (and output)
  of the sequence algorithms exactly.
* :class:`ParallelExecutor` fans units out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Units carry their member
  matrices (immutable CSR arrays) with them, workers return
  :class:`~repro.exec.units.UnitResult` objects, and the merge step reorders
  them by ``unit_id`` before concatenating — so scheduling nondeterminism
  never reaches the output.

Because every worker runs the identical per-unit routine on identical
float64 inputs (pickling is value-exact for both Python floats and NumPy
arrays), the parallel output is bitwise-identical to the serial output; the
differential suite in ``tests/test_parallel_vs_serial.py`` enforces this.

Timing is reduced deterministically: per-unit stopwatch buckets are summed
in ``unit_id`` order, giving the *serial-summed* component times the paper's
breakdown tables use, while the elapsed wall-clock of the whole plan is
reported separately (``ExecutionOutcome.wall_time``) — on a many-core
machine wall-clock shrinks with workers while the summed component times do
not.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.result import MatrixDecomposition, SequenceResult
from repro.errors import MeasureError
from repro.exec.plan import ExecutionPlan, WorkUnit
from repro.exec.units import UnitResult, execute_unit


@dataclasses.dataclass
class ExecutionOutcome:
    """The merged product of running a plan.

    Attributes
    ----------
    decompositions:
        Every unit's decompositions concatenated in canonical sequence order.
    timings:
        Per-bucket times summed over units in ``unit_id`` order (the
        serial-summed component times).
    wall_time:
        Elapsed wall-clock of the whole plan execution, measured by the
        executor.  Equals roughly the sum of unit times for the serial
        executor; shrinks with workers for the parallel one.
    unit_count:
        Number of units executed.
    bytes_shipped:
        Serialized bytes the executor sent across process boundaries to
        dispatch the units (summed over units in ``unit_id`` order).  Zero
        for the serial executor; for the process pool it is the pickled
        unit sizes — member matrices included — which is exactly the
        shipping cost the shared-memory shard layer eliminates.
    """

    decompositions: List[MatrixDecomposition]
    timings: Dict[str, float]
    wall_time: float
    unit_count: int
    bytes_shipped: int = 0


def canonical_sequence_state(result: SequenceResult) -> List[Tuple]:
    """Reduce a sequence result to its exact numeric/structural content.

    Everything except timing: per-decomposition index, cluster id, fill
    size, structural ops, both permutations, and every stored L/U entry with
    its exact float value.  Two results are bitwise-equivalent under the
    serial≡parallel contract iff their canonical states compare equal — this
    is the single definition both the differential test suite and the
    speedup benchmark's validity gate use.
    """
    return [
        (
            decomposition.index,
            decomposition.cluster_id,
            decomposition.fill_size,
            decomposition.structural_ops,
            tuple(decomposition.ordering.row.order),
            tuple(decomposition.ordering.column.order),
            tuple(sorted(decomposition.factors.l_items())),
            tuple(sorted(decomposition.factors.u_items())),
        )
        for decomposition in result.decompositions
    ]


def reduce_timings(per_unit: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Sum timing buckets across units, in the given (unit_id) order.

    The reduction is order-canonical: buckets are accumulated unit by unit,
    and the resulting dictionary's keys are sorted, so the same per-unit
    inputs always reduce to the identical result regardless of which worker
    finished first.
    """
    totals: Dict[str, float] = {}
    for buckets in per_unit:
        for name, seconds in buckets.items():
            totals[name] = totals.get(name, 0.0) + seconds
    return {name: totals[name] for name in sorted(totals)}


def merge_unit_results(
    plan: ExecutionPlan, results: Sequence[UnitResult], wall_time: float
) -> ExecutionOutcome:
    """Reorder unit results by id and concatenate into the canonical output."""
    by_id = {result.unit_id: result for result in results}
    if len(by_id) != len(results):
        raise MeasureError("duplicate unit ids in execution results")
    missing = [unit.unit_id for unit in plan.units if unit.unit_id not in by_id]
    if missing:
        raise MeasureError(f"execution lost units {missing}")
    ordered = [by_id[unit.unit_id] for unit in plan.units]
    decompositions: List[MatrixDecomposition] = []
    for result in ordered:
        decompositions.extend(result.decompositions)
    return ExecutionOutcome(
        decompositions=decompositions,
        timings=reduce_timings([result.timings for result in ordered]),
        wall_time=wall_time,
        unit_count=len(ordered),
        bytes_shipped=sum(result.bytes_shipped for result in ordered),
    )


class Executor:
    """Base class: maps a plan's units to results, then merges canonically."""

    def map_units(self, units: Sequence[WorkUnit]) -> List[UnitResult]:
        """Run every unit and return the results (any order)."""
        raise NotImplementedError

    def execute(self, plan: ExecutionPlan) -> ExecutionOutcome:
        """Run the plan and return the merged, canonically ordered outcome."""
        start = time.perf_counter()
        results = self.map_units(plan.units)
        wall_time = time.perf_counter() - start
        return merge_unit_results(plan, results, wall_time)


class SerialExecutor(Executor):
    """Run units one after another in the calling process (the default)."""

    def map_units(self, units: Sequence[WorkUnit]) -> List[UnitResult]:
        return [execute_unit(unit) for unit in units]

    def __repr__(self) -> str:
        return "SerialExecutor()"


def _execute_unit_blob(blob: bytes) -> UnitResult:
    """Pool entry point: the pre-pickled unit *is* the measured payload."""
    return execute_unit(pickle.loads(blob))


class ParallelExecutor(Executor):
    """Fan units out across a pool of worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes; defaults to the machine's CPU count.
        The pool never spawns more processes than there are units.

    Notes
    -----
    Worker processes receive each unit by pickle (member matrices are
    immutable CSR arrays, so this is a read-only value copy) and return the
    unit's decompositions the same way.  Float64 values round-trip pickling
    exactly, which the bitwise serial≡parallel contract relies on.

    That per-task value copy is the cost this executor silently pays on
    every dispatch: each short-lived task re-ships its member matrices to
    the pool.  The size is surfaced as ``bytes_shipped`` on every
    :class:`UnitResult` (and summed on the
    :class:`ExecutionOutcome`/:class:`~repro.core.result.SequenceResult`),
    so it can be compared against the shared-memory shard path
    (:mod:`repro.shard`), which drives it to zero.  The unit is pickled
    here exactly once — the measured blob is what the pool transports.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise MeasureError(f"need at least one worker, got {workers}")
        self.workers = int(workers)

    def map_units(self, units: Sequence[WorkUnit]) -> List[UnitResult]:
        units = list(units)
        if not units:
            return []
        blobs = [
            pickle.dumps(unit, protocol=pickle.HIGHEST_PROTOCOL) for unit in units
        ]
        pool_size = min(self.workers, len(units))
        with _ProcessPool(max_workers=pool_size) as pool:
            futures = [pool.submit(_execute_unit_blob, blob) for blob in blobs]
            results = [future.result() for future in futures]
        for result, blob in zip(results, blobs):
            result.bytes_shipped = len(blob)
        return results

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers})"


def resolve_executor(executor: Union[Executor, int, None]) -> Executor:
    """Normalize an ``executor=`` argument.

    ``None`` means the default :class:`SerialExecutor`; an integer ``n`` is
    shorthand for ``ParallelExecutor(workers=n)`` (``0`` maps to serial, the
    convention the bench layer's ``workers`` axis uses); an
    :class:`Executor` instance passes through unchanged.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    if isinstance(executor, int):
        if executor <= 0:
            return SerialExecutor()
        return ParallelExecutor(workers=executor)
    raise MeasureError(
        f"executor must be an Executor, an int worker count or None, got {executor!r}"
    )
