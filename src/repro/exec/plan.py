"""Execution plans: slicing a sequence decomposition into independent units.

The cluster structure the paper builds for CINC/CLUDE (Algorithms 3–5) is
also a *parallelism boundary*: members of different clusters share no
ordering, no symbolic pattern and no factor state, so whole clusters can be
decomposed concurrently.  BF is even more parallel (every snapshot is
independent), while INC is a single dependency chain (each snapshot's factors
are Bennett-updated from the previous snapshot's) and therefore forms one
indivisible unit.

An :class:`ExecutionPlan` captures that slicing as a list of
:class:`WorkUnit` objects.  Each unit is self-contained — it carries the
member matrices themselves (immutable CSR arrays, cheap to pickle) rather
than indices into shared state — so an executor can ship it to another
process without any side channel.  Units are numbered in sequence order;
merging unit results back in ``unit_id`` order reproduces the canonical
serial output ordering.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clustering import MatrixCluster
from repro.errors import EmptySequenceError, MeasureError
from repro.sparse.csr import SparseMatrix

#: Algorithms whose plans this module knows how to build.  ``REFRESH`` is the
#: query planner's delta-refresh unit: a Bennett update of cloned factors
#: instead of a from-scratch decomposition.  ``FACTOR`` is the planner's
#: cold-factorization unit: the BF body per matrix, but with failures
#: *reported* on the decomposition instead of raised out of the worker.
PLANNABLE_ALGORITHMS = ("BF", "INC", "CINC", "CLUDE", "REFRESH", "FACTOR")


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One independently executable slice of a sequence decomposition.

    Attributes
    ----------
    unit_id:
        Position of the unit in the plan (also its merge rank).
    algorithm:
        Which per-unit routine to run (``"BF"``, ``"INC"``, ``"CINC"`` or
        ``"CLUDE"``).
    start:
        EMS index of the first member matrix.
    members:
        The member matrices themselves, in sequence order.  These are
        immutable CSR containers, so shipping them to a worker process is a
        plain read-only copy.
    cluster_id:
        Cluster id recorded on every resulting decomposition (`-1` for INC's
        single chain, the snapshot index for BF).
    options:
        Extra keyword options for the per-unit routine (e.g. CLUDE's
        ``share_factors``), stored as a sorted tuple of pairs so the unit
        stays hashable and picklable.
    """

    unit_id: int
    algorithm: str
    start: int
    members: Tuple[SparseMatrix, ...]
    cluster_id: int
    options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.algorithm not in PLANNABLE_ALGORITHMS:
            raise MeasureError(
                f"unknown work-unit algorithm {self.algorithm!r}; "
                f"expected one of {', '.join(PLANNABLE_ALGORITHMS)}"
            )
        if not self.members:
            raise EmptySequenceError("a work unit needs at least one member matrix")
        if self.start < 0:
            raise MeasureError(f"work-unit start must be non-negative, got {self.start}")

    @property
    def size(self) -> int:
        """Number of member matrices."""
        return len(self.members)

    @property
    def stop(self) -> int:
        """One past the EMS index of the last member."""
        return self.start + len(self.members)

    @property
    def option_dict(self) -> Dict[str, object]:
        """The options as a plain keyword dictionary."""
        return dict(self.options)


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """An ordered set of work units that exactly covers a matrix sequence."""

    algorithm: str
    sequence_length: int
    units: Tuple[WorkUnit, ...]

    def __post_init__(self) -> None:
        if not self.units:
            raise EmptySequenceError("an execution plan needs at least one work unit")
        expected_start = 0
        for rank, unit in enumerate(self.units):
            if unit.unit_id != rank:
                raise MeasureError(
                    f"unit ids must be consecutive from 0; unit at rank {rank} "
                    f"has id {unit.unit_id}"
                )
            if unit.start != expected_start:
                raise MeasureError(
                    f"unit {rank} starts at {unit.start}, expected {expected_start}: "
                    "units must tile the sequence contiguously"
                )
            expected_start = unit.stop
        if expected_start != self.sequence_length:
            raise MeasureError(
                f"plan covers {expected_start} matrices but the sequence has "
                f"{self.sequence_length}"
            )

    def __len__(self) -> int:
        return len(self.units)

    @property
    def max_parallelism(self) -> int:
        """Number of units that could run concurrently (the unit count)."""
        return len(self.units)


def _freeze_options(options: Optional[Dict[str, object]]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((options or {}).items()))


def plan_bf(matrices: Sequence[SparseMatrix]) -> ExecutionPlan:
    """Plan BF: one unit per snapshot (fully parallel)."""
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot plan an empty matrix sequence")
    units = tuple(
        WorkUnit(
            unit_id=index,
            algorithm="BF",
            start=index,
            members=(matrix,),
            cluster_id=index,
        )
        for index, matrix in enumerate(matrices)
    )
    return ExecutionPlan(algorithm="BF", sequence_length=len(matrices), units=units)


def plan_factor_batch(
    matrices: Sequence[SparseMatrix],
    labels: Optional[Sequence[Optional[str]]] = None,
) -> ExecutionPlan:
    """Plan a bag of *independent* system factorizations, one unit each.

    This is the query planner's cache-miss fan-out: each distinct system
    matrix of a query batch is Markowitz-ordered and Crout-decomposed by the
    standard BF unit body, so factor groups ride the same executors (and the
    same bitwise serial≡parallel contract) as sequence decompositions.

    Unlike sequence BF units, a failure inside a ``FACTOR`` unit (singular
    system, malformed custom matrix) is **reported** on the resulting
    decomposition (``factors=None`` plus an annotated ``error`` naming the
    unit and its ``label``) rather than raised — raising inside a worker
    aborts every sibling unit of the batch with a bare traceback, turning one
    poisoned query into an undiagnosable batch-wide error.  ``labels``
    optionally attaches a human-readable system description (e.g. the
    :class:`~repro.query.spec.SystemKey` summary) to each unit for exactly
    that report.
    """
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot plan an empty factor batch")
    if labels is None:
        labels = [None] * len(matrices)
    labels = list(labels)
    if len(labels) != len(matrices):
        raise MeasureError(
            f"got {len(labels)} labels for {len(matrices)} factor matrices"
        )
    units = tuple(
        WorkUnit(
            unit_id=index,
            algorithm="FACTOR",
            start=index,
            members=(matrix,),
            cluster_id=index,
            options=_freeze_options({"label": label} if label is not None else None),
        )
        for index, (matrix, label) in enumerate(zip(matrices, labels))
    )
    return ExecutionPlan(
        algorithm="FACTOR", sequence_length=len(matrices), units=units
    )


def plan_refresh_batch(
    jobs: Sequence[Tuple[SparseMatrix, object, object, Dict]],
) -> ExecutionPlan:
    """Plan a bag of independent factor refreshes, one unit each.

    Each job is ``(new_matrix, factors, ordering, delta)``: a cloned factor
    container currently holding the *old* system's LU, the ordering it was
    decomposed under, and the sparse system-matrix delta **already mapped
    into reordered coordinates**.  The unit body Bennett-updates the clone in
    place; a numerical failure (pattern violation, pivot breakdown) is
    reported as ``factors=None`` in the unit's decomposition rather than
    raised, so one failed refresh falls back to a cold factorization without
    aborting its siblings.
    """
    jobs = list(jobs)
    if not jobs:
        raise EmptySequenceError("cannot plan an empty refresh batch")
    units = tuple(
        WorkUnit(
            unit_id=index,
            algorithm="REFRESH",
            start=index,
            members=(matrix,),
            cluster_id=index,
            options=_freeze_options({
                "factors": factors,
                "ordering": ordering,
                "delta": tuple(sorted(delta.items())),
            }),
        )
        for index, (matrix, factors, ordering, delta) in enumerate(jobs)
    )
    return ExecutionPlan(algorithm="REFRESH", sequence_length=len(jobs), units=units)


def plan_inc(matrices: Sequence[SparseMatrix]) -> ExecutionPlan:
    """Plan INC: the whole sequence is one Bennett chain (a single unit)."""
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot plan an empty matrix sequence")
    unit = WorkUnit(
        unit_id=0,
        algorithm="INC",
        start=0,
        members=tuple(matrices),
        cluster_id=-1,
    )
    return ExecutionPlan(algorithm="INC", sequence_length=len(matrices), units=(unit,))


def plan_clustered(
    algorithm: str,
    matrices: Sequence[SparseMatrix],
    clusters: Sequence[MatrixCluster],
    options: Optional[Dict[str, object]] = None,
) -> ExecutionPlan:
    """Plan CINC/CLUDE: one unit per cluster, members sliced out of the sequence."""
    if algorithm not in ("CINC", "CLUDE"):
        raise MeasureError(f"plan_clustered handles CINC/CLUDE, not {algorithm!r}")
    matrices = list(matrices)
    if not matrices:
        raise EmptySequenceError("cannot plan an empty matrix sequence")
    frozen = _freeze_options(options)
    units: List[WorkUnit] = []
    for cluster_id, cluster in enumerate(clusters):
        units.append(
            WorkUnit(
                unit_id=cluster_id,
                algorithm=algorithm,
                start=cluster.start,
                members=tuple(matrices[index] for index in cluster.indices),
                cluster_id=cluster_id,
                options=frozen,
            )
        )
    return ExecutionPlan(
        algorithm=algorithm, sequence_length=len(matrices), units=tuple(units)
    )
