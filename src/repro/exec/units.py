"""The work-unit body executed by every executor (in-process or worker).

:func:`execute_unit` is the single entry point a worker process runs.  It is
deliberately a top-level function of a plain module so that
:class:`concurrent.futures.ProcessPoolExecutor` can pickle a reference to it,
and it dispatches on :attr:`WorkUnit.algorithm` to the exact same per-unit
routines the serial algorithms use — which is what makes the parallel output
bitwise-identical to the serial one: the numerical code path is shared, only
the scheduling differs.

Each invocation times itself into a fresh :class:`Stopwatch`; the executor
layer reduces the per-unit buckets deterministically (in ``unit_id`` order),
so the reported component times are *serial-summed* CPU-style totals, while
the executor reports wall-clock separately.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.result import MatrixDecomposition, Stopwatch
from repro.errors import MeasureError
from repro.exec.plan import WorkUnit


@dataclasses.dataclass
class UnitResult:
    """What one work unit produced: decompositions plus its timing buckets."""

    unit_id: int
    decompositions: List[MatrixDecomposition]
    timings: Dict[str, float]
    #: Serialized bytes the executor shipped to run this unit (0 for the
    #: serial path; the pickled unit size for process-pool dispatch).  Set
    #: by the executor after the unit returns, so old and new transports
    #: are comparable in benchmarks.
    bytes_shipped: int = 0


def execute_unit(unit: WorkUnit) -> UnitResult:
    """Run one work unit and return its decompositions and timing buckets."""
    stopwatch = Stopwatch()
    # Imported lazily: the core algorithm modules import the executor layer
    # for their default executors, so a module-level import here would be a
    # cycle.  The imports are cached in sys.modules after the first call.
    if unit.algorithm == "BF":
        from repro.core.bf import decompose_snapshot_bf

        decompositions = [
            decompose_snapshot_bf(matrix, unit.start + offset, stopwatch)
            for offset, matrix in enumerate(unit.members)
        ]
    elif unit.algorithm == "INC":
        from repro.core.inc import decompose_chain_inc

        decompositions = decompose_chain_inc(
            unit.members, unit.start, stopwatch, cluster_id=unit.cluster_id
        )
    elif unit.algorithm == "CINC":
        from repro.core.cinc import decompose_cluster_cinc

        decompositions = decompose_cluster_cinc(
            unit.members, unit.start, unit.cluster_id, stopwatch, **unit.option_dict
        )
    elif unit.algorithm == "CLUDE":
        from repro.core.clude import decompose_cluster_clude

        decompositions = decompose_cluster_clude(
            unit.members, unit.start, unit.cluster_id, stopwatch, **unit.option_dict
        )
    elif unit.algorithm == "FACTOR":
        decompositions = [_execute_factor(unit, stopwatch)]
    elif unit.algorithm == "REFRESH":
        decompositions = [_execute_refresh(unit, stopwatch)]
    else:  # pragma: no cover - WorkUnit.__post_init__ rejects unknown names
        raise MeasureError(f"unknown work-unit algorithm {unit.algorithm!r}")
    return UnitResult(
        unit_id=unit.unit_id,
        decompositions=decompositions,
        timings=stopwatch.totals(),
    )


def _execute_factor(unit: WorkUnit, stopwatch: Stopwatch) -> MatrixDecomposition:
    """Factorize one planner system, reporting failure instead of raising.

    The numerical body is exactly the BF unit's (Markowitz + Crout), so
    planner cold starts keep the bitwise serial≡parallel contract.  A failure
    — singular system matrix, malformed custom composition — is an *expected*
    per-query outcome in a serving batch, so it is reported as
    ``factors=None`` with an annotated ``error`` naming the ``unit_id`` and
    the unit's ``label`` (the system description the planner attached),
    matching the REFRESH units' report-don't-raise convention: one poisoned
    query must not abort its siblings with an undiagnosable worker traceback.
    """
    from repro.core.bf import decompose_snapshot_bf

    label = unit.option_dict.get("label")
    try:
        return decompose_snapshot_bf(unit.members[0], unit.start, stopwatch)
    except Exception as error:  # noqa: BLE001 - every failure maps to one report
        where = f"factor unit {unit.unit_id}" + (f" [{label}]" if label else "")
        return MatrixDecomposition(
            index=unit.start,
            ordering=None,
            factors=None,
            fill_size=0,
            cluster_id=unit.cluster_id,
            error=f"{where}: {type(error).__name__}: {error}",
        )


def _execute_refresh(unit: WorkUnit, stopwatch: Stopwatch) -> MatrixDecomposition:
    """Bennett-update one refresh unit's cloned factors in place.

    Numerical failures (fill outside a static pattern, pivot breakdown) are
    *expected* outcomes with a defined fallback — cold factorization — so
    they are reported as ``factors=None`` instead of raised; raising inside a
    worker would abort every sibling unit of the batch.
    """
    from repro.errors import PatternError, SingularMatrixError
    from repro.lu.bennett import bennett_update

    options = unit.option_dict
    factors = options["factors"]
    ordering = options["ordering"]
    delta = dict(options["delta"])
    with stopwatch.time("bennett"):
        try:
            bennett_update(factors, delta)
        except (PatternError, SingularMatrixError):
            factors = None
    return MatrixDecomposition(
        index=unit.start,
        ordering=ordering,
        factors=factors,
        fill_size=factors.fill_size if factors is not None else 0,
        cluster_id=unit.cluster_id,
    )
