"""Setuptools shim so that legacy editable installs work in offline environments."""

from setuptools import setup

setup()
