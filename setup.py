"""Setuptools build for the src-layout ``repro`` package.

The previous shim called ``setup()`` with no metadata and no ``package_dir``
mapping, so a built wheel contained *no* packages and installed under the
name ``UNKNOWN`` — ``import repro`` only worked with ``PYTHONPATH=src``.
All metadata lives here (no setup.cfg / pyproject.toml) so the build also
works with ``pip wheel --no-build-isolation`` in offline environments.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    path = os.path.join(os.path.dirname(__file__), "src", "repro", "version.py")
    with open(path, "r", encoding="utf-8") as handle:
        match = re.search(r"^__version__\s*=\s*[\"']([^\"']+)[\"']", handle.read(), re.M)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/version.py")
    return match.group(1)


setup(
    name="repro-clude",
    version=read_version(),
    description=(
        "Reproduction of CLUDE (EDBT 2014): fast LU decomposition of "
        "evolving matrix sequences for dynamic graph measures"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Mathematics",
    ],
)
