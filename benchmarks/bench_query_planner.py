"""Query planner vs. naive per-query solving on a mixed measure workload.

The paper's amortization argument, measured end to end: a heterogeneous
batch of RWR + PPR + PageRank queries over a handful of
``(snapshot, damping)`` systems costs the planner one factorization per
distinct system matrix plus batched substitutions, while the naive baseline
(each query answered through a fresh
:class:`~repro.measures.base.SnapshotMeasureSolver`, exactly what calling
the legacy entry points without a shared solver does) re-factorizes for
every query.  Acceptance floor: >= 2x on the default 64-query workload.

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_query_planner.py
    PYTHONPATH=src python benchmarks/bench_query_planner.py --nodes 120 --queries 64
"""

from __future__ import annotations

import argparse
import time
from typing import List

import numpy as np

from repro.graphs.generators import growing_egs
from repro.measures.pagerank import pagerank_scores
from repro.measures.ppr import ppr_scores
from repro.measures.rwr import rwr_scores
from repro.query import QueryBatch, QueryPlanner

from _shared import host_info_line


def build_workload(nodes: int, queries: int, snapshots: int = 2):
    """Return (batch, thunk list) for a mixed RWR+PPR+PageRank workload.

    Queries cycle measure kind, snapshot and damping, giving
    ``snapshots * 2`` distinct system matrices for the whole batch.
    """
    egs = growing_egs(
        nodes=nodes,
        snapshots=snapshots,
        initial_edges=nodes * 3,
        edges_per_step=nodes // 4,
        seed=42,
    )
    dampings = (0.85, 0.6)
    batch = QueryBatch()
    naive: List = []
    rng = np.random.default_rng(7)
    for position in range(queries):
        snapshot = egs[position % snapshots]
        damping = dampings[(position // snapshots) % len(dampings)]
        kind = position % 3
        if kind == 0:
            start = int(rng.integers(0, nodes))
            batch.add_rwr(snapshot, start, damping=damping)
            naive.append(lambda s=snapshot, u=start, d=damping: rwr_scores(s, u, damping=d))
        elif kind == 1:
            seeds = tuple(int(x) for x in rng.choice(nodes, size=3, replace=False))
            batch.add_ppr(snapshot, seeds, damping=damping)
            naive.append(lambda s=snapshot, q=seeds, d=damping: ppr_scores(s, q, damping=d))
        else:
            batch.add_pagerank(snapshot, damping=damping)
            naive.append(lambda s=snapshot, d=damping: pagerank_scores(s, damping=d))
    return batch, naive


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=200, help="graph size")
    parser.add_argument("--queries", type=int, default=64, help="batch size")
    parser.add_argument("--snapshots", type=int, default=2, help="distinct snapshots")
    parser.add_argument("--reps", type=int, default=3, help="timing repetitions")
    args = parser.parse_args()
    print(host_info_line())

    batch, naive = build_workload(args.nodes, args.queries, args.snapshots)

    naive_times = []
    naive_results = None
    for _ in range(args.reps):
        started = time.perf_counter()
        naive_results = [thunk() for thunk in naive]
        naive_times.append(time.perf_counter() - started)

    planner_times = []
    outcome = None
    for _ in range(args.reps):
        planner = QueryPlanner()  # fresh cache: measure cold factorization too
        started = time.perf_counter()
        outcome = planner.run(batch)
        planner_times.append(time.perf_counter() - started)

    for answer, reference in zip(outcome, naive_results):
        assert answer.tobytes() == reference.tobytes(), "planner != naive answers"

    naive_best = min(naive_times)
    planner_best = min(planner_times)
    speedup = naive_best / planner_best
    stats = outcome.stats
    print(f"mixed workload: {stats.queries} queries "
          f"({args.snapshots} snapshots x 2 dampings, RWR/PPR/PageRank cycle)")
    print(f"distinct system matrices : {stats.groups}")
    print(f"planner factorizations   : {stats.factorizations}")
    print(f"naive factorizations     : {stats.queries}")
    print(f"naive per-query solving  : {naive_best * 1e3:9.2f} ms")
    print(f"planner (cold cache)     : {planner_best * 1e3:9.2f} ms")
    print(f"speedup                  : {speedup:9.2f}x   (floor: 2x)")
    assert stats.factorizations == stats.groups, "planner re-factorized a group"
    if speedup < 2.0:
        raise SystemExit(f"FAIL: speedup {speedup:.2f}x below the 2x floor")
    print("PASS")


if __name__ == "__main__":
    main()
