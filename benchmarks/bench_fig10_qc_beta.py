"""Figure 10: the LUDEM-QC problem — quality and speedup versus β (DBLP).

For symmetric matrices the quality-loss of a candidate ordering can be
checked cheaply, so CINC and CLUDE can enforce ``ql(O_i, A_i) <= β`` through
their β-clustering variants (Algorithms 4 and 5).  The paper's Figure 10
shows both algorithms staying within the requirement, trading quality for
speed as β grows, with CLUDE giving the better quality and higher speedup.
"""

from __future__ import annotations

from _shared import BETAS, beta_sweep, dblp_qc_runner, single_run
from repro.bench.reporting import print_header, series_table


def _sweep():
    return {
        "CINC-QC": beta_sweep("CINC"),
        "CLUDE-QC": beta_sweep("CLUDE"),
        "INC": dblp_qc_runner().evaluate("INC"),
    }


def test_fig10a_quality_vs_beta(benchmark):
    """Figure 10(a): average quality-loss vs β."""
    sweeps = single_run(benchmark, _sweep)
    cinc = [report.average_quality_loss for report in sweeps["CINC-QC"]]
    clude = [report.average_quality_loss for report in sweeps["CLUDE-QC"]]

    print_header("Figure 10(a): average quality-loss vs quality requirement beta (DBLP)")
    print(series_table("beta", BETAS, {"CINC-QC": cinc, "CLUDE-QC": clude}))

    # The constraint must hold everywhere, quality-loss grows with beta
    # (bigger clusters tolerated), and CLUDE's quality is at least as good.
    for beta, cinc_loss, clude_loss in zip(BETAS, cinc, clude):
        assert cinc_loss <= beta + 1e-9
        assert clude_loss <= beta + 1e-9
    assert clude[-1] >= clude[0] - 1e-9
    assert sum(clude) <= sum(cinc) + 1e-9


def test_fig10b_speedup_vs_beta(benchmark):
    """Figure 10(b): speedup over BF vs β."""
    sweeps = single_run(benchmark, _sweep)
    cinc = [report.speedup for report in sweeps["CINC-QC"]]
    clude = [report.speedup for report in sweeps["CLUDE-QC"]]
    inc_speedup = sweeps["INC"].speedup
    clusters_clude = [report.cluster_count for report in sweeps["CLUDE-QC"]]

    print_header("Figure 10(b): speedup over BF vs quality requirement beta (DBLP)")
    print(series_table("beta", BETAS, {"CINC-QC": cinc, "CLUDE-QC": clude}))
    print(f"\nINC speedup (reference): {inc_speedup:.2f}")
    print(f"CLUDE-QC cluster counts across beta: {clusters_clude}")

    # A looser requirement allows bigger clusters: cluster count must not grow
    # with beta, and the loosest setting must not be slower than the tightest.
    assert clusters_clude[-1] <= clusters_clude[0]
    assert clude[-1] >= clude[0] * 0.8
    # CLUDE's decomposition phase is never slower than CINC's at the loosest beta.
    assert clude[-1] >= cinc[-1] * 0.8
