"""QC-aware approximate serving vs exact serving on an evolving chain.

The paper's quality trade applied online: a long-lived planner serves query
batches against a graph that keeps evolving by small edge deltas.  Exact
serving cold-factorizes every new snapshot.  Under a
:class:`~repro.policy.qc.QCPolicy` the planner may instead answer a new
snapshot **outright from a cached similar snapshot's factors** — no
factorization, no refresh — whenever the similarity >= alpha and the
certified loss estimate (:func:`repro.core.quality.reuse_loss_bound`) stays
within the bound; drifting past the gates triggers a fresh cold anchor.

The benchmark drives both planners over the identical snapshot chain and
query batches and verifies the whole quality contract end to end:

* QC serving performs **strictly fewer factorizations** than exact serving;
* every approximate answer carries a reported loss estimate <= the
  configured bound;
* the *actual* relative L1 deviation of every approximate answer from the
  exact answer stays within its reported estimate (the bound is certified,
  not aspirational).

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_qc_serving.py
    PYTHONPATH=src python benchmarks/bench_qc_serving.py --nodes 150 --snapshots 16
"""

from __future__ import annotations

import argparse
import time
from typing import List, Tuple

import numpy as np

from _shared import host_info_line, percentile_of, track_memory
from repro.graphs.snapshot import GraphSnapshot
from repro.policy import QCPolicy
from repro.query import BatchResult, QueryBatch, QueryPlanner

#: Serving-time speedup floor of QC over exact serving (steady state).
SPEEDUP_FLOOR = 1.2


def build_chain(
    nodes: int, snapshots: int, added_per_step: int, removed_per_step: int, seed: int
) -> List[GraphSnapshot]:
    """Return an evolving snapshot chain with small per-step edge deltas."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < nodes * 3:
        u, v = rng.integers(0, nodes, size=2)
        if u != v:
            edges.add((int(u), int(v)))
    current = GraphSnapshot(nodes, edges)
    chain = [current]
    for _ in range(snapshots - 1):
        existing = sorted(current.edges)
        removed = {
            existing[int(rng.integers(0, len(existing)))]
            for _ in range(removed_per_step)
        }
        added = set()
        while len(added) < added_per_step:
            u, v = rng.integers(0, nodes, size=2)
            if u != v and (int(u), int(v)) not in current.edges:
                added.add((int(u), int(v)))
        current = current.with_edges(added=added, removed=removed)
        chain.append(current)
    return chain


def serve(
    chain: List[GraphSnapshot], planner: QueryPlanner
) -> Tuple[List[float], List[BatchResult]]:
    """Answer one batch per snapshot; return per-snapshot times and results."""
    times: List[float] = []
    outcomes: List[BatchResult] = []
    for snapshot in chain:
        batch = (
            QueryBatch()
            .add_pagerank(snapshot)
            .add_rwr(snapshot, 1)
            .add_rwr(snapshot, 2)
        )
        started = time.perf_counter()
        outcomes.append(planner.run(batch))
        times.append(time.perf_counter() - started)
    return times, outcomes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300, help="graph size")
    parser.add_argument("--snapshots", type=int, default=32, help="chain length")
    parser.add_argument("--added", type=int, default=3, help="edges added per step")
    parser.add_argument("--removed", type=int, default=2, help="edges removed per step")
    parser.add_argument("--alpha", type=float, default=0.9,
                        help="similarity floor of the QC policy")
    parser.add_argument("--loss-bound", type=float, default=8.0,
                        help="quality-loss ceiling of the QC policy")
    parser.add_argument("--seed", type=int, default=42, help="chain seed")
    args = parser.parse_args()
    print(host_info_line())

    chain = build_chain(args.nodes, args.snapshots, args.added, args.removed, args.seed)

    with track_memory() as memory:
        exact_planner = QueryPlanner()
        exact_times, exact_outcomes = serve(chain, exact_planner)

        policy = QCPolicy(alpha=args.alpha, loss_bound=args.loss_bound)
        qc_planner = QueryPlanner(policy=policy)
        qc_times, qc_outcomes = serve(chain, qc_planner)

    exact_factorizations = sum(o.stats.factorizations for o in exact_outcomes)
    qc_factorizations = sum(o.stats.factorizations for o in qc_outcomes)
    qc_reuses = sum(o.stats.qc_reuses for o in qc_outcomes)

    # Quality contract: every approximation reports an estimate within the
    # configured bound, and the actual deviation stays within the estimate.
    worst_estimate = 0.0
    worst_actual = 0.0
    for qc_outcome, exact_outcome in zip(qc_outcomes, exact_outcomes):
        for record in qc_outcome.approximations:
            if record.loss_estimate > args.loss_bound:
                raise SystemExit(
                    f"FAIL: reported loss {record.loss_estimate:.3f} exceeds "
                    f"the configured bound {args.loss_bound:.3f}"
                )
            worst_estimate = max(worst_estimate, record.loss_estimate)
            for position in record.positions:
                truth = exact_outcome[position]
                deviation = float(
                    np.sum(np.abs(qc_outcome[position] - truth))
                    / np.sum(np.abs(truth))
                )
                if deviation > record.loss_estimate:
                    raise SystemExit(
                        f"FAIL: actual deviation {deviation:.3e} exceeds the "
                        f"certified estimate {record.loss_estimate:.3e}"
                    )
                worst_actual = max(worst_actual, deviation)

    if qc_factorizations >= exact_factorizations:
        raise SystemExit(
            f"FAIL: QC serving factorized {qc_factorizations}x, exact "
            f"{exact_factorizations}x — no reuse happened"
        )

    # Snapshot 0 is a cold start for both planners; steady state is the rest.
    exact_steady = sum(exact_times[1:])
    qc_steady = sum(qc_times[1:])
    speedup = exact_steady / qc_steady

    print(f"evolving serving workload: {args.snapshots} snapshots x "
          f"(+{args.added}/-{args.removed} edges), n={args.nodes}, "
          f"3 queries per snapshot")
    print(f"QCPolicy(alpha={args.alpha}, loss_bound={args.loss_bound})")
    print(f"exact serving (steady)      : {exact_steady * 1e3:9.2f} ms "
          f"({exact_factorizations} factorizations)")
    print(f"QC serving (steady)         : {qc_steady * 1e3:9.2f} ms "
          f"({qc_factorizations} factorizations, {qc_reuses} QC reuses)")
    print(f"speedup                     : {speedup:9.2f}x   "
          f"(floor: {SPEEDUP_FLOOR}x)")
    # Full per-query loss-estimate distribution across the run, not just the
    # maximum: pooled from every batch's BatchResult.loss_estimates().
    pooled_estimates = [
        estimate
        for outcome in qc_outcomes
        for estimate in outcome.loss_estimates()
    ]
    loss_p50 = percentile_of(pooled_estimates, 0.50)
    loss_p99 = percentile_of(pooled_estimates, 0.99)
    print(f"loss estimates (per query)  : n={len(pooled_estimates)}  "
          f"p50={loss_p50:.4f}  p99={loss_p99:.4f}  max={worst_estimate:.4f}")
    print(f"worst reported loss estimate: {worst_estimate:.4f}   "
          f"(bound {args.loss_bound})")
    print(f"worst actual rel-L1 deviation: {worst_actual:.2e}   "
          f"(within every estimate)")
    print(f"peak RSS                    : {memory.peak_rss_mib:9.1f} MiB   "
          f"(timeline: {memory.timeline_summary()})")
    print(f"QC planner cache_info       : {qc_planner.cache_info()}")
    if speedup < SPEEDUP_FLOOR:
        raise SystemExit(
            f"FAIL: speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )
    print("PASS")


if __name__ == "__main__":
    main()
