"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling `_shared` module importable regardless of how pytest was
# invoked (rootdir vs. benchmarks directory).
sys.path.insert(0, str(Path(__file__).resolve().parent))
