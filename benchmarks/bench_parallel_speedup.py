"""Speedup-vs-workers of the cluster-parallel execution engine.

Runs the speedup-vs-cores scenario on the T = 64 benchmark workload
(:func:`repro.bench.workloads.parallel_speedup_workload`): each algorithm is
decomposed once with the in-process serial executor and once per worker
count with the process-pool :class:`~repro.exec.ParallelExecutor`, and the
measured wall-clock times are reported side by side.  Every parallel run is
verified bitwise-identical to the serial run before its timing is accepted —
a wrong-but-fast engine scores zero.

The parallelism exposed is structural: BF ships T independent snapshot
units, CLUDE/CINC one unit per cluster, INC a single chain (included as the
no-parallelism control).  Achieved speedup is therefore bounded by
min(workers, units, physical cores); the results file records the machine's
core count because a single-core container can verify the bitwise contract
but cannot exhibit wall-clock speedup.

Runs standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py \
        [--snapshots 64] [--workers 1 2 4] [--output results/parallel_speedup.md]
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, List, Tuple

from repro.bench.workloads import parallel_speedup_workload
from repro.core.bf import decompose_sequence_bf
from repro.core.cinc import decompose_sequence_cinc
from repro.core.clude import decompose_sequence_clude
from repro.core.inc import decompose_sequence_inc
from repro.exec import ParallelExecutor, canonical_sequence_state

from _shared import host_info_line

ALPHA = 0.95

ALGORITHMS = {
    "BF": lambda matrices, executor: decompose_sequence_bf(matrices, executor=executor),
    "INC": lambda matrices, executor: decompose_sequence_inc(matrices, executor=executor),
    "CINC": lambda matrices, executor: decompose_sequence_cinc(
        matrices, alpha=ALPHA, executor=executor
    ),
    "CLUDE": lambda matrices, executor: decompose_sequence_clude(
        matrices, alpha=ALPHA, executor=executor
    ),
}


def run(snapshots: int, worker_counts: List[int]) -> Tuple[List[str], List[List[str]]]:
    workload = parallel_speedup_workload(snapshots=snapshots)
    matrices = workload.matrices
    header = [
        "algorithm",
        "units",
        "serial wall (s)",
        *[f"{w}w wall (s)" for w in worker_counts],
        *[f"{w}w speedup" for w in worker_counts],
        "bitwise",
    ]
    rows: List[List[str]] = []
    for name, runner in ALGORITHMS.items():
        serial = runner(matrices, None)
        reference = canonical_sequence_state(serial)
        units = serial.cluster_count
        walls: Dict[int, float] = {}
        identical = True
        for workers in worker_counts:
            parallel = runner(matrices, ParallelExecutor(workers=workers))
            walls[workers] = parallel.wall_time
            identical = identical and canonical_sequence_state(parallel) == reference
        rows.append(
            [
                name,
                str(units),
                f"{serial.wall_time:.3f}",
                *[f"{walls[w]:.3f}" for w in worker_counts],
                *[f"{serial.wall_time / walls[w]:.2f}x" for w in worker_counts],
                "yes" if identical else "NO — INVALID RUN",
            ]
        )
        print(f"  {name}: serial {serial.wall_time:.3f}s, "
              + ", ".join(f"{w}w {walls[w]:.3f}s" for w in worker_counts)
              + f", bitwise={'ok' if identical else 'FAILED'}")
    return header, rows


def format_markdown(header: List[str], rows: List[List[str]], snapshots: int) -> str:
    lines = [
        "# Parallel execution engine: speedup vs. workers",
        "",
        f"- date: {time.strftime('%Y-%m-%d')}",
        host_info_line(),
        f"- workload: `parallel_speedup_workload(snapshots={snapshots})` "
        f"(synthetic RWR matrices, n=150, T={snapshots})",
        "- wall times from `SequenceResult.wall_time`; every parallel run verified "
        "bitwise-identical to serial before timing was accepted",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    lines += [
        "",
        "Speedup is bounded by min(workers, work units, physical cores): BF exposes "
        "T units, CINC/CLUDE one per cluster, INC a single chain (control). On a "
        "single-core machine the engine verifies the bitwise contract but parallel "
        "wall-clock includes pure process-pool overhead; re-run on a multi-core host "
        "to reproduce the speedup-vs-cores curve.",
        "",
    ]
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshots", type=int, default=64)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--output", type=str, default=None,
                        help="optional markdown file to record the results in")
    args = parser.parse_args()

    print(host_info_line())
    print(f"parallel speedup benchmark: T={args.snapshots}, "
          f"workers={args.workers}, cores={os.cpu_count()}")
    header, rows = run(args.snapshots, list(args.workers))
    markdown = format_markdown(header, rows, args.snapshots)
    print()
    print(markdown)
    if args.output:
        output_path = os.path.join(os.path.dirname(os.path.abspath(__file__)), args.output) \
            if not os.path.isabs(args.output) else args.output
        os.makedirs(os.path.dirname(output_path), exist_ok=True)
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"recorded: {output_path}")


if __name__ == "__main__":
    main()
