"""Figure 5: INC's quality-loss versus matrix index (Wiki and DBLP).

The paper shows that when the Markowitz ordering of the *first* matrix is
reused for the whole sequence (INC), its quality-loss grows steadily as the
matrices drift away from ``A_1``.  This benchmark reproduces both panels:
the per-index quality-loss series of INC on the Wiki and DBLP workloads.
"""

from __future__ import annotations

import numpy as np

from _shared import dblp_runner, single_run, wiki_runner
from repro.bench.reporting import print_header, series_table
from repro.core.inc import decompose_sequence_inc


def _inc_quality_series(runner):
    matrices = runner.workload.matrices
    result = decompose_sequence_inc(matrices)
    return result.quality_losses(matrices, runner.reference)


def test_fig05a_wiki_inc_quality_loss(benchmark):
    """Figure 5(a): INC quality-loss vs matrix index on the Wiki workload."""
    losses = single_run(benchmark, _inc_quality_series, wiki_runner())

    print_header("Figure 5(a): INC quality-loss vs matrix index (Wiki)")
    print(series_table("matrix_index", list(range(len(losses))), {"quality_loss": losses}))
    print(f"\naverage quality-loss = {np.mean(losses):.4f}, final = {losses[-1]:.4f}")

    # The defining shape: quality degrades along the sequence.
    first_half = np.mean(losses[: len(losses) // 2])
    second_half = np.mean(losses[len(losses) // 2:])
    assert losses[0] <= 1e-9                  # A_1 is Markowitz-ordered exactly
    assert second_half > first_half           # loss grows with the index
    assert losses[-1] > losses[1]


def test_fig05b_dblp_inc_quality_loss(benchmark):
    """Figure 5(b): INC quality-loss vs matrix index on the DBLP workload."""
    losses = single_run(benchmark, _inc_quality_series, dblp_runner())

    print_header("Figure 5(b): INC quality-loss vs matrix index (DBLP)")
    print(series_table("matrix_index", list(range(len(losses))), {"quality_loss": losses}))
    print(f"\naverage quality-loss = {np.mean(losses):.4f}, final = {losses[-1]:.4f}")

    first_half = np.mean(losses[: len(losses) // 2])
    second_half = np.mean(losses[len(losses) // 2:])
    assert losses[0] <= 1e-9
    assert second_half >= first_half
