"""Figure 8: CLUDE's execution-time breakdown and the Bennett-time comparison.

Figure 8(a) of the paper splits CLUDE's execution time into clustering time,
Markowitz (ordering) time, full LU decomposition time and Bennett
(incremental update) time as α varies: clustering is negligible, ordering and
full-decomposition time grow with α (more clusters), and Bennett time shrinks
(better orderings) while remaining the dominant component around the best α.
Figure 8(b) compares the Bennett time of CINC and CLUDE head-to-head — the
static universal structure makes CLUDE's incremental updates much cheaper.
"""

from __future__ import annotations

from _shared import ALPHAS, alpha_sweep, series_from_reports, single_run
from repro.bench.reporting import print_header, series_table


def _sweep():
    return {
        "CLUDE": alpha_sweep("wiki", "CLUDE"),
        "CINC": alpha_sweep("wiki", "CINC"),
    }


def test_fig08a_clude_time_breakdown(benchmark):
    """Figure 8(a): CLUDE execution-time components vs alpha (Wiki)."""
    sweeps = single_run(benchmark, _sweep)
    clude = sweeps["CLUDE"]

    components = {
        "total": series_from_reports(clude, "total_time"),
        "clustering": series_from_reports(clude, "clustering_time"),
        "markowitz": series_from_reports(clude, "ordering_time"),
        "full_lu": series_from_reports(clude, "decomposition_time"),
        "bennett": series_from_reports(clude, "bennett_time"),
        "symbolic": series_from_reports(clude, "symbolic_time"),
    }
    print_header("Figure 8(a): CLUDE execution-time breakdown vs alpha (Wiki, seconds)")
    print(series_table("alpha", ALPHAS, components))

    # Clustering time is negligible compared with the total.
    assert all(c <= 0.25 * t for c, t in zip(components["clustering"], components["total"]))
    # Ordering + full decomposition time does not decrease as alpha grows
    # (more clusters => more orderings/decompositions), comparing extremes.
    fixed_cost_low = components["markowitz"][0] + components["full_lu"][0]
    fixed_cost_high = components["markowitz"][-1] + components["full_lu"][-1]
    assert fixed_cost_high >= fixed_cost_low * 0.9
    # Bennett time is the dominant incremental component at the loosest alpha.
    assert components["bennett"][0] >= components["clustering"][0]


def test_fig08b_bennett_time_cinc_vs_clude(benchmark):
    """Figure 8(b): Bennett time of CINC vs CLUDE (Wiki)."""
    sweeps = single_run(benchmark, _sweep)
    cinc_bennett = series_from_reports(sweeps["CINC"], "bennett_time")
    clude_bennett = series_from_reports(sweeps["CLUDE"], "bennett_time")

    print_header("Figure 8(b): Bennett time (seconds) — CINC vs CLUDE (Wiki)")
    print(series_table("alpha", ALPHAS, {"CINC": cinc_bennett, "CLUDE": clude_bennett}))
    ratios = [c / max(k, 1e-9) for c, k in zip(cinc_bennett, clude_bennett)]
    print(f"\nCINC / CLUDE Bennett-time ratios: {[round(r, 2) for r in ratios]}")

    # The static structure must make CLUDE's incremental updates clearly
    # cheaper than CINC's dynamic adjacency lists wherever incremental work
    # actually happens (at alpha = 1.0 every cluster is a singleton and both
    # Bennett times are zero).
    compared = 0
    for cinc_time, clude_time in zip(cinc_bennett, clude_bennett):
        if cinc_time > 0.0:
            assert clude_time < cinc_time
            compared += 1
    assert compared >= 2

    structural_cinc = series_from_reports(sweeps["CINC"], "structural_ops")
    assert any(ops > 0 for ops in structural_cinc)
    assert all(ops == 0 for ops in series_from_reports(sweeps["CLUDE"], "structural_ops"))
