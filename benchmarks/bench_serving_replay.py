"""Traffic replay through the online MeasureServer on an evolving graph.

The serving scenario the micro-batching front-end exists for: a stream of
single proximity queries — heavily skewed toward a small hot-key set, as
real lookup traffic is — arrives against a graph that keeps evolving by
small edge deltas.  The server coalesces the stream into planner batches
(one factorization per distinct system, shared multi-RHS sweeps, result
cache for repeat keys) and admits each graph update at a batch boundary with
delta refresh of the previous head's factors.

The replay drives a Zipf-weighted query mix (``rwr`` / ``ppr`` /
``pagerank`` over a hot-key pool) in per-snapshot bursts over an evolving
chain, then reports what a serving operator would read off a dashboard:
p50/p99 of the queue/solve/total latency decomposition, sustained
queries/sec, the batch-size histogram, and the planner cache counters.

Exactness gate: the replayed answers are compared against direct one-shot
``QueryPlanner.run`` execution of the same resolved queries under the exact
policy — bitwise identical, since the server (run here without lineage for
the gate, exactly like the reference) only ever re-partitions the stream.
The scored run then repeats the replay with delta refresh on.  Acceptance:
p99 total latency is finite and the result cache hits on the skewed mix.

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_serving_replay.py
    PYTHONPATH=src python benchmarks/bench_serving_replay.py --nodes 200 --snapshots 10
"""

from __future__ import annotations

import argparse
import time
from typing import List

import numpy as np

from repro.graphs.snapshot import GraphSnapshot
from repro.query import QueryBatch, QueryPlanner, make_query
from repro.serve import MeasureServer

from _shared import host_info_line

from bench_delta_refresh import build_chain


def zipf_weights(pool_size: int, exponent: float) -> np.ndarray:
    """Zipf-like popularity: weight of the rank-r key is 1 / (r + 1)^s."""
    ranks = np.arange(pool_size, dtype=float)
    weights = 1.0 / np.power(ranks + 1.0, exponent)
    return weights / weights.sum()


def replay_queries(
    chain: List[GraphSnapshot],
    queries_per_snapshot: int,
    hot_keys: int,
    exponent: float,
    seed: int,
):
    """Return per-snapshot query lists: a skewed rwr/ppr/pagerank mix."""
    rng = np.random.default_rng(seed)
    pool = rng.choice(chain[0].n, size=hot_keys, replace=False)
    weights = zipf_weights(hot_keys, exponent)
    bursts = []
    for snapshot in chain:
        burst = []
        keys = rng.choice(pool, size=queries_per_snapshot, p=weights)
        kinds = rng.random(queries_per_snapshot)
        for key, kind in zip(keys, kinds):
            node = int(key)
            if kind < 0.6:
                burst.append(make_query("rwr", snapshot, start_node=node))
            elif kind < 0.9:
                other = int(pool[int(rng.integers(0, hot_keys))])
                burst.append(make_query("ppr", snapshot, seeds=(node, other)))
            else:
                burst.append(make_query("pagerank", snapshot))
        bursts.append(burst)
    return bursts


def replay(chain, bursts, max_batch, max_wait_ms, register_lineage):
    """Drive the full stream through one server; return (answers, stats)."""
    answers = []
    with MeasureServer(
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        register_lineage=register_lineage,
    ) as server:
        started = time.perf_counter()
        for snapshot, burst in zip(chain, bursts):
            server.admit_update(snapshot)
            futures = [server.submit(query) for query in burst]
            server.flush()
            answers.extend(future.result() for future in futures)
        elapsed = time.perf_counter() - started
        stats = server.stats()
    return answers, stats, elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300, help="graph size")
    parser.add_argument("--snapshots", type=int, default=12, help="chain length")
    parser.add_argument("--added", type=int, default=3, help="edges added per step")
    parser.add_argument("--removed", type=int, default=2, help="edges removed per step")
    parser.add_argument("--queries", type=int, default=40,
                        help="queries per snapshot burst")
    parser.add_argument("--hot-keys", type=int, default=12,
                        help="size of the hot-key pool")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf exponent of the key popularity skew")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="server admission-window size")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="server admission-window length")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    args = parser.parse_args()
    print(host_info_line())

    chain = build_chain(args.nodes, args.snapshots, args.added, args.removed, args.seed)
    bursts = replay_queries(chain, args.queries, args.hot_keys, args.zipf, args.seed)
    total_queries = sum(len(burst) for burst in bursts)

    # ---- Exactness gate: server answers == direct one-shot execution ---- #
    # Both sides cold-factorize every head (no lineage) so the comparison is
    # bitwise, not within-tolerance.
    gated, _, _ = replay(chain, bursts, args.max_batch, args.max_wait_ms,
                         register_lineage=False)
    reference_planner = QueryPlanner()
    reference = []
    for burst in bursts:
        reference.extend(reference_planner.run(QueryBatch(burst)).results)
    mismatches = sum(
        1 for mine, ref in zip(gated, reference) if mine.tobytes() != ref.tobytes()
    )
    if mismatches:
        raise SystemExit(
            f"FAIL: {mismatches}/{total_queries} served answers differ "
            f"bitwise from direct planner execution"
        )

    # ---- Scored run: the real serving configuration, delta refresh on ---- #
    _, stats, elapsed = replay(chain, bursts, args.max_batch, args.max_wait_ms,
                               register_lineage=True)
    qps = stats.answered / elapsed

    print(f"serving replay: {args.snapshots} snapshots x {args.queries} queries, "
          f"n={args.nodes}, zipf(s={args.zipf}) over {args.hot_keys} hot keys")
    print(f"  answered           : {stats.answered}/{stats.requests} "
          f"({stats.batches} batches, {stats.updates_admitted} updates)")
    sizes = ", ".join(f"{size}x{count}"
                      for size, count in sorted(stats.batch_size_histogram.items()))
    print(f"  batch sizes        : {sizes}")
    for phase, summary in (("queue", stats.queue_latency),
                           ("solve", stats.solve_latency),
                           ("total", stats.total_latency)):
        print(f"  {phase:6s} latency     : p50 {summary.p50 * 1e3:7.2f} ms   "
              f"p99 {summary.p99 * 1e3:7.2f} ms   max {summary.max * 1e3:7.2f} ms")
    print(f"  sustained          : {qps:,.0f} queries/sec")
    info = stats.planner_cache_info
    print(f"  factor cache       : {info['hits']} hits / {info['misses']} misses, "
          f"{info['refreshes']} refreshes")
    print(f"  result cache       : {info['result_hits']} hits / "
          f"{info['result_misses']} misses (hit rate {stats.hit_rate:.1%})")

    if stats.answered != total_queries:
        raise SystemExit(
            f"FAIL: answered {stats.answered} of {total_queries} queries"
        )
    if not np.isfinite(stats.total_latency.p99):
        raise SystemExit("FAIL: p99 total latency is not finite")
    if not stats.hit_rate > 0.0:
        raise SystemExit("FAIL: result cache never hit on the Zipf mix")
    print(f"PASS: bitwise-exact replay, p99 finite, "
          f"result-cache hit rate {stats.hit_rate:.1%} > 0")


if __name__ == "__main__":
    main()
