"""Figure 7: speedup over BF versus the similarity threshold α.

The paper expresses every algorithm's execution time as a speedup factor over
the brute-force baseline (per-matrix Markowitz + full decomposition).  Its
Figure 7 shows CLUDE fastest, then CINC, then INC, with the cluster-based
algorithms losing their advantage as α approaches 1 (clusters shrink towards
singletons and the methods degenerate to BF).

Note on magnitudes: in this pure-Python reproduction the absolute speedups
are compressed compared with the paper's Java/testbed numbers (the ordering
and full-decomposition baseline is comparatively cheap at this scale), but
the ranking of the algorithms and the trends with α are preserved.  See
EXPERIMENTS.md.
"""

from __future__ import annotations

from _shared import ALPHAS, alpha_sweep, baseline_report, series_from_reports, single_run
from repro.bench.reporting import print_header, series_table


def _sweep(dataset):
    return {
        "CINC": alpha_sweep(dataset, "CINC"),
        "CLUDE": alpha_sweep(dataset, "CLUDE"),
        "INC": baseline_report(dataset, "INC"),
    }


def _check_and_print(dataset, sweeps, min_best_speedup):
    cinc = series_from_reports(sweeps["CINC"], "speedup")
    clude = series_from_reports(sweeps["CLUDE"], "speedup")
    inc_speedup = sweeps["INC"].speedup

    print_header(f"Figure 7 ({dataset}): speedup over BF vs alpha")
    print(series_table("alpha", ALPHAS, {"CINC": cinc, "CLUDE": clude}))
    print(f"\nINC speedup (flat reference line): {inc_speedup:.2f}")

    best_alpha_index = max(range(len(ALPHAS)), key=lambda index: clude[index])
    print(f"CLUDE's best speedup: {clude[best_alpha_index]:.2f}x at alpha={ALPHAS[best_alpha_index]}")

    # Shape checks: CLUDE is the fastest method at its best alpha, beating
    # both CINC and INC; CINC is at least as fast as INC at its best alpha.
    assert max(clude) > max(cinc)
    assert max(clude) > inc_speedup
    assert max(cinc) >= inc_speedup * 0.9
    # CLUDE must actually beat the brute-force baseline (the margin differs by
    # workload: the smaller DBLP workload leaves less room over BF).
    assert max(clude) > min_best_speedup
    return clude, cinc


def test_fig07a_wiki_speedup_vs_alpha(benchmark):
    """Figure 7(a): Wiki."""
    sweeps = single_run(benchmark, _sweep, "wiki")
    _check_and_print("wiki", sweeps, min_best_speedup=1.5)


def test_fig07b_dblp_speedup_vs_alpha(benchmark):
    """Figure 7(b): DBLP."""
    sweeps = single_run(benchmark, _sweep, "dblp")
    clude, cinc = _check_and_print("dblp", sweeps, min_best_speedup=1.0)
    assert len(clude) == len(cinc) == len(ALPHAS)
