"""Delta refresh vs cold factorization on an evolving serving workload.

The serving scenario the delta-refresh subsystem exists for: a long-lived
planner answers query batches against a graph that keeps evolving by small
edge deltas.  Without lineage every new snapshot is a cold start — one full
Markowitz + Crout factorization per snapshot.  With
:meth:`~repro.query.planner.QueryPlanner.register_evolution` each new
snapshot Bennett-refreshes the previous snapshot's cached factors instead.

The benchmark drives both planners over the identical snapshot chain and
query batches, asserts the refreshed answers match the cold answers within
tolerance, and reports the steady-state speedup plus the factor-cache
counters.  Acceptance floor: refresh must beat cold start by >= 1.2x on the
steady-state serving time (it is typically far above that).

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_delta_refresh.py
    PYTHONPATH=src python benchmarks/bench_delta_refresh.py --nodes 150 --snapshots 16
"""

from __future__ import annotations

import argparse
import time
from typing import List, Tuple

import numpy as np

from repro.graphs.snapshot import GraphSnapshot
from repro.query import QueryBatch, QueryPlanner

from _shared import host_info_line

#: Refreshed answers must match cold answers to this tolerance.
TOLERANCE = 1e-8


def build_chain(
    nodes: int, snapshots: int, added_per_step: int, removed_per_step: int, seed: int
) -> List[GraphSnapshot]:
    """Return an evolving snapshot chain with small per-step edge deltas."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < nodes * 3:
        u, v = rng.integers(0, nodes, size=2)
        if u != v:
            edges.add((int(u), int(v)))
    current = GraphSnapshot(nodes, edges)
    chain = [current]
    for _ in range(snapshots - 1):
        existing = sorted(current.edges)
        removed = {
            existing[int(rng.integers(0, len(existing)))]
            for _ in range(removed_per_step)
        }
        added = set()
        while len(added) < added_per_step:
            u, v = rng.integers(0, nodes, size=2)
            if u != v and (int(u), int(v)) not in current.edges:
                added.add((int(u), int(v)))
        current = current.with_edges(added=added, removed=removed)
        chain.append(current)
    return chain


def serve(
    chain: List[GraphSnapshot], planner: QueryPlanner, register_lineage: bool
) -> Tuple[List[float], List]:
    """Answer one batch per snapshot; return per-snapshot times and results."""
    times: List[float] = []
    outcomes = []
    previous = None
    for snapshot in chain:
        if register_lineage and previous is not None:
            planner.register_evolution(previous, snapshot)
        batch = (
            QueryBatch()
            .add_pagerank(snapshot)
            .add_rwr(snapshot, 1)
            .add_rwr(snapshot, 2)
        )
        started = time.perf_counter()
        outcomes.append(planner.run(batch))
        times.append(time.perf_counter() - started)
        previous = snapshot
    return times, outcomes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300, help="graph size")
    parser.add_argument("--snapshots", type=int, default=32, help="chain length")
    parser.add_argument("--added", type=int, default=3, help="edges added per step")
    parser.add_argument("--removed", type=int, default=2, help="edges removed per step")
    parser.add_argument("--seed", type=int, default=42, help="chain seed")
    args = parser.parse_args()
    print(host_info_line())

    chain = build_chain(args.nodes, args.snapshots, args.added, args.removed, args.seed)

    cold_planner = QueryPlanner()
    cold_times, cold_outcomes = serve(chain, cold_planner, register_lineage=False)

    refresh_planner = QueryPlanner()
    refresh_times, refresh_outcomes = serve(chain, refresh_planner, register_lineage=True)

    worst = 0.0
    for refreshed, cold in zip(refresh_outcomes, cold_outcomes):
        for answer, reference in zip(refreshed, cold):
            worst = max(worst, float(np.max(np.abs(answer - reference))))
    if worst > TOLERANCE:
        raise SystemExit(f"FAIL: refreshed answers deviate by {worst:.2e}")

    # Snapshot 0 is a cold start for both planners; steady state is the rest.
    cold_steady = sum(cold_times[1:])
    refresh_steady = sum(refresh_times[1:])
    speedup = cold_steady / refresh_steady
    refreshes = sum(o.stats.refreshes for o in refresh_outcomes)
    refactorizations = sum(o.stats.factorizations for o in refresh_outcomes)

    print(f"evolving serving workload: {args.snapshots} snapshots x "
          f"(+{args.added}/-{args.removed} edges), n={args.nodes}, "
          f"3 queries per snapshot")
    print(f"cold-start serving (steady) : {cold_steady * 1e3:9.2f} ms "
          f"({len(chain) - 1} factorizations)")
    print(f"delta-refresh serving       : {refresh_steady * 1e3:9.2f} ms "
          f"({refreshes} refreshes, {refactorizations} factorizations)")
    print(f"speedup                     : {speedup:9.2f}x   (floor: 1.2x)")
    print(f"max answer deviation        : {worst:.2e}   (tolerance {TOLERANCE:.0e})")
    print(f"refresh planner cache_info  : {refresh_planner.cache_info()}")
    assert refreshes >= args.snapshots - 1 - refactorizations
    if speedup < 1.2:
        raise SystemExit(f"FAIL: speedup {speedup:.2f}x below the 1.2x floor")
    print("PASS")


if __name__ == "__main__":
    main()
