"""Localized SALSA system deltas vs full matrix recomposition + diff.

The SALSA system matrices are two-hop compositions (``A = I - d(FB)`` /
``I - d(BF)``), so the historical way to get the Bennett entry delta between
two snapshots was to compose *both* full ``n x n`` products and diff them —
cost growing with the graph, even for a handful of changed edges.  The
localized provider (:func:`repro.graphs.matrixkind.system_delta`) instead
recomputes only the product columns reachable from the touched nodes
through the same spgemm kernel on column-restricted operands, which keeps
every retained entry bitwise identical to the full diff.

This benchmark drives both paths over the same random evolutions and
checks three things:

* **exactness** — the localized delta equals the full composed-matrix diff
  bit for bit, entry set and float payloads, for both SALSA kinds;
* **|Δ|-scaling** — at a fixed edge delta, growing the graph inflates the
  localized cost far slower than the full-diff cost (the full path pays two
  whole-graph spgemm compositions; the localized path pays the delta's
  two-hop neighbourhood plus linear edge scans);
* **a speedup floor** at the largest size (CI smoke gate).

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_salsa_delta.py
    PYTHONPATH=src python benchmarks/bench_salsa_delta.py --sizes 200 400 800 1600
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.graphs.matrixkind import MatrixKind, measure_matrix, system_delta
from repro.graphs.snapshot import GraphSnapshot

from _shared import host_info_line

KINDS = (MatrixKind.SALSA_AUTHORITY, MatrixKind.SALSA_HUB)


def build_evolution(
    nodes: int, delta_edges: int, seed: int
) -> Tuple[GraphSnapshot, GraphSnapshot]:
    """A random digraph (average degree ~3) and a small-edge-delta successor."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < 3 * nodes:
        u, v = rng.integers(0, nodes, size=2)
        if u != v:
            edges.add((int(u), int(v)))
    before = GraphSnapshot(nodes, edges, directed=True)
    existing = sorted(edges)
    removed = {
        existing[int(rng.integers(0, len(existing)))]
        for _ in range(delta_edges // 2)
    }
    added = set()
    while len(added) < delta_edges - len(removed):
        u, v = rng.integers(0, nodes, size=2)
        if u != v and (int(u), int(v)) not in edges:
            added.add((int(u), int(v)))
    return before, before.with_edges(added=added, removed=removed)


def time_once(thunk, repeats: int) -> Tuple[float, object]:
    """Median wall time over ``repeats`` runs, plus the (identical) result."""
    times: List[float] = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = thunk()
        times.append(time.perf_counter() - started)
    return float(np.median(times)), result


def compare_at_size(
    nodes: int, delta_edges: int, damping: float, seed: int, repeats: int
) -> Dict[str, float]:
    """Time both delta paths at one size; verify bitwise equality."""
    before, after = build_evolution(nodes, delta_edges, seed)
    localized_total = 0.0
    full_total = 0.0
    entries = 0
    for kind in KINDS:
        localized_time, localized = time_once(
            lambda: system_delta(before, after, kind, damping), repeats
        )
        full_time, full = time_once(
            lambda: measure_matrix(before, kind, damping).delta_entries(
                measure_matrix(after, kind, damping)
            ),
            repeats,
        )
        if set(localized) != set(full):
            raise SystemExit(
                f"FAIL: entry sets differ at n={nodes} kind={kind.value}"
            )
        for position, value in full.items():
            if localized[position].hex() != value.hex():
                raise SystemExit(
                    f"FAIL: entry {position} differs at n={nodes} "
                    f"kind={kind.value}: {localized[position].hex()} "
                    f"vs {value.hex()}"
                )
        localized_total += localized_time
        full_total += full_time
        entries += len(full)
    return {
        "localized": localized_total,
        "full": full_total,
        "entries": entries,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[200, 400, 800],
                        help="graph sizes to sweep at a fixed edge delta")
    parser.add_argument("--delta-edges", type=int, default=6,
                        help="changed edges between the two snapshots")
    parser.add_argument("--damping", type=float, default=0.85)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (median)")
    parser.add_argument("--speedup-floor", type=float, default=1.5,
                        help="required localized-vs-full speedup at the largest size")
    args = parser.parse_args()
    print(host_info_line())
    sizes = sorted(args.sizes)

    print(f"localized vs full SALSA system delta (both kinds, "
          f"|delta|={args.delta_edges} edges, d={args.damping}, "
          f"median of {args.repeats}):")
    rows = []
    for nodes in sizes:
        row = compare_at_size(
            nodes, args.delta_edges, args.damping, args.seed, args.repeats
        )
        rows.append(row)
        print(f"  n={nodes:5d}: localized {row['localized'] * 1e3:8.2f} ms   "
              f"full {row['full'] * 1e3:8.2f} ms   "
              f"speedup {row['full'] / row['localized']:6.2f}x   "
              f"({row['entries']} delta entries)")

    print(f"\nlocalized cost vs |delta| at fixed n={sizes[-1]}:")
    for delta_edges in (2, args.delta_edges, 4 * args.delta_edges):
        row = compare_at_size(
            sizes[-1], delta_edges, args.damping, args.seed + delta_edges,
            args.repeats,
        )
        print(f"  |delta|={delta_edges:3d}: localized "
              f"{row['localized'] * 1e3:8.2f} ms   "
              f"({row['entries']} delta entries)")

    localized_growth = rows[-1]["localized"] / rows[0]["localized"]
    full_growth = rows[-1]["full"] / rows[0]["full"]
    speedup = rows[-1]["full"] / rows[-1]["localized"]
    scale = sizes[-1] / sizes[0]
    print(f"\ngrowing n by {scale:.0f}x grew the localized cost "
          f"{localized_growth:.2f}x and the full-diff cost {full_growth:.2f}x")
    print(f"speedup at n={sizes[-1]}: {speedup:.2f}x "
          f"(floor: {args.speedup_floor:.1f}x)")
    print("every localized delta matched the full composed-matrix diff "
          "bitwise (entry sets and float payloads, both SALSA kinds)")

    if speedup < args.speedup_floor:
        raise SystemExit(f"FAIL: speedup {speedup:.2f}x below the "
                         f"{args.speedup_floor:.1f}x floor")
    if localized_growth >= full_growth:
        raise SystemExit(
            f"FAIL: localized cost grew {localized_growth:.2f}x over the size "
            f"sweep, not slower than the full diff's {full_growth:.2f}x"
        )
    print("PASS")


if __name__ == "__main__":
    main()
