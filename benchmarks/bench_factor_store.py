"""Persistent factor store: delta compression and crash-safe warm restart.

The scenario the disk tier exists for: a serving planner answers batches
against an evolving snapshot chain, checkpoints its factor cache, and is
then restarted (crash, deploy, scale-out).  Without the store every cached
system cold-factorizes again on the first post-restart batch; with it the
warm boot restores every system from disk — bitwise-identically — with
zero factorizations.

Three measurements, each with an asserted acceptance floor:

* **delta compression** — refresh-produced systems spill as delta
  checkpoints (matrix + recorded Bennett delta, no factor payload); their
  files must be smaller than full checkpoints of the same systems;
* **restore vs cold** — restoring every checkpointed system (including
  delta replay) must be faster than cold-factorizing the same systems;
* **warm restart** — a fresh planner over the checkpoint directory must
  answer the whole chain's batches bitwise-identically to the pre-restart
  planner with zero factorizations.

Runs standalone in a few seconds::

    PYTHONPATH=src python benchmarks/bench_factor_store.py
    PYTHONPATH=src python benchmarks/bench_factor_store.py --nodes 150 --snapshots 12
"""

from __future__ import annotations

import argparse
import tempfile
import time
from typing import List

import numpy as np

from repro.graphs.matrixkind import MatrixKind, measure_matrix
from repro.graphs.snapshot import GraphSnapshot
from repro.query import QueryBatch, QueryPlanner
from repro.query.spec import FactorizedSystem, SystemKey
from repro.store import FactorStore

from _shared import host_info_line

DAMPING = 0.85


def build_chain(
    nodes: int, snapshots: int, added_per_step: int, removed_per_step: int, seed: int
) -> List[GraphSnapshot]:
    """Return an evolving snapshot chain with small per-step edge deltas."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < nodes * 3:
        u, v = rng.integers(0, nodes, size=2)
        if u != v:
            edges.add((int(u), int(v)))
    current = GraphSnapshot(nodes, edges)
    chain = [current]
    for _ in range(snapshots - 1):
        existing = sorted(current.edges)
        removed = {
            existing[int(rng.integers(0, len(existing)))]
            for _ in range(removed_per_step)
        }
        added = set()
        while len(added) < added_per_step:
            u, v = rng.integers(0, nodes, size=2)
            if u != v and (int(u), int(v)) not in current.edges:
                added.add((int(u), int(v)))
        current = current.with_edges(added=added, removed=removed)
        chain.append(current)
    return chain


def serve(chain: List[GraphSnapshot], planner: QueryPlanner) -> List:
    """Answer one 3-query batch per snapshot, registering lineage."""
    outcomes = []
    previous = None
    for snapshot in chain:
        if previous is not None:
            planner.register_evolution(previous, snapshot)
        batch = (
            QueryBatch()
            .add_pagerank(snapshot)
            .add_rwr(snapshot, 1)
            .add_rwr(snapshot, 2)
        )
        outcomes.append(planner.run(batch))
        previous = snapshot
    return outcomes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300, help="graph size")
    parser.add_argument("--snapshots", type=int, default=24, help="chain length")
    parser.add_argument("--added", type=int, default=3, help="edges added per step")
    parser.add_argument("--removed", type=int, default=2, help="edges removed per step")
    parser.add_argument("--seed", type=int, default=42, help="chain seed")
    args = parser.parse_args()
    print(host_info_line())

    chain = build_chain(args.nodes, args.snapshots, args.added, args.removed, args.seed)
    keys = [SystemKey(s, MatrixKind.RANDOM_WALK, DAMPING) for s in chain]

    with tempfile.TemporaryDirectory() as checkpoint_dir, \
            tempfile.TemporaryDirectory() as reference_dir:
        store = FactorStore(checkpoint_dir)
        planner = QueryPlanner(store=store)
        outcomes = serve(chain, planner)
        refreshes = sum(o.stats.refreshes for o in outcomes)
        spilled = planner.checkpoint()
        if spilled != len(chain):
            raise SystemExit(f"FAIL: checkpointed {spilled}/{len(chain)} systems")

        # --- delta compression: compare against full checkpoints of the
        # same systems (written to a reference store).
        reference = FactorStore(reference_dir)
        for key in keys:
            reference.save_full(key, planner.cache.peek(key))
        delta_keys = [k for k in keys if store.path_for(k).endswith(".delta")]
        if len(delta_keys) != refreshes:
            raise SystemExit(
                f"FAIL: {refreshes} refreshes but {len(delta_keys)} delta files"
            )
        delta_bytes = [store.file_bytes(k) for k in delta_keys]
        full_bytes = [reference.file_bytes(k) for k in delta_keys]
        if not delta_keys or sum(delta_bytes) >= sum(full_bytes):
            raise SystemExit("FAIL: delta checkpoints not smaller than full")

        # --- restore vs cold on the identical set of systems.
        started = time.perf_counter()
        restorer = FactorStore(checkpoint_dir)
        restored = [restorer.load(k) for k in keys]
        restore_time = time.perf_counter() - started
        if any(system is None for system in restored):
            raise SystemExit("FAIL: a checkpointed system failed to restore")

        started = time.perf_counter()
        for snapshot in chain:
            FactorizedSystem.factorize(
                measure_matrix(snapshot, kind=MatrixKind.RANDOM_WALK, damping=DAMPING)
            )
        cold_time = time.perf_counter() - started

        # --- warm restart: a fresh planner over the checkpoint directory.
        warm_planner = QueryPlanner(store=FactorStore(checkpoint_dir))
        started = time.perf_counter()
        warm_outcomes = serve(chain, warm_planner)
        warm_time = time.perf_counter() - started
        warm_factorizations = sum(o.stats.factorizations for o in warm_outcomes)
        mismatches = sum(
            a.tobytes() != b.tobytes()
            for cold_batch, warm_batch in zip(outcomes, warm_outcomes)
            for a, b in zip(cold_batch, warm_batch)
        )

    speedup = cold_time / restore_time
    compression = sum(full_bytes) / sum(delta_bytes)
    info = warm_planner.cache_info()
    print(f"evolving chain: {args.snapshots} snapshots x "
          f"(+{args.added}/-{args.removed} edges), n={args.nodes}, "
          f"{refreshes} refreshes, {spilled} systems checkpointed")
    print(f"full checkpoint bytes/system : {sum(full_bytes) / len(delta_keys):9.0f}")
    print(f"delta checkpoint bytes/system: {sum(delta_bytes) / len(delta_keys):9.0f} "
          f"({compression:.2f}x smaller)")
    print(f"cold factorization           : {cold_time * 1e3:9.2f} ms "
          f"({len(chain)} systems)")
    print(f"store restore (incl. deltas) : {restore_time * 1e3:9.2f} ms "
          f"({speedup:.2f}x faster)")
    print(f"warm-restart serving         : {warm_time * 1e3:9.2f} ms, "
          f"{warm_factorizations} factorizations, "
          f"{info['store_hits']} store hits, {mismatches} bitwise mismatches")
    if warm_factorizations != 0:
        raise SystemExit("FAIL: warm restart still factorized cold")
    if mismatches != 0:
        raise SystemExit(f"FAIL: {mismatches} answers not bitwise identical")
    if speedup <= 1.0:
        raise SystemExit(f"FAIL: restore ({restore_time * 1e3:.1f} ms) not faster "
                         f"than cold ({cold_time * 1e3:.1f} ms)")
    print("PASS")


if __name__ == "__main__":
    main()
