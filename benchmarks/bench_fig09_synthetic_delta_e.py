"""Figure 9: sensitivity to the per-snapshot edge-change budget ΔE (synthetic).

The paper varies ΔE of the synthetic generator and shows (a) INC's quality
degrades with ΔE while the cluster-based algorithms stay flat and adaptive,
and (b) everyone's speedup shrinks as ΔE grows, with CLUDE remaining on top.
"""

from __future__ import annotations

import functools

from _shared import DELTA_ES, single_run
from repro.bench.reporting import print_header, series_table
from repro.bench.runner import WorkloadRunner
from repro.bench.workloads import synthetic_workload_with_delta


@functools.lru_cache(maxsize=None)
def _reports_for_delta(delta_edges: int):
    workload = synthetic_workload_with_delta(
        delta_edges=delta_edges, nodes=240, snapshots=16, seed=7
    )
    runner = WorkloadRunner(workload)
    return {
        "INC": runner.evaluate("INC"),
        "CINC": runner.evaluate("CINC", alpha=0.95),
        "CLUDE": runner.evaluate("CLUDE", alpha=0.95),
    }


def _sweep():
    return {delta: _reports_for_delta(delta) for delta in DELTA_ES}


def test_fig09a_quality_vs_delta_e(benchmark):
    """Figure 9(a): average quality-loss vs ΔE."""
    by_delta = single_run(benchmark, _sweep)
    series = {
        name: [by_delta[delta][name].average_quality_loss for delta in DELTA_ES]
        for name in ("INC", "CINC", "CLUDE")
    }
    print_header("Figure 9(a): average quality-loss vs delta-E (synthetic)")
    print(series_table("delta_E", DELTA_ES, series))

    # Shapes: INC degrades as the churn grows; the cluster-based methods adapt
    # and stay below INC; CLUDE is at least as good as CINC.
    assert series["INC"][-1] > series["INC"][0]
    for inc, cinc, clude in zip(series["INC"], series["CINC"], series["CLUDE"]):
        assert clude <= cinc + 1e-9
        assert clude <= inc + 1e-9
    assert max(series["CLUDE"]) - min(series["CLUDE"]) <= max(series["INC"]) - min(series["INC"])


def test_fig09b_speedup_vs_delta_e(benchmark):
    """Figure 9(b): speedup over BF vs ΔE."""
    by_delta = single_run(benchmark, _sweep)
    series = {
        name: [by_delta[delta][name].speedup for delta in DELTA_ES]
        for name in ("INC", "CINC", "CLUDE")
    }
    print_header("Figure 9(b): speedup over BF vs delta-E (synthetic)")
    print(series_table("delta_E", DELTA_ES, series))

    # Shapes: CLUDE is the fastest method at every churn level, and incremental
    # updates get less attractive as the churn per snapshot grows.
    for inc, cinc, clude in zip(series["INC"], series["CINC"], series["CLUDE"]):
        assert clude >= cinc - 1e-9
        assert clude >= inc - 1e-9
    assert series["CLUDE"][-1] <= series["CLUDE"][0]
