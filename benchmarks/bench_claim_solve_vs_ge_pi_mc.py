"""In-text claims: query answering after LU decomposition vs GE, PI and MC.

Section 1 of the paper reports that, once a matrix is LU-decomposed, solving
a linear system by forward/backward substitution is orders of magnitude
faster than running one Gaussian elimination per query (about 5000x on their
Wikipedia data), and Section 8 adds that it is also much faster than
answering each query with power iteration or Monte-Carlo simulation.  This
benchmark measures per-query latency of all four methods on one Wiki
snapshot.  Absolute ratios depend on scale and implementation; the assertions
check the ordering and that the substitution path wins by a wide margin.
"""

from __future__ import annotations

import time

import numpy as np

from _shared import WIKI_BENCH_CONFIG, single_run
from repro.bench.reporting import format_table, print_header
from repro.datasets.wiki import generate_wiki_egs
from repro.graphs.matrixkind import MatrixKind, column_normalized_matrix, measure_matrix
from repro.lu.crout import crout_decompose
from repro.lu.gauss import gaussian_elimination_solve
from repro.lu.markowitz import markowitz_ordering
from repro.lu.solve import solve_reordered_system
from repro.measures.monte_carlo import rwr_monte_carlo
from repro.measures.power_iteration import rwr_power_iteration
from repro.measures.rwr import rwr_rhs


def _measure_latencies():
    snapshot = generate_wiki_egs(WIKI_BENCH_CONFIG)[10]
    matrix = measure_matrix(snapshot, MatrixKind.RANDOM_WALK, damping=0.85)
    walk = column_normalized_matrix(snapshot)
    n = matrix.n

    ordering = markowitz_ordering(matrix)
    factors = crout_decompose(ordering.apply(matrix))

    query_nodes = [1, 7, 17, 40, 99]
    timings = {}

    start = time.perf_counter()
    lu_solutions = []
    for node in query_nodes:
        lu_solutions.append(solve_reordered_system(factors, ordering, rwr_rhs(n, node)))
    timings["LU substitution"] = (time.perf_counter() - start) / len(query_nodes)

    start = time.perf_counter()
    ge_solutions = []
    for node in query_nodes:
        ge_solutions.append(gaussian_elimination_solve(matrix, rwr_rhs(n, node)))
    timings["Gaussian elimination"] = (time.perf_counter() - start) / len(query_nodes)

    start = time.perf_counter()
    for node in query_nodes:
        rwr_power_iteration(snapshot, node, tolerance=1e-10, walk_matrix=walk)
    timings["Power iteration"] = (time.perf_counter() - start) / len(query_nodes)

    start = time.perf_counter()
    for node in query_nodes:
        rwr_monte_carlo(snapshot, node, walks=1500, seed=node)
    timings["Monte Carlo"] = (time.perf_counter() - start) / len(query_nodes)

    agreement = max(
        float(np.max(np.abs(lu - ge))) for lu, ge in zip(lu_solutions, ge_solutions)
    )
    return timings, agreement


def test_claim_query_latency_after_decomposition(benchmark):
    """Per-query latency: LU substitution vs GE vs PI vs MC (one Wiki snapshot)."""
    timings, agreement = single_run(benchmark, _measure_latencies)

    lu = timings["LU substitution"]
    rows = [
        {
            "method": name,
            "seconds_per_query": seconds,
            "slowdown_vs_LU": seconds / lu,
        }
        for name, seconds in timings.items()
    ]
    print_header("In-text claim: per-query latency after LU decomposition")
    print(format_table(rows, ["method", "seconds_per_query", "slowdown_vs_LU"]))
    print(f"\nmax |x_LU - x_GE| over the probe queries: {agreement:.2e}")

    # LU-based substitution and Gaussian elimination agree exactly.
    assert agreement < 1e-8
    # Substitution is by far the cheapest way to answer a query; GE per query
    # is the most expensive exact method.
    assert timings["Gaussian elimination"] > 10 * lu
    assert timings["Power iteration"] > 2 * lu
    assert timings["Monte Carlo"] > 2 * lu
