"""Shared workloads and cached sweeps for the benchmark suite.

Every ``bench_fig*.py`` module regenerates one figure of the paper.  Several
figures share the same underlying runs (e.g. Figures 6, 7 and 8 all come from
the α sweep on the Wiki and DBLP workloads), so this module builds each
workload and each sweep exactly once per pytest session and caches the
results.

Scales are chosen so the whole suite finishes in a few minutes of pure
Python.  They are far below the paper's dataset sizes (see DESIGN.md for the
substitution rationale); the quantities reported are the same ones the paper
plots, and EXPERIMENTS.md records how the measured shapes compare with the
published ones.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

from repro.bench.runner import AlgorithmReport, WorkloadRunner
from repro.bench.workloads import Workload
from repro.datasets.dblp import DBLPConfig, generate_dblp_egs
from repro.datasets.patent import PatentConfig, generate_patent_dataset
from repro.datasets.wiki import WikiConfig, generate_wiki_egs
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import MatrixKind

#: α values swept in Figures 6-8 (the paper sweeps 0.90 … 1.00).
ALPHAS: List[float] = [0.90, 0.94, 0.98, 1.00]

#: β values swept in Figure 10.
BETAS: List[float] = [0.0, 0.05, 0.1, 0.2, 0.3]

#: ΔE values swept in Figure 9 (scaled to the benchmark graph size).
DELTA_ES: List[int] = [8, 16, 24, 32]

#: Benchmark-scale stand-in for the paper's Wikipedia dataset.
WIKI_BENCH_CONFIG = WikiConfig(
    pages=400,
    snapshots=50,
    initial_links=2000,
    final_links=2500,
    churn_per_day=2,
    tracked_page=17,
    event_gain_day=12,
    event_dilute_day=30,
    seed=42,
)

#: Benchmark-scale stand-in for the paper's DBLP dataset (symmetric matrices).
DBLP_BENCH_CONFIG = DBLPConfig(
    authors=220,
    snapshots=40,
    initial_papers=330,
    papers_per_day=2,
    max_authors_per_paper=3,
    seed=13,
)

#: Smaller symmetric workload for the LUDEM-QC sweep (β-clustering re-runs
#: Markowitz many times, so the sequence is kept shorter).
DBLP_QC_CONFIG = DBLPConfig(
    authors=150,
    snapshots=20,
    initial_papers=220,
    papers_per_day=2,
    max_authors_per_paper=3,
    seed=13,
)

#: Case-study patent dataset configuration (Figure 11).
PATENT_BENCH_CONFIG = PatentConfig()


@functools.lru_cache(maxsize=None)
def wiki_runner() -> WorkloadRunner:
    """Workload runner for the Wiki benchmark workload (BF cached inside)."""
    egs = generate_wiki_egs(WIKI_BENCH_CONFIG)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK)
    return WorkloadRunner(Workload(name="wiki-bench", matrices=list(ems), symmetric=False))


@functools.lru_cache(maxsize=None)
def dblp_runner() -> WorkloadRunner:
    """Workload runner for the DBLP benchmark workload."""
    egs = generate_dblp_egs(DBLP_BENCH_CONFIG)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
    return WorkloadRunner(Workload(name="dblp-bench", matrices=list(ems), symmetric=True))


@functools.lru_cache(maxsize=None)
def dblp_qc_runner() -> WorkloadRunner:
    """Workload runner for the (smaller) LUDEM-QC workload."""
    egs = generate_dblp_egs(DBLP_QC_CONFIG)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
    return WorkloadRunner(Workload(name="dblp-qc-bench", matrices=list(ems), symmetric=True))


@functools.lru_cache(maxsize=None)
def patent_dataset():
    """The patent case-study dataset (Figure 11)."""
    return generate_patent_dataset(PATENT_BENCH_CONFIG)


@functools.lru_cache(maxsize=None)
def baseline_report(dataset: str, algorithm: str) -> AlgorithmReport:
    """BF / INC report for a dataset (cached; these take no parameter)."""
    runner = wiki_runner() if dataset == "wiki" else dblp_runner()
    return runner.evaluate(algorithm)


@functools.lru_cache(maxsize=None)
def alpha_report(dataset: str, algorithm: str, alpha: float) -> AlgorithmReport:
    """CINC / CLUDE report for one α value on one dataset (cached)."""
    runner = wiki_runner() if dataset == "wiki" else dblp_runner()
    return runner.evaluate(algorithm, alpha=alpha)


def alpha_sweep(dataset: str, algorithm: str, alphas: Sequence[float] = ALPHAS) -> List[AlgorithmReport]:
    """Reports of an algorithm across the α sweep for a dataset."""
    return [alpha_report(dataset, algorithm, alpha) for alpha in alphas]


@functools.lru_cache(maxsize=None)
def beta_report(algorithm: str, beta: float) -> AlgorithmReport:
    """CINC-QC / CLUDE-QC report for one β value (cached)."""
    return dblp_qc_runner().evaluate_qc(algorithm, beta=beta)


def beta_sweep(algorithm: str, betas: Sequence[float] = tuple(BETAS)) -> List[AlgorithmReport]:
    """Reports of a QC algorithm across the β sweep."""
    return [beta_report(algorithm, beta) for beta in betas]


def series_from_reports(reports: Sequence[AlgorithmReport], field: str) -> List[float]:
    """Extract one numeric column from a list of reports."""
    return [float(getattr(report, field)) for report in reports]


def single_run(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark.

    The heavy sequence decompositions are not micro-benchmarks; re-running
    them dozens of times would make the suite unusable.  ``pedantic`` with a
    single round records one timing sample while keeping the benchmark
    machinery (and its reporting) intact.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
