"""Shared workloads and cached sweeps for the benchmark suite.

Every ``bench_fig*.py`` module regenerates one figure of the paper.  Several
figures share the same underlying runs (e.g. Figures 6, 7 and 8 all come from
the α sweep on the Wiki and DBLP workloads), so this module builds each
workload and each sweep exactly once per pytest session and caches the
results.

Scales are chosen so the whole suite finishes in a few minutes of pure
Python.  They are far below the paper's dataset sizes (see DESIGN.md for the
substitution rationale); the quantities reported are the same ones the paper
plots, and EXPERIMENTS.md records how the measured shapes compare with the
published ones.
"""

from __future__ import annotations

import contextlib
import functools
import os
import platform
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bench.runner import AlgorithmReport, WorkloadRunner
from repro.bench.workloads import Workload
from repro.datasets.dblp import DBLPConfig, generate_dblp_egs
from repro.datasets.patent import PatentConfig, generate_patent_dataset
from repro.datasets.wiki import WikiConfig, generate_wiki_egs
from repro.graphs.ems import EvolvingMatrixSequence
from repro.graphs.matrixkind import MatrixKind

def host_info() -> Dict[str, object]:
    """CPU/platform facts every recorded benchmark result self-describes with.

    ``usable_cpus`` is the count this *process* may actually run on
    (``os.process_cpu_count()`` where available — 3.13+ — else the
    scheduling affinity mask), which is the honest number for parallel
    runs: this container typically exposes 1 usable core, so recorded
    pool/shard runs show dispatch overhead, not speedup.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    usable: Optional[int] = None
    if process_cpu_count is not None:
        usable = process_cpu_count()
    if usable is None:
        try:
            usable = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            usable = os.cpu_count()
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
    }


def host_info_line() -> str:
    """One markdown bullet recording :func:`host_info` in a results file."""
    info = host_info()
    return (
        f"- machine: {info['platform']}, python {info['python']}, "
        f"{info['usable_cpus']} usable CPU core(s) of {info['cpu_count']} visible"
    )


#: α values swept in Figures 6-8 (the paper sweeps 0.90 … 1.00).
ALPHAS: List[float] = [0.90, 0.94, 0.98, 1.00]

#: β values swept in Figure 10.
BETAS: List[float] = [0.0, 0.05, 0.1, 0.2, 0.3]

#: ΔE values swept in Figure 9 (scaled to the benchmark graph size).
DELTA_ES: List[int] = [8, 16, 24, 32]

#: Benchmark-scale stand-in for the paper's Wikipedia dataset.
WIKI_BENCH_CONFIG = WikiConfig(
    pages=400,
    snapshots=50,
    initial_links=2000,
    final_links=2500,
    churn_per_day=2,
    tracked_page=17,
    event_gain_day=12,
    event_dilute_day=30,
    seed=42,
)

#: Benchmark-scale stand-in for the paper's DBLP dataset (symmetric matrices).
DBLP_BENCH_CONFIG = DBLPConfig(
    authors=220,
    snapshots=40,
    initial_papers=330,
    papers_per_day=2,
    max_authors_per_paper=3,
    seed=13,
)

#: Smaller symmetric workload for the LUDEM-QC sweep (β-clustering re-runs
#: Markowitz many times, so the sequence is kept shorter).
DBLP_QC_CONFIG = DBLPConfig(
    authors=150,
    snapshots=20,
    initial_papers=220,
    papers_per_day=2,
    max_authors_per_paper=3,
    seed=13,
)

#: Case-study patent dataset configuration (Figure 11).
PATENT_BENCH_CONFIG = PatentConfig()


@functools.lru_cache(maxsize=None)
def wiki_runner() -> WorkloadRunner:
    """Workload runner for the Wiki benchmark workload (BF cached inside)."""
    egs = generate_wiki_egs(WIKI_BENCH_CONFIG)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.RANDOM_WALK)
    return WorkloadRunner(Workload(name="wiki-bench", matrices=list(ems), symmetric=False))


@functools.lru_cache(maxsize=None)
def dblp_runner() -> WorkloadRunner:
    """Workload runner for the DBLP benchmark workload."""
    egs = generate_dblp_egs(DBLP_BENCH_CONFIG)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
    return WorkloadRunner(Workload(name="dblp-bench", matrices=list(ems), symmetric=True))


@functools.lru_cache(maxsize=None)
def dblp_qc_runner() -> WorkloadRunner:
    """Workload runner for the (smaller) LUDEM-QC workload."""
    egs = generate_dblp_egs(DBLP_QC_CONFIG)
    ems = EvolvingMatrixSequence.from_graphs(egs, kind=MatrixKind.SYMMETRIC_WALK)
    return WorkloadRunner(Workload(name="dblp-qc-bench", matrices=list(ems), symmetric=True))


@functools.lru_cache(maxsize=None)
def patent_dataset():
    """The patent case-study dataset (Figure 11)."""
    return generate_patent_dataset(PATENT_BENCH_CONFIG)


@functools.lru_cache(maxsize=None)
def baseline_report(dataset: str, algorithm: str) -> AlgorithmReport:
    """BF / INC report for a dataset (cached; these take no parameter)."""
    runner = wiki_runner() if dataset == "wiki" else dblp_runner()
    return runner.evaluate(algorithm)


@functools.lru_cache(maxsize=None)
def alpha_report(dataset: str, algorithm: str, alpha: float) -> AlgorithmReport:
    """CINC / CLUDE report for one α value on one dataset (cached)."""
    runner = wiki_runner() if dataset == "wiki" else dblp_runner()
    return runner.evaluate(algorithm, alpha=alpha)


def alpha_sweep(dataset: str, algorithm: str, alphas: Sequence[float] = ALPHAS) -> List[AlgorithmReport]:
    """Reports of an algorithm across the α sweep for a dataset."""
    return [alpha_report(dataset, algorithm, alpha) for alpha in alphas]


@functools.lru_cache(maxsize=None)
def beta_report(algorithm: str, beta: float) -> AlgorithmReport:
    """CINC-QC / CLUDE-QC report for one β value (cached)."""
    return dblp_qc_runner().evaluate_qc(algorithm, beta=beta)


def beta_sweep(algorithm: str, betas: Sequence[float] = tuple(BETAS)) -> List[AlgorithmReport]:
    """Reports of a QC algorithm across the β sweep."""
    return [beta_report(algorithm, beta) for beta in betas]


def series_from_reports(reports: Sequence[AlgorithmReport], field: str) -> List[float]:
    """Extract one numeric column from a list of reports."""
    return [float(getattr(report, field)) for report in reports]


def percentile_of(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample list (``0.0`` when empty).

    ``fraction`` in ``[0, 1]``; nearest-rank (no interpolation) keeps every
    reported value an actually-observed one, matching
    :meth:`repro.query.planner.BatchResult.loss_estimate_percentile`.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must lie in [0, 1], got {fraction}")
    if not samples:
        return 0.0
    import math

    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


def _read_rss_bytes() -> Optional[int]:
    """Current resident set size in bytes, or ``None`` when unreadable.

    Reads ``/proc/self/statm`` (Linux; resident pages × page size) so the
    sampler needs no third-party dependency.  Falls back to
    ``resource.getrusage`` peak RSS (coarser: high-water mark, not current)
    and finally to ``None`` on exotic platforms — memory tracking is an
    observation, never a benchmark failure.
    """
    try:
        with open("/proc/self/statm") as statm:
            resident_pages = int(statm.read().split()[1])
        import resource

        return resident_pages * resource.getpagesize()
    except (OSError, ValueError, IndexError, ImportError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(usage) * 1024  # Linux reports KiB
    except (ImportError, OSError, ValueError):
        return None


class MemoryMonitor:
    """Background-thread RSS sampler: peak plus a coarse timeline.

    Scale claims should include memory, not just wall-clock; wrapping a
    benchmark phase in a monitor (or the :func:`track_memory` context
    manager) records the process RSS every ``interval`` seconds on a daemon
    thread and reduces it to a peak and a ``(elapsed seconds, bytes)``
    timeline for the report.  Sampling is passive — it never affects the
    measured workload beyond one sleeping thread.
    """

    def __init__(self, interval: float = 0.05) -> None:
        if interval <= 0.0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self._interval = float(interval)
        self._samples: List[Tuple[float, int]] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    def _sample_once(self) -> None:
        rss = _read_rss_bytes()
        if rss is not None:
            self._samples.append((time.perf_counter() - self._started_at, rss))

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._sample_once()

    def start(self) -> "MemoryMonitor":
        """Begin sampling (records one sample immediately)."""
        if self._thread is not None:
            raise RuntimeError("MemoryMonitor already started")
        self._started_at = time.perf_counter()
        self._stop.clear()
        self._sample_once()
        self._thread = threading.Thread(
            target=self._run, name="bench-memory-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (records one final sample)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._sample_once()

    @property
    def samples(self) -> List[Tuple[float, int]]:
        """The recorded ``(elapsed seconds, RSS bytes)`` timeline."""
        return list(self._samples)

    @property
    def peak_rss(self) -> int:
        """Largest sampled RSS in bytes (``0`` when sampling was unavailable)."""
        return max((rss for _, rss in self._samples), default=0)

    @property
    def peak_rss_mib(self) -> float:
        """Peak RSS in MiB."""
        return self.peak_rss / (1024.0 * 1024.0)

    def timeline_summary(self, buckets: int = 8) -> str:
        """A compact ``start → … → end`` MiB rendering of the timeline."""
        if not self._samples:
            return "(no samples)"
        step = max(1, len(self._samples) // buckets)
        picked = self._samples[::step]
        if picked[-1] != self._samples[-1]:
            picked.append(self._samples[-1])
        return " → ".join(f"{rss / 2**20:.1f}" for _, rss in picked) + " MiB"


@contextlib.contextmanager
def track_memory(interval: float = 0.05) -> Iterator[MemoryMonitor]:
    """Sample RSS on a background thread for the duration of a ``with`` block."""
    monitor = MemoryMonitor(interval=interval).start()
    try:
        yield monitor
    finally:
        monitor.stop()


def single_run(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark.

    The heavy sequence decompositions are not micro-benchmarks; re-running
    them dozens of times would make the suite unusable.  ``pedantic`` with a
    single round records one timing sample while keeping the benchmark
    machinery (and its reporting) intact.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
