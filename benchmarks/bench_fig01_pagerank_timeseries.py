"""Figure 1 / Example 1: PageRank of a tracked page over the Wiki sequence.

The paper's Figure 1 plots the PageRank score of one Wikipedia page over a
1000-day EGS and points out the key moments (a sharp rise when two prominent
pages start linking to it, a sharp drop when its main endorser dilutes its
outgoing links, and a long slow decline).  This benchmark decomposes the
simulated Wiki sequence with CLUDE, prints the tracked page's PageRank
series, and reports the automatically detected key moments.
"""

from __future__ import annotations

import numpy as np

from _shared import WIKI_BENCH_CONFIG, single_run, wiki_runner
from repro.analysis import detect_step_changes, summarize_moments
from repro.bench.reporting import print_header, series_table
from repro.core.clude import decompose_sequence_clude
from repro.measures.pagerank import pagerank_rhs


def _pagerank_series():
    runner = wiki_runner()
    matrices = runner.workload.matrices
    result = decompose_sequence_clude(matrices, alpha=0.95)
    rhs = pagerank_rhs(matrices[0].n, damping=0.85)
    tracked = WIKI_BENCH_CONFIG.tracked_page
    series = np.array([result.solve(index, rhs)[tracked] for index in range(len(matrices))])
    return series


def test_fig01_pagerank_timeseries(benchmark):
    """Regenerate the Figure 1 series and report the detected key moments."""
    series = single_run(benchmark, _pagerank_series)

    print_header("Figure 1: PageRank score of the tracked page over the Wiki EGS")
    print(series_table("snapshot", list(range(len(series))), {"pagerank": series.tolist()}))
    moments = detect_step_changes(series, relative_threshold=0.10)
    print("\nDetected key moments:", summarize_moments(moments))
    print(
        f"Scripted events were injected at snapshots #{WIKI_BENCH_CONFIG.event_gain_day} "
        f"(links gained) and #{WIKI_BENCH_CONFIG.event_dilute_day} (endorser diluted)."
    )

    assert len(series) == WIKI_BENCH_CONFIG.snapshots
    assert np.all(series > 0)
    # The scripted gain event must be visible as a detected rise near that day.
    assert any(
        moment.kind == "rise"
        and abs(moment.index - WIKI_BENCH_CONFIG.event_gain_day) <= 1
        for moment in moments
    )
