"""Figure 11 / Section 7: company-proximity rankings over a patent citation EGS.

The paper seeds Personalized PageRank at the focal company's patents and
ranks every other company by the summed PPR score of its patents, year by
year.  The interesting finding is one company whose rank climbs steadily —
a leading indicator of the later technology alliance — while the other
companies' ranks stay comparatively stable.
"""

from __future__ import annotations

import numpy as np

from _shared import patent_dataset, single_run
from repro.analysis.proximity import proximity_rankings
from repro.bench.reporting import print_header, series_table


def _rankings():
    return proximity_rankings(patent_dataset(), damping=0.85, algorithm="CLUDE", alpha=0.9)


def test_fig11_patent_proximity_rankings(benchmark):
    """Regenerate the Figure 11 rank trajectories."""
    rankings = single_run(benchmark, _rankings)
    years = list(range(rankings.ranks.shape[0]))
    series = {
        name: rankings.ranks[:, index].tolist()
        for index, name in enumerate(rankings.company_names)
    }
    print_header("Figure 11: proximity ranks w.r.t. the focal company (1 = closest)")
    print(series_table("year", years, series))

    rising_index = rankings.company_names.index("RISING")
    rising = rankings.rank_series(rising_index)
    others = [
        rankings.rank_series(index)
        for index in range(len(rankings.company_names))
        if index != rising_index
    ]
    print(f"\nRISING company rank: {rising[0]} -> {rising[-1]}")

    # Shape: the designated company starts away from the top and climbs to
    # (or near) the top; its improvement dwarfs every other company's.
    assert rising[0] >= 4
    assert rising[-1] <= 2
    assert rankings.is_steadily_rising(rising_index)
    rising_improvement = rising[0] - rising[-1]
    for other in others:
        assert (other[0] - other[-1]) < rising_improvement
    # Other companies stay comparatively stable (small net movement).
    assert float(np.mean([abs(int(o[0]) - int(o[-1])) for o in others])) <= 2.0
