"""Figure 6: average quality-loss versus the similarity threshold α.

CINC orders each cluster by its first member; CLUDE orders it by the cluster
union.  The paper's Figure 6 shows that (1) quality-loss falls as α grows
(tighter clusters) and (2) CLUDE beats CINC at every α.  The in-text claim
that CLUDE's quality-loss is an order of magnitude better than INC's at
α = 0.95 is also checked here (Section 6.1).
"""

from __future__ import annotations

from _shared import ALPHAS, alpha_sweep, baseline_report, series_from_reports, single_run
from repro.bench.reporting import print_header, series_table


def _sweep(dataset):
    return {
        "CINC": alpha_sweep(dataset, "CINC"),
        "CLUDE": alpha_sweep(dataset, "CLUDE"),
    }


def _check_and_print(dataset, sweeps):
    cinc = series_from_reports(sweeps["CINC"], "average_quality_loss")
    clude = series_from_reports(sweeps["CLUDE"], "average_quality_loss")
    inc_loss = baseline_report(dataset, "INC").average_quality_loss

    print_header(f"Figure 6 ({dataset}): average quality-loss vs alpha")
    print(series_table("alpha", ALPHAS, {"CINC": cinc, "CLUDE": clude}))
    print(f"\nINC average quality-loss (flat reference line): {inc_loss:.4f}")
    ratio = inc_loss / max(clude[-2], 1e-9)
    print(f"INC / CLUDE quality-loss ratio near alpha=0.98: {ratio:.1f}x")

    # Shapes from the paper: CLUDE <= CINC at every alpha; both far below INC;
    # quality improves (loss shrinks) as alpha approaches 1.
    for cinc_loss, clude_loss in zip(cinc, clude):
        assert clude_loss <= cinc_loss + 1e-9
        assert clude_loss <= inc_loss + 1e-9
    assert clude[-1] <= clude[0] + 1e-9
    return ratio


def test_fig06a_wiki_quality_vs_alpha(benchmark):
    """Figure 6(a): Wiki."""
    sweeps = single_run(benchmark, _sweep, "wiki")
    ratio = _check_and_print("wiki", sweeps)
    # Section 6.1 claim: CLUDE an order of magnitude better than INC (>= ~5x here).
    assert ratio > 3.0


def test_fig06b_dblp_quality_vs_alpha(benchmark):
    """Figure 6(b): DBLP."""
    sweeps = single_run(benchmark, _sweep, "dblp")
    _check_and_print("dblp", sweeps)
